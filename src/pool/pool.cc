#include "pool/pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "base/cpu.h"
#include "base/logging.h"
#include "base/units.h"

namespace sfi::pool {

namespace {

/** Slot lifecycle. Transitions always hand the slot off through a
 *  mutex (shard or reclaim queue), so the per-slot metadata arrays
 *  need no atomics of their own. */
enum SlotState : uint8_t {
    kCold = 0,  ///< decommitted (or never committed): zero on next touch
    kWarm,      ///< in a warm-affinity cache, still committed
    kInUse,
    kFreeing,   ///< claimed by free(), not yet on a list
    kPending,   ///< queued for the reclamation thread
};

/** Stable small integer per thread, used to pick a home shard. */
uint32_t
threadOrdinal()
{
    static std::atomic<uint32_t> next{0};
    static thread_local uint32_t ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

}  // namespace

struct MemoryPool::Core
{
    struct Shard
    {
        std::mutex mu;
        std::vector<uint64_t> cold;
        std::vector<uint64_t> warm;
    };

    Reservation slab;
    SlotLayout layout;
    PoolConfig config;
    Options opts;
    mpk::System* mpk = nullptr;
    mpk::KeyRing* ring = nullptr;       ///< lease mode when non-null
    std::vector<mpk::Pkey> stripeKeys;  ///< empty when striping off

    std::vector<Shard> shards;
    /** Guarded by slot-ownership handoff (see SlotState). */
    std::vector<uint8_t> committed;
    std::vector<uint64_t> dirtyBytes;  ///< page-aligned high-water span
    std::unique_ptr<std::atomic<uint8_t>[]> state;
    /**
     * Color currently stamped in the slot's PTEs/granules, and (lease
     * mode) the generation it was leased under. Atomics because the
     * retire-time scrub and neighbor-mask reads cross slot ownership.
     */
    std::unique_ptr<std::atomic<int>[]> slotKey;
    std::unique_ptr<std::atomic<uint64_t>[]> slotKeyGen;
    /**
     * The slot's stamped color is stale — either its backend dropped
     * tags on decommit (MTE) or its key retired and may be reissued.
     * allocate() must re-protect before handing the slot out.
     */
    std::unique_ptr<std::atomic<uint8_t>[]> needsRecolor;
    std::atomic<uint64_t> inUse{0};

    struct Counters
    {
        std::atomic<uint64_t> allocations{0};
        std::atomic<uint64_t> frees{0};
        std::atomic<uint64_t> firstCommits{0};
        std::atomic<uint64_t> warmHits{0};
        std::atomic<uint64_t> warmZeroes{0};
        std::atomic<uint64_t> warmZeroedBytes{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> decommits{0};
        std::atomic<uint64_t> decommittedBytes{0};
        std::atomic<uint64_t> recolors{0};
        std::atomic<uint64_t> retags{0};
    } counters;

    // Reclamation thread state.
    std::mutex reclaimMu;
    std::condition_variable reclaimCv;  ///< work for the reclaimer
    std::condition_variable idleCv;     ///< reclaimer went idle
    std::deque<uint64_t> reclaimQueue;
    uint64_t pendingDirty = 0;
    bool reclaimerBusy = false;
    bool drainRequested = false;
    bool stopRequested = false;
    std::thread reclaimer;

    ~Core();

    uint32_t homeShard() const
    {
        return threadOrdinal() % uint32_t(shards.size());
    }

    Status decommitSlot(uint64_t index);
    void firstCommitFailed(uint64_t index);
    void reclaimerLoop();
    bool popPendingReclaim(uint64_t* index);
    void notifyDecommit(uint64_t index, uint64_t offset, uint64_t len);
    void drainReclaimer();
    bool stealFromLists(uint64_t index);
    void scrubRetiredSlot(uint64_t index, int key, uint64_t gen);
};

Result<MemoryPool>
MemoryPool::create(Options options)
{
    auto layout = computeLayout(options.config, options.arithmetic);
    if (!layout)
        return Result<MemoryPool>::error(layout.message());
    if (auto st = layout->validate(options.config); !st) {
        return Result<MemoryPool>::error(
            "layout fails safety validation: " + st.message());
    }

    auto core = std::make_unique<Core>();
    core->layout = *layout;
    core->config = options.config;
    core->opts = options;
    core->mpk = options.mpk ? options.mpk : &mpk::defaultSystem();
    core->ring = options.keyRing;
    if (core->ring != nullptr) {
        if (options.mpk == nullptr) {
            core->mpk = core->ring->system();
        } else if (core->ring->system() != core->mpk) {
            return Result<MemoryPool>::error(
                "keyRing uses a different mpk::System than the pool");
        }
    }

    auto slab = Reservation::reserve(core->layout.totalSlotBytes);
    if (!slab)
        return Result<MemoryPool>::error(slab.message());
    core->slab = std::move(*slab);

    // One key per stripe; striping disabled when numStripes == 1. In
    // lease mode the ring owns the key space instead — static stripe
    // keys would pin it.
    if (core->layout.numStripes > 1 && core->ring == nullptr) {
        for (uint64_t s = 0; s < core->layout.numStripes; s++) {
            auto key = core->mpk->allocKey();
            if (!key) {
                // ~Core returns the keys allocated so far.
                for (mpk::Pkey k : core->stripeKeys)
                    (void)core->mpk->freeKey(k);
                core->stripeKeys.clear();
                return Result<MemoryPool>::error(
                    "allocating stripe keys: " + key.message());
            }
            core->stripeKeys.push_back(*key);
        }
    }

    uint64_t n = core->layout.numSlots;
    uint32_t shards = options.shards;
    if (shards == 0) {
        shards = std::min(8u,
                          std::max(1u, std::thread::hardware_concurrency()));
    }
    shards = uint32_t(std::min<uint64_t>(shards, n));
    core->shards = std::vector<Core::Shard>(shards);

    // Low slot indexes end on top of shard 0's LIFO stack so the first
    // single-threaded allocation is slot 0, matching the pre-sharding
    // allocator.
    for (uint64_t i = n; i-- > 0;)
        core->shards[i % shards].cold.push_back(i);

    core->committed.assign(n, 0);
    core->dirtyBytes.assign(n, 0);
    core->state = std::make_unique<std::atomic<uint8_t>[]>(n);
    core->slotKey = std::make_unique<std::atomic<int>[]>(n);
    core->slotKeyGen = std::make_unique<std::atomic<uint64_t>[]>(n);
    core->needsRecolor = std::make_unique<std::atomic<uint8_t>[]>(n);

    if (options.deferredDecommit) {
        Core* c = core.get();
        core->reclaimer = std::thread([c] { c->reclaimerLoop(); });
    }
    return MemoryPool(std::move(core));
}

MemoryPool::Core::~Core()
{
    if (reclaimer.joinable()) {
        {
            std::lock_guard<std::mutex> lock(reclaimMu);
            stopRequested = true;
        }
        reclaimCv.notify_all();
        reclaimer.join();
    }
    if (mpk != nullptr) {
        for (mpk::Pkey key : stripeKeys)
            (void)mpk->freeKey(key);
    }
}

MemoryPool::MemoryPool(std::unique_ptr<Core> core) : core_(std::move(core))
{
}

MemoryPool::~MemoryPool() = default;
MemoryPool::MemoryPool(MemoryPool&&) noexcept = default;

MemoryPool&
MemoryPool::operator=(MemoryPool&& other) noexcept
{
    if (this != &other) {
        // Tear down this pool's reclamation thread and stripe keys
        // before adopting the other's state.
        core_.reset();
        core_ = std::move(other.core_);
    }
    return *this;
}

Status
MemoryPool::Core::decommitSlot(uint64_t index)
{
    uint64_t span = dirtyBytes[index];
    if (!committed[index] || span == 0)
        return Status::ok();
    Status st = slab.decommit(layout.slotOffset(index), span);
    if (st) {
        counters.decommits.fetch_add(1, std::memory_order_relaxed);
        counters.decommittedBytes.fetch_add(span,
                                            std::memory_order_relaxed);
        dirtyBytes[index] = 0;
        notifyDecommit(index, layout.slotOffset(index), span);
    }
    return st;
}

/**
 * Tell the backend pages went away. MPK's PTE colors survive madvise so
 * this is a no-op there; MTE drops granule tags with the pages (§7
 * Observation 2), so the slot is flagged for re-tagging on its next
 * checkout.
 */
void
MemoryPool::Core::notifyDecommit(uint64_t index, uint64_t offset,
                                 uint64_t len)
{
    if (mpk->tagsSurviveDecommit())
        return;
    mpk->onDecommit(slab.base() + offset, len);
    if (slotKey[index].load(std::memory_order_relaxed) != 0)
        needsRecolor[index].store(1, std::memory_order_relaxed);
}

/** Undo a failed checkout: the slot goes back to its cold list. */
void
MemoryPool::Core::firstCommitFailed(uint64_t index)
{
    Shard& sh = shards[index % shards.size()];
    std::lock_guard<std::mutex> lock(sh.mu);
    state[index].store(kCold, std::memory_order_relaxed);
    sh.cold.push_back(index);
}

bool
MemoryPool::Core::popPendingReclaim(uint64_t* index)
{
    std::lock_guard<std::mutex> lock(reclaimMu);
    if (reclaimQueue.empty())
        return false;
    *index = reclaimQueue.back();
    reclaimQueue.pop_back();
    pendingDirty -= std::min(pendingDirty, dirtyBytes[*index]);
    return true;
}

Result<Slot>
MemoryPool::allocate()
{
    return allocate(nullptr);
}

Result<Slot>
MemoryPool::allocate(mpk::KeyRing::Participant* self)
{
    Core& c = *core_;
    const uint32_t nshards = uint32_t(c.shards.size());
    const uint32_t home = c.homeShard();

    uint64_t index = UINT64_MAX;
    bool from_warm = false;
    for (int attempt = 0; attempt < 2 && index == UINT64_MAX; attempt++) {
        for (uint32_t round = 0; round < nshards && index == UINT64_MAX;
             round++) {
            Core::Shard& sh = c.shards[(home + round) % nshards];
            std::lock_guard<std::mutex> lock(sh.mu);
            if (!sh.warm.empty()) {
                index = sh.warm.back();
                sh.warm.pop_back();
                from_warm = true;
            } else if (!sh.cold.empty()) {
                index = sh.cold.back();
                sh.cold.pop_back();
            } else {
                continue;
            }
            c.state[index].store(kInUse, std::memory_order_relaxed);
            if (round > 0)
                c.counters.steals.fetch_add(1,
                                            std::memory_order_relaxed);
        }
        if (index != UINT64_MAX || !c.opts.deferredDecommit)
            break;

        // Every free list is empty but slots may still sit in (or be
        // mid-flight through) the reclaim queue: claim one and decommit
        // it inline rather than reporting a transient exhaustion.
        if (c.popPendingReclaim(&index)) {
            c.state[index].store(kInUse, std::memory_order_relaxed);
            if (Status st = c.decommitSlot(index); !st) {
                c.firstCommitFailed(index);
                return Result<Slot>::error(st.message());
            }
        } else if (attempt == 0) {
            // A reclaim batch may be in flight between the queue and
            // the cold lists; wait for the reclaimer and rescan once.
            std::unique_lock<std::mutex> lock(c.reclaimMu);
            c.idleCv.wait(lock, [&] { return !c.reclaimerBusy; });
        }
    }
    if (index == UINT64_MAX)
        return Result<Slot>::error("pool exhausted");

    Slot slot;
    slot.index = index;
    slot.base = c.slab.base() + c.layout.slotOffset(index);

    if (c.ring != nullptr) {
        // Lease mode: a fresh generation-counted lease per occupancy.
        // Pass the address-space neighbors' colors as the avoid mask so
        // adjacent slots keep distinct colors (the contiguous-overflow
        // contract striping provides).
        uint16_t avoid = 0;
        auto maskOf = [](int k) -> uint16_t {
            return (k > 0 && k < mpk::kNumKeys) ? uint16_t(1u << k) : 0;
        };
        if (index > 0) {
            avoid |= maskOf(
                c.slotKey[index - 1].load(std::memory_order_relaxed));
        }
        if (index + 1 < c.layout.numSlots) {
            avoid |= maskOf(
                c.slotKey[index + 1].load(std::memory_order_relaxed));
        }
        auto lease = c.ring->acquire(self, avoid);
        if (!lease) {
            c.firstCommitFailed(index);
            return Result<Slot>::error(lease.message());
        }
        slot.pkey = lease->key;
        slot.keyGeneration = lease->generation;
    } else {
        slot.pkey = keyOfStripe(c.layout.stripeOf(index));
    }

    uint64_t commit = c.layout.maxMemoryBytes;
    if (!c.committed[index]) {
        // First use: commit the memory range and stamp its color. In
        // static-stripe mode on MPK the color persists across
        // free/decommit cycles (the PTE stores it), so this happens
        // once per slot lifetime.
        Status st =
            slot.pkey != 0
                ? c.mpk->protectRange(slot.base, commit,
                                      PageAccess::ReadWrite, slot.pkey)
                : c.slab.protect(c.layout.slotOffset(index), commit,
                                 PageAccess::ReadWrite);
        if (!st) {
            if (c.ring != nullptr)
                c.ring->release({slot.pkey, slot.keyGeneration});
            c.firstCommitFailed(index);
            return Result<Slot>::error(st.message());
        }
        c.committed[index] = 1;
        c.counters.firstCommits.fetch_add(1, std::memory_order_relaxed);
        c.slotKey[index].store(slot.pkey, std::memory_order_relaxed);
        c.slotKeyGen[index].store(slot.keyGeneration,
                                  std::memory_order_relaxed);
        c.needsRecolor[index].store(0, std::memory_order_relaxed);
    } else {
        bool colorChanged =
            c.ring != nullptr &&
            (c.slotKey[index].load(std::memory_order_relaxed) !=
                 slot.pkey ||
             c.slotKeyGen[index].load(std::memory_order_relaxed) !=
                 slot.keyGeneration);
        bool stale =
            c.needsRecolor[index].load(std::memory_order_relaxed) != 0;
        if (colorChanged || stale) {
            if (colorChanged) {
                // The previous occupant ran under a different (key,
                // generation). Scrub before re-coloring: any bytes a
                // stale same-color PKRU could have scribbled between
                // retire and reissue must not reach the new tenant.
                if (c.slab.decommit(c.layout.slotOffset(index), commit)
                        .isOk()) {
                    c.counters.decommits.fetch_add(
                        1, std::memory_order_relaxed);
                    c.counters.decommittedBytes.fetch_add(
                        commit, std::memory_order_relaxed);
                    c.dirtyBytes[index] = 0;
                    if (!c.mpk->tagsSurviveDecommit())
                        c.mpk->onDecommit(slot.base, commit);
                }
            }
            Status st =
                slot.pkey != 0
                    ? c.mpk->protectRange(slot.base, commit,
                                          PageAccess::ReadWrite,
                                          slot.pkey)
                    : c.slab.protect(c.layout.slotOffset(index), commit,
                                     PageAccess::ReadWrite);
            if (!st) {
                if (c.ring != nullptr)
                    c.ring->release({slot.pkey, slot.keyGeneration});
                c.firstCommitFailed(index);
                return Result<Slot>::error(st.message());
            }
            (colorChanged ? c.counters.recolors : c.counters.retags)
                .fetch_add(1, std::memory_order_relaxed);
            c.slotKey[index].store(slot.pkey, std::memory_order_relaxed);
            c.slotKeyGen[index].store(slot.keyGeneration,
                                      std::memory_order_relaxed);
            c.needsRecolor[index].store(0, std::memory_order_relaxed);
        }
    }

    c.inUse.fetch_add(1, std::memory_order_relaxed);
    c.counters.allocations.fetch_add(1, std::memory_order_relaxed);

    if (from_warm) {
        c.counters.warmHits.fetch_add(1, std::memory_order_relaxed);
        slot.warm = true;
        if (c.opts.zeroOnWarmReuse && c.dirtyBytes[index] > 0) {
            SFI_CHECK(c.slab
                          .zero(c.layout.slotOffset(index),
                                c.dirtyBytes[index])
                          .isOk());
            c.counters.warmZeroes.fetch_add(1,
                                            std::memory_order_relaxed);
            c.counters.warmZeroedBytes.fetch_add(
                c.dirtyBytes[index], std::memory_order_relaxed);
            c.dirtyBytes[index] = 0;
        }
        slot.dirtyBytes = c.dirtyBytes[index];
    }
    return slot;
}

Status
MemoryPool::free(const Slot& slot, uint64_t touched_bytes)
{
    Core& c = *core_;
    if (slot.index >= c.layout.numSlots)
        return Status::error("freeing a slot that is not in use");
    // The in-use check is a CAS so a concurrent double free cannot
    // slip a slot onto two free lists.
    uint8_t expected = kInUse;
    if (!c.state[slot.index].compare_exchange_strong(
            expected, kFreeing, std::memory_order_relaxed))
        return Status::error("freeing a slot that is not in use");

    uint64_t dirty = std::min(alignUp(touched_bytes, kOsPageSize),
                              c.layout.maxMemoryBytes);
    if (c.committed[slot.index])
        c.dirtyBytes[slot.index] =
            std::max(c.dirtyBytes[slot.index], dirty);

    c.counters.frees.fetch_add(1, std::memory_order_relaxed);
    c.inUse.fetch_sub(1, std::memory_order_relaxed);

    // Lease mode: the release (which can retire the key and later run
    // the retire-time scrub) must happen only after the slot has landed
    // on a free list or the reclaim queue — the scrub finds cohort
    // slots through those structures. Deferred to the return paths.
    Core* core = &c;
    uint64_t index = slot.index;
    int leaseKey = slot.pkey;
    uint64_t leaseGen = slot.keyGeneration;
    auto releaseLease = [core, index, leaseKey, leaseGen] {
        if (core->ring == nullptr || leaseKey == 0)
            return;
        core->ring->release(
            {leaseKey, leaseGen}, [core, index, leaseKey, leaseGen] {
                core->scrubRetiredSlot(index, leaseKey, leaseGen);
            });
    };

    // Warm-affinity: keep the slot committed in the freeing thread's
    // shard if there is cache room.
    if (c.opts.warmSlotsPerShard > 0 && c.committed[slot.index]) {
        // Trim the resident span first: memset-zeroing on reuse only
        // beats decommit+refault while the span is small, so a large
        // footprint keeps just its head committed and the tail goes
        // through one madvise here.
        uint64_t keep =
            alignDown(c.opts.warmKeepResidentBytes, kOsPageSize);
        bool trimmed = true;
        if (c.dirtyBytes[slot.index] > keep) {
            uint64_t tail = c.dirtyBytes[slot.index] - keep;
            if (c.slab
                    .decommit(c.layout.slotOffset(slot.index) + keep,
                              tail)
                    .isOk()) {
                c.counters.decommits.fetch_add(
                    1, std::memory_order_relaxed);
                c.counters.decommittedBytes.fetch_add(
                    tail, std::memory_order_relaxed);
                c.dirtyBytes[slot.index] = keep;
                c.notifyDecommit(slot.index,
                                 c.layout.slotOffset(slot.index) + keep,
                                 tail);
            } else {
                // Full decommit below; the slot skips the warm cache.
                trimmed = false;
            }
        }
        if (trimmed) {
            bool cached = false;
            {
                Core::Shard& sh = c.shards[c.homeShard()];
                std::lock_guard<std::mutex> lock(sh.mu);
                if (sh.warm.size() < c.opts.warmSlotsPerShard) {
                    c.state[slot.index].store(kWarm,
                                              std::memory_order_relaxed);
                    sh.warm.push_back(slot.index);
                    cached = true;
                }
            }
            if (cached) {
                releaseLease();
                return Status::ok();
            }
        }
    }

    if (c.opts.deferredDecommit) {
        bool kick;
        {
            std::lock_guard<std::mutex> lock(c.reclaimMu);
            c.state[slot.index].store(kPending,
                                      std::memory_order_relaxed);
            c.reclaimQueue.push_back(slot.index);
            c.pendingDirty += c.dirtyBytes[slot.index];
            kick = c.pendingDirty >= c.opts.dirtyByteBudget;
        }
        if (kick)
            c.reclaimCv.notify_one();
        releaseLease();
        return Status::ok();
    }

    // Synchronous path: zero-on-reuse via decommit of the dirty span.
    Status st = c.decommitSlot(slot.index);
    {
        Core::Shard& sh = c.shards[c.homeShard()];
        std::lock_guard<std::mutex> lock(sh.mu);
        c.state[slot.index].store(kCold, std::memory_order_relaxed);
        sh.cold.push_back(slot.index);
    }
    releaseLease();
    return st;
}

Status
MemoryPool::free(const Slot& slot)
{
    return free(slot, core_->layout.maxMemoryBytes);
}

void
MemoryPool::Core::reclaimerLoop()
{
    std::unique_lock<std::mutex> lock(reclaimMu);
    for (;;) {
        reclaimCv.wait(lock, [&] {
            return stopRequested ||
                   (!reclaimQueue.empty() &&
                    (drainRequested ||
                     pendingDirty >= opts.dirtyByteBudget));
        });
        if (reclaimQueue.empty() && stopRequested)
            return;

        std::deque<uint64_t> batch = std::move(reclaimQueue);
        reclaimQueue.clear();
        pendingDirty = 0;
        reclaimerBusy = true;
        lock.unlock();

        // Batched madvise, then back to the cold lists. Slot metadata
        // is owned by the reclaimer here (state == kPending).
        for (uint64_t index : batch) {
            (void)decommitSlot(index);
            Shard& sh = shards[index % shards.size()];
            std::lock_guard<std::mutex> shard_lock(sh.mu);
            state[index].store(kCold, std::memory_order_relaxed);
            sh.cold.push_back(index);
        }

        lock.lock();
        reclaimerBusy = false;
        idleCv.notify_all();
    }
}

void
MemoryPool::Core::drainReclaimer()
{
    if (!reclaimer.joinable())
        return;
    std::unique_lock<std::mutex> lock(reclaimMu);
    drainRequested = true;
    reclaimCv.notify_all();
    idleCv.wait(lock,
                [&] { return reclaimQueue.empty() && !reclaimerBusy; });
    drainRequested = false;
}

/** Claim @p index off whichever free list holds it. */
bool
MemoryPool::Core::stealFromLists(uint64_t index)
{
    for (Shard& sh : shards) {
        std::lock_guard<std::mutex> lock(sh.mu);
        auto it = std::find(sh.warm.begin(), sh.warm.end(), index);
        if (it != sh.warm.end()) {
            sh.warm.erase(it);
            state[index].store(kFreeing, std::memory_order_relaxed);
            return true;
        }
        it = std::find(sh.cold.begin(), sh.cold.end(), index);
        if (it != sh.cold.end()) {
            sh.cold.erase(it);
            state[index].store(kFreeing, std::memory_order_relaxed);
            return true;
        }
    }
    return false;
}

/**
 * Retire-time scrub, run by the KeyRing after the PKRU fence and before
 * the key is reissued. A retired cohort slot is necessarily free (its
 * lease was released, and release happens only after the slot reaches a
 * free list or the reclaim queue), so it is claimed through those
 * structures, its previous occupant's bytes are dropped, and it is
 * flagged for re-coloring on its next checkout. Without this, a warm
 * slot of the retired cohort would keep its old tenant's data readable
 * by the key's *next* tenant — the cross-generation aliasing the stress
 * tier hunts for.
 */
void
MemoryPool::Core::scrubRetiredSlot(uint64_t index, int key, uint64_t gen)
{
    if (slotKey[index].load(std::memory_order_relaxed) != key ||
        slotKeyGen[index].load(std::memory_order_relaxed) != gen) {
        return;  // re-leased and re-colored since; nothing stale left
    }
    needsRecolor[index].store(1, std::memory_order_relaxed);
    bool owned = stealFromLists(index);
    if (!owned &&
        state[index].load(std::memory_order_relaxed) == kPending) {
        // In the reclaimer's hands; wait for the batch to land back on
        // the cold lists, then claim it there.
        drainReclaimer();
        owned = stealFromLists(index);
    }
    if (!owned) {
        // Already checked out again under a *different* lease: that
        // allocate observed the key/generation change and did the
        // scrub + recolor itself.
        return;
    }
    (void)decommitSlot(index);
    Shard& sh = shards[index % shards.size()];
    std::lock_guard<std::mutex> lock(sh.mu);
    state[index].store(kCold, std::memory_order_relaxed);
    sh.cold.push_back(index);
}

void
MemoryPool::quiesce()
{
    core_->drainReclaimer();
}

MemoryPool::Stats
MemoryPool::stats() const
{
    Core& c = *core_;
    Stats s;
    s.allocations = c.counters.allocations.load(std::memory_order_relaxed);
    s.frees = c.counters.frees.load(std::memory_order_relaxed);
    s.firstCommits =
        c.counters.firstCommits.load(std::memory_order_relaxed);
    s.warmHits = c.counters.warmHits.load(std::memory_order_relaxed);
    s.warmZeroes = c.counters.warmZeroes.load(std::memory_order_relaxed);
    s.warmZeroedBytes =
        c.counters.warmZeroedBytes.load(std::memory_order_relaxed);
    s.steals = c.counters.steals.load(std::memory_order_relaxed);
    s.decommits = c.counters.decommits.load(std::memory_order_relaxed);
    s.decommittedBytes =
        c.counters.decommittedBytes.load(std::memory_order_relaxed);
    s.recolors = c.counters.recolors.load(std::memory_order_relaxed);
    s.retags = c.counters.retags.load(std::memory_order_relaxed);
    if (c.ring != nullptr) {
        mpk::KeyRing::Stats rs = c.ring->stats();
        s.keyRecycles = rs.keyRecycles;
        s.recycleStallNs = rs.recycleStallNs;
        s.keyShares = rs.keyShares;
    }
    for (Core::Shard& sh : c.shards) {
        std::lock_guard<std::mutex> lock(sh.mu);
        s.coldDepth += sh.cold.size();
        s.warmDepth += sh.warm.size();
    }
    {
        std::lock_guard<std::mutex> lock(c.reclaimMu);
        s.pendingReclaim = c.reclaimQueue.size();
    }
    return s;
}

const SlotLayout&
MemoryPool::layout() const
{
    return core_->layout;
}

uint64_t
MemoryPool::slotsInUse() const
{
    return core_->inUse.load(std::memory_order_relaxed);
}

uint64_t
MemoryPool::capacity() const
{
    return core_->layout.numSlots;
}

mpk::System&
MemoryPool::mpkSystem() const
{
    return *core_->mpk;
}

mpk::Pkey
MemoryPool::keyOfStripe(uint64_t s) const
{
    const auto& keys = core_->stripeKeys;
    return keys.empty() ? 0 : keys[s % keys.size()];
}

rt::LinearMemory
MemoryPool::memoryView(const Slot& slot, uint32_t initial_pages,
                       uint32_t max_pages) const
{
    const Core& c = *core_;
    uint64_t max_bytes = uint64_t(max_pages) * kWasmPageSize;
    SFI_CHECK_MSG(max_bytes <= c.layout.maxMemoryBytes,
                  "instance max memory exceeds pool slot size");
    // Fault attribution covers the compiler contract window.
    uint64_t reserved = std::min(
        c.layout.expectedSlotBytes,
        c.layout.totalSlotBytes - c.layout.slotOffset(slot.index));
    return rt::LinearMemory::view(slot.base, initial_pages, max_pages,
                                  reserved);
}

}  // namespace sfi::pool
