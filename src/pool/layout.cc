#include "pool/layout.h"

#include <algorithm>

#include "base/units.h"

namespace sfi::pool {

namespace {

/** Arithmetic helpers that either saturate (buggy) or flag overflow. */
class Arith
{
  public:
    explicit Arith(LayoutArithmetic mode) : mode_(mode) {}

    uint64_t
    add(uint64_t a, uint64_t b)
    {
        uint64_t r;
        if (__builtin_add_overflow(a, b, &r)) {
            if (mode_ == LayoutArithmetic::SaturatingBuggy)
                return UINT64_MAX;  // the §5.2 bug: silently saturate
            overflowed_ = true;
            return 0;
        }
        return r;
    }

    uint64_t
    mul(uint64_t a, uint64_t b)
    {
        uint64_t r;
        if (__builtin_mul_overflow(a, b, &r)) {
            if (mode_ == LayoutArithmetic::SaturatingBuggy)
                return UINT64_MAX;
            overflowed_ = true;
            return 0;
        }
        return r;
    }

    bool overflowed() const { return overflowed_; }

  private:
    LayoutArithmetic mode_;
    bool overflowed_ = false;
};

uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return b == 0 ? 0 : (a + b - 1) / b;
}

}  // namespace

Result<SlotLayout>
computeLayout(const PoolConfig& config, LayoutArithmetic arithmetic)
{
    if (config.numSlots == 0)
        return Result<SlotLayout>::error("pool needs at least one slot");
    if (config.maxMemoryBytes == 0)
        return Result<SlotLayout>::error("maxMemoryBytes must be nonzero");
    if (config.keysAvailable < 1 ||
        config.keysAvailable > 15) {
        return Result<SlotLayout>::error(
            "keysAvailable must be within [1, 15]");
    }

    Arith ar(arithmetic);
    SlotLayout lay;
    lay.numSlots = config.numSlots;
    lay.maxMemoryBytes = alignUp(config.maxMemoryBytes, kWasmPageSize);
    lay.guardBytes = alignUp(config.guardBytes, kOsPageSize);
    lay.expectedSlotBytes =
        config.expectedSlotBytes != 0
            ? alignUp(config.expectedSlotBytes, kWasmPageSize)
            : alignUp(ar.add(lay.maxMemoryBytes, lay.guardBytes),
                      kWasmPageSize);

    if (lay.expectedSlotBytes <
        ar.add(lay.maxMemoryBytes, lay.guardBytes)) {
        return Result<SlotLayout>::error(
            "expectedSlotBytes smaller than maxMemory + guard");
    }

    if (!config.stripingEnabled || config.keysAvailable < 2 ||
        config.numSlots == 1) {
        // Classic layout: every slot carries its own guard space.
        lay.numStripes = 1;
        lay.slotBytes = lay.expectedSlotBytes;
    } else {
        // ColorGuard: shrink slots to the memory size and let striped
        // colors provide the guard. numStripes * slotBytes must cover
        // expectedSlotBytes so the slot of the same color is always at
        // least the contract distance away (Invariant 6).
        lay.slotBytes = alignUp(lay.maxMemoryBytes, kOsPageSize);
        uint64_t needed = ceilDiv(lay.expectedSlotBytes, lay.slotBytes);
        uint64_t avail =
            std::min<uint64_t>(config.keysAvailable, config.numSlots);
        if (needed > avail) {
            // Not enough keys: grow slots until avail stripes suffice —
            // a mix of striping and per-slot guard space (§5.1).
            lay.slotBytes = alignUp(
                ceilDiv(lay.expectedSlotBytes, avail), kOsPageSize);
            needed = ceilDiv(lay.expectedSlotBytes, lay.slotBytes);
        }
        lay.numStripes = std::max<uint64_t>(needed, 1);
        // Cap by Invariant 5: more stripes than guard/maxMemory + 2 is
        // never necessary.
        uint64_t cap = lay.guardBytes / lay.maxMemoryBytes + 2;
        if (lay.numStripes > cap) {
            // Re-derive the slot size directly so the capped stripe
            // count still covers the contract (Invariant 6).
            lay.numStripes = cap;
            lay.slotBytes = alignUp(
                ceilDiv(lay.expectedSlotBytes, lay.numStripes),
                kOsPageSize);
        }
        if (ar.mul(lay.numStripes, lay.slotBytes) <
            lay.expectedSlotBytes) {
            lay.slotBytes = alignUp(
                ceilDiv(lay.expectedSlotBytes, lay.numStripes),
                kOsPageSize);
        }
    }

    lay.preSlotGuardBytes = config.guardBeforeSlots ? lay.guardBytes : 0;
    // The final slot must not rely on MPK: give it enough real guard to
    // honor the contract (Invariant 6, second clause).
    lay.postSlotGuardBytes =
        lay.expectedSlotBytes > lay.slotBytes
            ? lay.expectedSlotBytes - lay.slotBytes
            : lay.guardBytes;
    lay.totalSlotBytes =
        ar.add(ar.add(lay.preSlotGuardBytes,
                      ar.mul(lay.slotBytes, lay.numSlots)),
               lay.postSlotGuardBytes);

    if (ar.overflowed()) {
        return Result<SlotLayout>::error(
            "pool layout arithmetic overflow (checked mode)");
    }
    return lay;
}

Status
SlotLayout::validate(const PoolConfig& config) const
{
    auto fail = [](int n, const char* what) {
        return Status::error("invariant " + std::to_string(n) +
                             " violated: " + what);
    };

    // 1. No leaks / overlaps: piecewise sizes equal the total.
    // (Computed with explicit wideners so a saturated total mismatches.)
    unsigned __int128 pieces =
        static_cast<unsigned __int128>(preSlotGuardBytes) +
        static_cast<unsigned __int128>(slotBytes) * numSlots +
        postSlotGuardBytes;
    if (pieces != static_cast<unsigned __int128>(totalSlotBytes))
        return fail(1, "total != pre + slots + post");

    // 2. Slots hold the largest allowed memory.
    if (slotBytes < maxMemoryBytes)
        return fail(2, "slot smaller than max memory");

    // 3. Page alignment of every size.
    for (uint64_t v : {slotBytes, maxMemoryBytes, preSlotGuardBytes,
                       postSlotGuardBytes, totalSlotBytes}) {
        if (!isAligned(v, kOsPageSize))
            return fail(3, "size not page aligned");
    }

    // 4. Stripe count within MPK's and the pool's capability.
    if (numStripes < 1)
        return fail(4, "no stripes");
    if (numStripes > static_cast<uint64_t>(config.keysAvailable) &&
        numStripes > 1) {
        return fail(4, "more stripes than protection keys");
    }
    if (numStripes > numSlots && numStripes > 1)
        return fail(4, "more stripes than slots");

    // 5. No more stripes than the guard region can ever require.
    if (maxMemoryBytes > 0 &&
        numStripes > guardBytes / maxMemoryBytes + 2) {
        return fail(5, "more stripes than guard/maxMemory + 2");
    }

    // 6. Striping preserves the compiler contract.
    uint64_t to_next_same_color = numStripes * slotBytes;
    uint64_t contract = std::max(expectedSlotBytes, maxMemoryBytes);
    if (numStripes > 1 && to_next_same_color < contract)
        return fail(6, "same-color slots closer than the contract");
    if (slotBytes + postSlotGuardBytes < expectedSlotBytes)
        return fail(6, "last slot relies on MPK for protection");

    // 7. [found by verification] expected slot size Wasm-page aligned.
    if (!isAligned(expectedSlotBytes, kWasmPageSize))
        return fail(7, "expectedSlotBytes not Wasm-page aligned");

    // 8. [found by verification] max memory Wasm-page aligned.
    if (!isAligned(maxMemoryBytes, kWasmPageSize))
        return fail(8, "maxMemoryBytes not Wasm-page aligned");

    // 9. [found by verification] guards OS-page aligned.
    if (!isAligned(guardBytes, kOsPageSize))
        return fail(9, "guardBytes not OS-page aligned");

    // 10. [found by verification] the contract fits the allocation.
    if (expectedSlotBytes > totalSlotBytes)
        return fail(10, "expectedSlotBytes exceeds total allocation");

    return Status::ok();
}

}  // namespace sfi::pool
