/**
 * @file
 * A single-process FaaS host: the paper's simulated edge platform
 * (§6.4.3) built for real on sfikit — pooled ColorGuard instances,
 * fiber-per-request execution, epoch-interruption preemption at a
 * configurable period, and Poisson-distributed IO waits during which
 * other requests are scheduled.
 *
 * The host scales across cores: `workerThreads` OS threads each run
 * their own fiber scheduler over a private share of the request slots,
 * drawing request ids from one atomic counter and checking instance
 * memory in and out of the shared concurrent MemoryPool (sharded
 * free-lists + warm-slot affinity, so per-request recycling does not
 * serialize the workers).
 *
 * Load can be driven two ways: closed-loop (run(): next request issues
 * as soon as a slot frees up — a throughput measurement) or open-loop
 * (runOpenLoop(): requests arrive on a deterministic Poisson/uniform
 * schedule at a configured rate, and per-request
 * arrival->start->finish timestamps feed lock-free per-worker latency
 * reservoirs — the tail-latency measurement closed-loop drivers
 * famously distort through coordinated omission).
 */
#ifndef SFIKIT_FAAS_SCHEDULER_H_
#define SFIKIT_FAAS_SCHEDULER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "base/result.h"
#include "base/rng.h"
#include "base/stats.h"
#include "faas/fiber.h"
#include "faas/loadgen.h"
#include "mpk/keyring.h"
#include "pool/pool.h"
#include "runtime/instance.h"
#include "wasm/module.h"

namespace sfi::faas {

/**
 * What the host does when a shard's admission queue is full and another
 * request has arrived (open-loop overload past the saturation knee).
 */
enum class AdmissionPolicy : uint8_t
{
    /** No admission layer: the legacy claim-directly-from-schedule
     *  path. Queue growth is unbounded (it lives in the arrival
     *  backlog) and sojourn grows without bound past the knee. */
    None,
    /** Claim and immediately fail the newest request (counted, never
     *  served). Bounded queues, bounded sojourn, lossy. */
    Reject,
    /** Admit the newest request and drop the *oldest* queued one —
     *  freshness wins, as in LIFO/drop-head overload designs. */
    Shed,
    /** Stop claiming: arrivals wait upstream and the host admits only
     *  as capacity frees. Lossless; sojourn is measured from admission
     *  (the instant the host accepted the request), which the bounded
     *  queue keeps bounded. */
    Backpressure,
};

/** Which ColorGuard enforcement backend the host instantiates. */
enum class IsolationBackend : uint8_t
{
    Mpk,  ///< emulated MPK (PTE colors + modeled WRPKRU)
    Mte,  ///< emulated MTE (granule tags; tags die with decommit)
};

/** Background thread bumping the global epoch (Wasmtime's design). */
class EpochTimer
{
  public:
    explicit EpochTimer(uint64_t period_us);
    ~EpochTimer();

    const uint64_t*
    counter() const
    {
        return reinterpret_cast<const uint64_t*>(&epoch_);
    }
    uint64_t now() const { return epoch_.load(std::memory_order_relaxed); }

  private:
    // The JIT reads this as a plain u64 through ctx->epochPtr; the
    // atomic wrapper keeps the host side well-defined.
    std::atomic<uint64_t> epoch_{0};
    std::atomic<bool> stop_{false};
    std::thread thread_;

    static_assert(sizeof(std::atomic<uint64_t>) == sizeof(uint64_t));
};

/** The host. */
class FaasHost
{
  public:
    struct Options
    {
        Options() {}

        /** In-flight request slots (instances + fibers), all workers. */
        int maxConcurrent = 64;
        /** Scheduler threads; 1 = run on the caller's thread. */
        int workerThreads = 1;
        /** Pool slot size (max linear memory per instance). */
        uint64_t slotBytes = 2 * kMiB;
        /** ColorGuard striping + per-slot PKRU switching. */
        bool colorguard = true;
        /** Warm-slot affinity reuse when recycling between requests. */
        bool warmAffinity = true;
        /** Take slot decommit off the request path (reclaim thread). */
        bool deferredDecommit = false;
        /** Epoch-interruption period (paper: 1000 us). */
        uint64_t epochUs = 1000;
        /** Mean of the exponential IO delay (paper: 5 ms). */
        double ioDelayMeanMs = 5.0;
        /**
         * Batched entry (§6.4.1): after finishing a request, a fiber
         * drains up to batchMax-1 additional already-arrived requests
         * on the same instance inside one entry/exit pair, skipping
         * the per-request transition setup. The bound is the fairness
         * limit — a slot hands the thread back to the scheduler after
         * at most batchMax requests even if more are queued. 1 = one
         * request per entry (no batching). Batched requests reuse the
         * instance without re-zeroing its memory, the warm-container
         * semantics real FaaS platforms expose.
         */
        int batchMax = 1;
        uint64_t seed = 42;
        /** SFI strategy; epoch checks are forced on. */
        jit::CompilerConfig config = jit::CompilerConfig::wamrSegue();
        /**
         * Tiered cold start (jit/tier.h): compile nothing up front,
         * resolve functions lazily through the process-wide verified
         * code cache, tier up the hot ones. Off = the seed behavior,
         * one monolithic optimized compile before the first request.
         */
        bool tiered = false;
        /** Tier policy when tiered (threshold, cache sharing). */
        jit::TierOptions tierOptions;

        /**
         * Admission control (per worker shard). None keeps the legacy
         * unbounded claim path; the other policies bound each worker's
         * admission queue at admissionQueueDepth and degrade per the
         * policy when it overflows.
         */
        AdmissionPolicy admission = AdmissionPolicy::None;
        /** Per-shard admission queue bound (ignored under None). */
        uint32_t admissionQueueDepth = 64;
        /**
         * Lease slot colors from a generation-counted KeyRing instead
         * of static stripes: live-sandbox count stops being bounded by
         * 15 stripes, at the cost of quiesce/recycle epochs when the
         * key space wraps (counted in Stats).
         */
        bool keyRecycling = false;
        /** Enforcement backend (MPK PTE colors vs MTE granule tags). */
        IsolationBackend backend = IsolationBackend::Mpk;
    };

    struct Stats
    {
        uint64_t completed = 0;
        double elapsedSec = 0;
        double throughputRps = 0;
        uint64_t epochYields = 0;
        uint64_t ioYields = 0;
        uint64_t transitions = 0;
        uint64_t checksum = 0;  ///< xor of responses (verification)

        // Transition-tier counters (§6.4.1).
        /** Sandbox entries (Instance-level transitions). */
        uint64_t sandboxTransitions = 0;
        /** %gs-base writes performed on entry. */
        uint64_t gsSwitches = 0;
        /** %gs-base writes skipped by the warm-entry cache. */
        uint64_t gsSwitchesSkipped = 0;
        /** Requests served as batch extensions (beyond the first in an
         *  entry scope). */
        uint64_t batchedRequests = 0;

        // Cold-start / tiered-compilation counters (ISSUE 9). The
        // tier* fields snapshot the shared TieredModule after the run
        // (zero when Options::tiered is off); coldStarts counts fresh
        // instance spin-ups — each is a FaaS cold start whose first
        // request pays whatever compilation the tier policy defers.
        uint64_t coldStarts = 0;
        uint64_t baselineCompiles = 0;
        uint64_t tierUps = 0;
        uint64_t cacheHits = 0;
        uint64_t interpFallbacks = 0;
        /** Compile+verify wall time spent filling the cache (ns). */
        uint64_t compileNs = 0;
        /** Verifier share of the fills (ns). */
        uint64_t cacheFillVerifyNs = 0;

        // Admission-control counters (zero under AdmissionPolicy::None).
        /** Requests accepted into a shard's admission queue. */
        uint64_t admitted = 0;
        /** Requests failed at admission (Reject). */
        uint64_t rejected = 0;
        /** Queued requests dropped for newer arrivals (Shed). */
        uint64_t shedRequests = 0;
        /** Pump passes that found a shard queue full with work waiting. */
        uint64_t overloadEvents = 0;
        /** Admitted requests served by a non-home worker (stealing). */
        uint64_t stolenAdmissions = 0;
        /** Arrival -> admission wait (meaningful under Backpressure). */
        LogHistogram admissionDelayNs;

        /** Per-worker-shard admission counters. */
        struct ShardStats
        {
            uint64_t admitted = 0;
            uint64_t rejected = 0;
            uint64_t shed = 0;
            uint64_t overloadEvents = 0;
            uint64_t maxDepth = 0;  ///< high-water queue depth
        };
        std::vector<ShardStats> shards;

        // Key-recycling + backend counters (pool passthrough; zero in
        // static-stripe MPK mode).
        uint64_t keyRecycles = 0;
        uint64_t recycleStallNs = 0;
        uint64_t keyShares = 0;
        uint64_t recolors = 0;
        uint64_t retags = 0;

        /** Offered arrival rate (rps); 0 for closed-loop runs. */
        double offeredRps = 0;
        /**
         * Per-request latency distributions in ns, merged from the
         * per-worker reservoirs after the run (the hot path only ever
         * touches its own worker's histograms):
         *   queue   = arrival (or claim, closed-loop) -> start
         *   service = start -> finish (compute + IO waits)
         *   total   = arrival -> finish (the sojourn time; this is the
         *             number coordinated omission hides)
         */
        LogHistogram latencyQueueNs;
        LogHistogram latencyServiceNs;
        LogHistogram latencyTotalNs;
    };

    /**
     * Compiles @p workload (must export `handle(i32)->i64` and import
     * `io_wait(i32)`) and builds the instance pool.
     */
    static Result<std::unique_ptr<FaasHost>> create(wasm::Module workload,
                                                    Options options);

    ~FaasHost();

    /** Serves @p total_requests closed-loop at full concurrency. */
    Result<Stats> run(uint64_t total_requests);

    /**
     * Serves @p total_requests open-loop: request i becomes eligible at
     * the @p load schedule's i-th arrival timestamp whether or not the
     * host is keeping up, and the returned Stats carry latency
     * percentiles measured from that arrival. The schedule is
     * precomputed from (seed, rate, process), so results are
     * reproducible across thread counts.
     */
    Result<Stats> runOpenLoop(uint64_t total_requests,
                              const LoadGenConfig& load);

    const pool::MemoryPool& memoryPool() const { return *pool_; }

  private:
    struct RequestSlot;
    struct Worker;

    /** Outcome of trying to claim the next request id. */
    struct Claim
    {
        /** Claimed id, or UINT64_MAX when nothing was claimable. */
        uint64_t id = UINT64_MAX;
        /** Absolute arrival timestamp of the claimed request (ns). */
        uint64_t enqueueNs = 0;
        /**
         * When nothing was claimed: absolute ns at which the next
         * request arrives, or UINT64_MAX when all ids are taken.
         */
        uint64_t nextArrivalNs = UINT64_MAX;
    };

    FaasHost() = default;

    Result<Stats> runInternal(uint64_t total_requests);
    void workerLoop(Worker* worker);
    Status workerSetup(Worker* worker);
    void workerTeardown(Worker* worker);
    void requestBody(RequestSlot* slot);
    void yieldFromGuest(RequestSlot* slot);

    /**
     * Claims the next request id whose arrival time has passed. In
     * closed-loop mode (no arrival schedule) every remaining id is
     * immediately claimable.
     */
    Claim claimRequest(uint64_t now_ns);

    /** Is there an arrived-but-unclaimed request right now? */
    bool arrivalPending(uint64_t now_ns) const;

    /**
     * Admission pump: move arrived requests from the global schedule
     * into @p worker's bounded queue, applying the overflow policy.
     * No-op under AdmissionPolicy::None.
     */
    void pumpAdmission(Worker* worker, uint64_t now_ns);

    /**
     * Next request for a slot to serve: the admission queue (own shard,
     * then stealing) when admission control is on, else the raw claim
     * path.
     */
    Claim claimForService(Worker* worker, uint64_t now_ns);

    Options opts_;
    std::shared_ptr<const rt::SharedModule> module_;
    // Destruction order (reverse of declaration): pool_ releases leases
    // into ring_, ring_ frees its keys into mpk_ — so mpk_ first, then
    // ring_, then pool_.
    std::unique_ptr<mpk::System> mpk_;
    std::unique_ptr<mpk::KeyRing> ring_;
    std::unique_ptr<pool::MemoryPool> pool_;
    std::unique_ptr<EpochTimer> timer_;
    /** Live only while runInternal executes; for admission stealing. */
    std::vector<Worker*> allWorkers_;

    uint64_t totalRequests_ = 0;
    std::atomic<uint64_t> nextRequestId_{0};

    /**
     * Open-loop arrival schedule (ns offsets from runStartNs_), indexed
     * by request id; empty in closed-loop mode. Written before the
     * worker threads start and read-only during the run.
     */
    std::vector<uint64_t> arrivalNs_;
    uint64_t runStartNs_ = 0;
    double offeredRps_ = 0;
};

}  // namespace sfi::faas

#endif  // SFIKIT_FAAS_SCHEDULER_H_
