#include "faas/fiber.h"

#include "base/logging.h"
#include "base/units.h"

// Context switch: save SysV callee-saved registers on the current
// stack, store rsp through save_slot, adopt new_sp, restore, return on
// the other stack.
asm(R"(
.text
.globl sfikit_fiber_switch
.type sfikit_fiber_switch, @function
sfikit_fiber_switch:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    movq %rsp, (%rdi)
    movq %rsi, %rsp
    popq %r15
    popq %r14
    popq %r13
    popq %r12
    popq %rbx
    popq %rbp
    ret
.size sfikit_fiber_switch, . - sfikit_fiber_switch

.globl sfikit_fiber_boot
.type sfikit_fiber_boot, @function
sfikit_fiber_boot:
    movq %r12, %rdi
    callq *%r13
    ud2
.size sfikit_fiber_boot, . - sfikit_fiber_boot
)");

extern "C" {
void sfikit_fiber_switch(void** save_slot, void* new_sp);
void sfikit_fiber_boot();
}

namespace sfi::faas {

Result<std::unique_ptr<Fiber>>
Fiber::create(std::function<void()> fn, uint64_t stack_bytes)
{
    auto fiber = std::unique_ptr<Fiber>(new Fiber());
    fiber->fn_ = std::move(fn);

    stack_bytes = alignUp(stack_bytes, kOsPageSize);
    // One guard page below the stack.
    auto stack = Reservation::reserve(stack_bytes + kOsPageSize);
    if (!stack)
        return Result<std::unique_ptr<Fiber>>::error(stack.message());
    if (auto st = stack->protect(kOsPageSize, stack_bytes,
                                 PageAccess::ReadWrite);
        !st) {
        return Result<std::unique_ptr<Fiber>>::error(st.message());
    }
    fiber->stack_ = std::move(*stack);

    // Build the initial frame so the first switch "returns" into
    // sfikit_fiber_boot with r12 = this, r13 = entryThunk. Choose
    // addresses so rsp % 16 == 0 when boot's `callq` executes.
    uint8_t* top = fiber->stack_.base() + fiber->stack_.size();
    uint64_t* sp = reinterpret_cast<uint64_t*>(top);
    sp -= 2;  // keep 16-byte alignment after the ret into boot
    *--sp = reinterpret_cast<uint64_t>(&sfikit_fiber_boot);  // ret target
    *--sp = 0;                                            // rbp
    *--sp = 0;                                            // rbx
    *--sp = reinterpret_cast<uint64_t>(fiber.get());      // r12 = arg
    *--sp = reinterpret_cast<uint64_t>(&Fiber::entryThunk);  // r13 = fn
    *--sp = 0;                                            // r14
    *--sp = 0;                                            // r15
    fiber->fiberSp_ = sp;
    return fiber;
}

Fiber::~Fiber()
{
    SFI_CHECK_MSG(!running_, "destroying a running fiber");
    if (started_ && !finished_)
        SFI_WARN("fiber destroyed while suspended; stack abandoned");
}

void
Fiber::entryThunk(void* self)
{
    Fiber* fiber = static_cast<Fiber*>(self);
    fiber->fn_();
    fiber->finished_ = true;
    // Final switch back; never returns.
    sfikit_fiber_switch(&fiber->fiberSp_, fiber->resumerSp_);
    SFI_PANIC("resumed a finished fiber");
}

void
Fiber::resume()
{
    SFI_CHECK_MSG(!finished_, "resuming a finished fiber");
    SFI_CHECK_MSG(!running_, "fiber already running");
    running_ = true;
    started_ = true;
    sfikit_fiber_switch(&resumerSp_, fiberSp_);
    running_ = false;
}

void
Fiber::yield()
{
    SFI_CHECK_MSG(running_, "yield outside the fiber");
    sfikit_fiber_switch(&fiberSp_, resumerSp_);
}

}  // namespace sfi::faas
