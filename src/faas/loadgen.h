/**
 * @file
 * Open-loop load generation for the FaaS host (§6.4.2's scalability
 * story, measured the way the serverless literature reports it).
 *
 * A closed-loop driver waits for a response before issuing the next
 * request, so under overload it silently slows its own offered load and
 * the tail disappears from the numbers (coordinated omission). The
 * open-loop generator instead fixes an *arrival process*: request i
 * becomes eligible at a precomputed timestamp regardless of how the
 * system is doing, and latency is measured from that arrival — backlog
 * and queueing delay show up in the percentiles, which is the point.
 *
 * Arrivals are generated from the deterministic xoshiro RNG, so a
 * (seed, rate, process) triple names one reproducible schedule across
 * runs, thread counts, and machines.
 */
#ifndef SFIKIT_FAAS_LOADGEN_H_
#define SFIKIT_FAAS_LOADGEN_H_

#include <cstdint>
#include <vector>

#include "base/rng.h"

namespace sfi::faas {

/** Inter-arrival distribution of the open-loop generator. */
enum class ArrivalProcess {
    Poisson,  ///< exponential inter-arrivals (memoryless, the default)
    Uniform,  ///< fixed-rate arrivals (deterministic pacing)
};

struct LoadGenConfig
{
    /** Offered load: mean arrivals per second. Must be > 0. */
    double ratePerSec = 1000.0;
    ArrivalProcess process = ArrivalProcess::Poisson;
    uint64_t seed = 42;
};

/**
 * Streaming arrival-time generator: each call to nextArrivalNs()
 * returns the next request's arrival offset (ns from the run start),
 * monotonically non-decreasing.
 */
class LoadGen
{
  public:
    explicit LoadGen(LoadGenConfig config);

    /** Arrival offset of the next request, ns from run start. */
    uint64_t nextArrivalNs();

    /**
     * The full schedule for @p n requests as absolute ns offsets —
     * what FaasHost precomputes so concurrent workers can gate request
     * claims on nothing but a load-acquire of the clock.
     */
    static std::vector<uint64_t> schedule(const LoadGenConfig& config,
                                          uint64_t n);

  private:
    LoadGenConfig config_;
    Rng rng_;
    double nextNs_ = 0;  ///< accumulated in double to avoid drift
};

}  // namespace sfi::faas

#endif  // SFIKIT_FAAS_LOADGEN_H_
