#include "faas/scheduler.h"

#include <algorithm>

#include "base/cpu.h"
#include "base/logging.h"
#include "base/units.h"
#include "runtime/signals.h"
#include "seg/seg.h"

namespace sfi::faas {

EpochTimer::EpochTimer(uint64_t period_us)
{
    thread_ = std::thread([this, period_us] {
        while (!stop_.load(std::memory_order_relaxed)) {
            struct timespec ts;
            ts.tv_sec = 0;
            ts.tv_nsec = long(period_us * 1000);
            nanosleep(&ts, nullptr);
            epoch_.fetch_add(1, std::memory_order_relaxed);
        }
    });
}

EpochTimer::~EpochTimer()
{
    stop_.store(true);
    thread_.join();
}

/** One in-flight request: fiber + pooled instance + schedule state. */
struct FaasHost::RequestSlot
{
    FaasHost* host = nullptr;
    int index = 0;
    std::unique_ptr<Fiber> fiber;
    pool::Slot poolSlot;
    std::unique_ptr<rt::Instance> instance;

    uint64_t requestId = 0;
    /** Wall-clock ns when this fiber may run again. */
    uint64_t readyAtNs = 0;
    bool active = false;      ///< has an in-flight request
    bool needsRequest = true; ///< waiting to be assigned one

    /** Saved sandbox context across yields. */
    rt::ActiveExecution* savedExec = nullptr;
    uint64_t savedGs = 0;
    mpk::Pkru savedPkru{};
};

Result<std::unique_ptr<FaasHost>>
FaasHost::create(wasm::Module workload, Options options)
{
    auto host = std::unique_ptr<FaasHost>(new FaasHost());
    host->opts_ = std::move(options);
    host->rng_ = Rng(host->opts_.seed);

    jit::CompilerConfig cfg = host->opts_.config;
    cfg.epochChecks = true;
    auto shared = rt::SharedModule::compile(std::move(workload), cfg);
    if (!shared)
        return Result<std::unique_ptr<FaasHost>>::error(shared.message());
    host->module_ = *shared;

    // Pool: slots sized to the workload's memory, ColorGuard striping.
    host->mpk_ = mpk::makeEmulated();
    pool::MemoryPool::Options popt;
    popt.config.numSlots = uint64_t(host->opts_.maxConcurrent);
    popt.config.maxMemoryBytes = host->opts_.slotBytes;
    popt.config.guardBytes = 8 * host->opts_.slotBytes;
    popt.config.stripingEnabled = host->opts_.colorguard;
    popt.mpk = host->mpk_.get();
    auto pool = pool::MemoryPool::create(std::move(popt));
    if (!pool)
        return Result<std::unique_ptr<FaasHost>>::error(pool.message());
    host->pool_ =
        std::make_unique<pool::MemoryPool>(std::move(*pool));

    host->timer_ = std::make_unique<EpochTimer>(host->opts_.epochUs);
    return Result<std::unique_ptr<FaasHost>>(std::move(host));
}

FaasHost::~FaasHost() = default;

void
FaasHost::yieldFromGuest(RequestSlot* slot)
{
    // Stash the sandbox context (signal ownership, %gs, PKRU) so other
    // instances can run, then restore it on resume.
    slot->savedExec = rt::setActiveExecution(nullptr);
    slot->savedGs = seg::getGsBase();
    slot->savedPkru = mpk_->readPkru();
    mpk_->writePkru(mpk::Pkru::allowAll());

    slot->fiber->yield();

    mpk_->writePkru(slot->savedPkru);
    seg::setGsBase(slot->savedGs);
    rt::setActiveExecution(slot->savedExec);
}

void
FaasHost::requestBody(RequestSlot* slot)
{
    const uint32_t min_pages = std::max<uint32_t>(
        module_->module().memory.minPages, 1);
    const uint32_t max_pages = static_cast<uint32_t>(
        std::min<uint64_t>(module_->module().memory.maxPages,
                           opts_.slotBytes / kWasmPageSize));

    rt::Instance::Options iopt;
    iopt.memoryView = pool_->memoryView(slot->poolSlot, min_pages,
                                        max_pages);
    if (opts_.colorguard) {
        iopt.mpkSystem = mpk_.get();
        iopt.pkey = slot->poolSlot.pkey;
    }
    auto inst = rt::Instance::create(
        module_,
        {{"io_wait",
          [this, slot](uint64_t*, size_t) {
              // Simulated IO: park until the Poisson delay elapses.
              double delay =
                  rng_.nextExponential(opts_.ioDelayMeanMs * 1e6);
              slot->readyAtNs = monotonicNs() + uint64_t(delay);
              stats_.ioYields++;
              yieldFromGuest(slot);
              return rt::HostOutcome{};
          }}},
        std::move(iopt));
    SFI_CHECK_MSG(inst.isOk(), "instance creation failed: %s",
                  inst.message().c_str());
    slot->instance = std::move(*inst);
    slot->instance->setEpoch(timer_->counter(), timer_->now());
    slot->instance->setEpochCallback([this, slot] {
        // Preempted: yield to the scheduler, run again next round.
        slot->readyAtNs = 0;
        stats_.epochYields++;
        yieldFromGuest(slot);
        slot->instance->setEpochDeadline(timer_->now());
    });

    auto out = slot->instance->call(
        "handle", {slot->requestId & 0xffffffffu});
    SFI_CHECK_MSG(out.ok(), "request trapped: %s", rt::name(out.trap));
    stats_.checksum ^= out.value + slot->requestId;
    stats_.completed++;
    slot->active = false;
}

Result<FaasHost::Stats>
FaasHost::run(uint64_t total_requests)
{
    stats_ = Stats{};
    remaining_ = total_requests;
    nextRequestId_ = 0;

    slots_.clear();
    for (int i = 0; i < opts_.maxConcurrent; i++) {
        auto slot = std::make_unique<RequestSlot>();
        slot->host = this;
        slot->index = i;
        auto ps = pool_->allocate();
        if (!ps)
            return Result<Stats>::error(ps.message());
        slot->poolSlot = *ps;
        slots_.push_back(std::move(slot));
    }

    uint64_t start_ns = monotonicNs();
    uint64_t live = 0;

    while (stats_.completed < total_requests) {
        uint64_t now = monotonicNs();
        uint64_t next_ready = UINT64_MAX;
        bool progressed = false;

        for (auto& slot_ptr : slots_) {
            RequestSlot* slot = slot_ptr.get();
            if (!slot->active) {
                if (remaining_ == 0)
                    continue;
                // Assign a new request: fresh fiber + recycled slot
                // memory (decommit -> zero on reuse).
                remaining_--;
                slot->requestId = nextRequestId_++;
                slot->active = true;
                slot->readyAtNs = 0;
                SFI_CHECK(pool_->free(slot->poolSlot).isOk());
                auto ps = pool_->allocate();
                SFI_CHECK(ps.isOk());
                slot->poolSlot = *ps;
                auto fiber = Fiber::create(
                    [this, slot] { requestBody(slot); });
                SFI_CHECK_MSG(fiber.isOk(), "%s",
                              fiber.message().c_str());
                slot->fiber = std::move(*fiber);
                live++;
            }
            if (slot->readyAtNs > now) {
                next_ready = std::min(next_ready, slot->readyAtNs);
                continue;
            }
            stats_.transitions++;
            slot->fiber->resume();
            progressed = true;
            if (slot->fiber->finished()) {
                slot->fiber.reset();
                live--;
            } else if (slot->readyAtNs > 0) {
                next_ready = std::min(next_ready, slot->readyAtNs);
            }
            now = monotonicNs();
        }

        if (!progressed && next_ready != UINT64_MAX) {
            uint64_t wait = next_ready > now ? next_ready - now : 0;
            if (wait > 10'000) {
                struct timespec ts;
                ts.tv_sec = long(wait / 1'000'000'000ull);
                ts.tv_nsec = long(wait % 1'000'000'000ull);
                nanosleep(&ts, nullptr);
            }
        }
    }

    // Return every slot to the pool so run() can be called again.
    for (auto& slot : slots_) {
        SFI_CHECK(pool_->free(slot->poolSlot).isOk());
        slot->instance.reset();
    }
    slots_.clear();

    stats_.elapsedSec =
        double(monotonicNs() - start_ns) / 1e9;
    stats_.throughputRps =
        stats_.elapsedSec > 0 ? double(stats_.completed) / stats_.elapsedSec
                              : 0;
    return stats_;
}

}  // namespace sfi::faas
