#include "faas/scheduler.h"

#include <algorithm>
#include <deque>
#include <mutex>

#include "base/cpu.h"
#include "base/fault.h"
#include "base/logging.h"
#include "base/units.h"
#include "mpk/mte_backend.h"
#include "runtime/signals.h"
#include "seg/seg.h"

namespace sfi::faas {

EpochTimer::EpochTimer(uint64_t period_us)
{
    thread_ = std::thread([this, period_us] {
        // Sleep in bounded chunks rather than one nanosleep per period:
        // tv_nsec must stay below 1e9 (a raw `period_us * 1000` fails
        // EINVAL for any period >= 1 s, returning immediately and
        // spinning the epoch at MHz rate), and capping each chunk keeps
        // destruction prompt for long periods.
        constexpr uint64_t kMaxChunkUs = 50'000;
        const uint64_t period = std::max<uint64_t>(period_us, 1);
        uint64_t left_us = period;
        while (!stop_.load(std::memory_order_relaxed)) {
            uint64_t chunk = std::min(left_us, kMaxChunkUs);
            struct timespec ts;
            ts.tv_sec = time_t(chunk / 1'000'000);
            ts.tv_nsec = long(chunk % 1'000'000) * 1000;
            nanosleep(&ts, nullptr);
            left_us -= chunk;
            if (left_us == 0) {
                epoch_.fetch_add(1, std::memory_order_relaxed);
                left_us = period;
            }
        }
    });
}

EpochTimer::~EpochTimer()
{
    stop_.store(true);
    thread_.join();
}

/** One in-flight request: fiber + pooled instance + schedule state. */
struct FaasHost::RequestSlot
{
    FaasHost* host = nullptr;
    Worker* worker = nullptr;
    std::unique_ptr<Fiber> fiber;
    pool::Slot poolSlot;
    std::unique_ptr<rt::Instance> instance;

    uint64_t requestId = 0;
    /** Wall-clock ns when this fiber may run again. */
    uint64_t readyAtNs = 0;
    /** Absolute arrival timestamp of the current request (ns). */
    uint64_t enqueueNs = 0;
    /** Absolute start-of-service timestamp (claim time, ns). */
    uint64_t startNs = 0;
    bool active = false;  ///< has an in-flight request

    /** Saved sandbox context across yields. */
    rt::ActiveExecution* savedExec = nullptr;
    uint64_t savedGs = 0;
    mpk::Pkru savedPkru{};
};

/** One scheduler thread: a private share of the request slots plus
 *  per-thread RNG and statistics (merged after the run). */
struct FaasHost::Worker
{
    FaasHost* host = nullptr;
    int index = 0;
    int numSlots = 0;
    Rng rng{42};
    Stats stats;
    Status failure;
    std::vector<std::unique_ptr<RequestSlot>> slots;

    // Private latency reservoirs: only this worker's thread writes
    // them during the run; run() merges them after joining, so the
    // record path is an increment into a thread-local histogram.
    LogHistogram latencyQueueNs;
    LogHistogram latencyServiceNs;
    LogHistogram latencyTotalNs;
    LogHistogram admissionDelayNs;

    /** KeyRing fence handle (null unless keyRecycling). */
    mpk::KeyRing::Participant* participant = nullptr;

    /**
     * This worker's admission shard: a bounded queue of accepted
     * (id, enqueueNs) pairs. The mutex is the cross-worker boundary —
     * idle workers steal from the front (oldest first). All other
     * shard counters are owner-written.
     */
    std::mutex admMu;
    std::deque<std::pair<uint64_t, uint64_t>> admitted;
    Stats::ShardStats shard;
};

Result<std::unique_ptr<FaasHost>>
FaasHost::create(wasm::Module workload, Options options)
{
    auto host = std::unique_ptr<FaasHost>(new FaasHost());
    host->opts_ = std::move(options);
    if (host->opts_.workerThreads < 1)
        host->opts_.workerThreads = 1;

    jit::CompilerConfig cfg = host->opts_.config;
    cfg.epochChecks = true;
    auto shared =
        host->opts_.tiered
            ? rt::SharedModule::compileTiered(std::move(workload), cfg,
                                              host->opts_.tierOptions)
            : rt::SharedModule::compile(std::move(workload), cfg);
    if (!shared)
        return Result<std::unique_ptr<FaasHost>>::error(shared.message());
    host->module_ = *shared;

    // Pool: slots sized to the workload's memory, ColorGuard striping,
    // one free-list shard per worker so checkout never funnels through
    // a single lock. The isolation backend is selectable: emulated MPK
    // (default) or the emulated-MTE System, which models §7's tag
    // semantics (tags ride in pointers, tags die with decommit).
    host->mpk_ = host->opts_.backend == IsolationBackend::Mte
                     ? std::unique_ptr<mpk::System>(mpk::makeMteBackend())
                     : mpk::makeEmulated();
    pool::MemoryPool::Options popt;
    popt.config.numSlots = uint64_t(host->opts_.maxConcurrent);
    popt.config.maxMemoryBytes = host->opts_.slotBytes;
    popt.config.guardBytes = 8 * host->opts_.slotBytes;
    popt.config.stripingEnabled = host->opts_.colorguard;
    popt.mpk = host->mpk_.get();
    if (host->opts_.keyRecycling) {
        mpk::KeyRing::Options ropt;
        ropt.system = host->mpk_.get();
        host->ring_ = std::make_unique<mpk::KeyRing>(ropt);
        popt.keyRing = host->ring_.get();
    }
    popt.shards = uint32_t(host->opts_.workerThreads);
    popt.warmSlotsPerShard =
        host->opts_.warmAffinity
            ? uint32_t(std::max(1, host->opts_.maxConcurrent /
                                       host->opts_.workerThreads))
            : 0;
    popt.deferredDecommit = host->opts_.deferredDecommit;
    auto pool = pool::MemoryPool::create(std::move(popt));
    if (!pool)
        return Result<std::unique_ptr<FaasHost>>::error(pool.message());
    host->pool_ =
        std::make_unique<pool::MemoryPool>(std::move(*pool));

    host->timer_ = std::make_unique<EpochTimer>(host->opts_.epochUs);
    return Result<std::unique_ptr<FaasHost>>(std::move(host));
}

FaasHost::~FaasHost() = default;

FaasHost::Claim
FaasHost::claimRequest(uint64_t now_ns)
{
    Claim claim;
    uint64_t cur = nextRequestId_.load(std::memory_order_relaxed);
    while (cur < totalRequests_) {
        // Open-loop gate: id `cur` does not exist until its arrival
        // timestamp. Ids are claimed strictly in arrival order, so
        // checking only the head of the schedule is sufficient.
        uint64_t arrival =
            arrivalNs_.empty() ? now_ns : runStartNs_ + arrivalNs_[cur];
        if (arrival > now_ns) {
            claim.nextArrivalNs = arrival;
            return claim;
        }
        if (nextRequestId_.compare_exchange_weak(
                cur, cur + 1, std::memory_order_relaxed)) {
            claim.id = cur;
            claim.enqueueNs = arrival;
            return claim;
        }
    }
    return claim;
}

bool
FaasHost::arrivalPending(uint64_t now_ns) const
{
    uint64_t cur = nextRequestId_.load(std::memory_order_relaxed);
    if (cur >= totalRequests_)
        return false;
    uint64_t arrival =
        arrivalNs_.empty() ? now_ns : runStartNs_ + arrivalNs_[cur];
    return arrival <= now_ns;
}

void
FaasHost::pumpAdmission(Worker* w, uint64_t now_ns)
{
    if (opts_.admission == AdmissionPolicy::None)
        return;
    const size_t bound = std::max<uint32_t>(opts_.admissionQueueDepth, 1);
    bool saw_overload = false;
    for (;;) {
        size_t depth;
        {
            std::lock_guard<std::mutex> lock(w->admMu);
            depth = w->admitted.size();
        }
        if (depth < bound) {
            if (!arrivalPending(now_ns))
                break;
            // Fault point: pretend the shard is full so tests can
            // drive the overflow/degradation path without saturating
            // the host. Consulted only with an arrival actually
            // claimable, so every forced firing maps to one
            // policy-degraded request.
            if (fault::fire("admission.overflow"))
                goto overflow;
            Claim c = claimRequest(now_ns);
            if (c.id == UINT64_MAX)
                break;
            // Under Backpressure the request's sojourn clock starts at
            // admission, not arrival: the arrival queue upstream of the
            // bounded shard is the load generator's problem, and the
            // bounded queue is what keeps the measured sojourn bounded.
            uint64_t admit = std::max(now_ns, c.enqueueNs);
            w->admissionDelayNs.add(admit - c.enqueueNs);
            uint64_t enqueue =
                opts_.admission == AdmissionPolicy::Backpressure
                    ? admit
                    : c.enqueueNs;
            std::lock_guard<std::mutex> lock(w->admMu);
            w->admitted.emplace_back(c.id, enqueue);
            w->stats.admitted++;
            w->shard.admitted++;
            w->shard.maxDepth =
                std::max<uint64_t>(w->shard.maxDepth, w->admitted.size());
            continue;
        }

        // Queue full. Anything already arrived is overload; how it
        // degrades is the policy.
        if (!arrivalPending(now_ns))
            break;
    overflow:
        saw_overload = true;
        if (opts_.admission == AdmissionPolicy::Backpressure) {
            // Stop claiming: arrivals stay queued upstream and the
            // bounded shard never grows, so per-request sojourn stays
            // bounded while the arrival backlog absorbs the overload.
            break;
        }
        Claim c = claimRequest(now_ns);
        if (c.id == UINT64_MAX)
            break;
        if (opts_.admission == AdmissionPolicy::Reject) {
            // Claim + drop newest: the id is consumed (so the run
            // terminates) but never served.
            w->stats.rejected++;
            w->shard.rejected++;
            continue;
        }
        // Shed: admit the newest, drop the oldest queued request.
        uint64_t admit = std::max(now_ns, c.enqueueNs);
        w->admissionDelayNs.add(admit - c.enqueueNs);
        std::lock_guard<std::mutex> lock(w->admMu);
        w->admitted.emplace_back(c.id, c.enqueueNs);
        if (w->admitted.size() > 1) {
            // May be empty when the fault point forced the overflow
            // path; then there is nothing to drop.
            w->admitted.pop_front();
            w->stats.shedRequests++;
            w->shard.shed++;
        }
        w->stats.admitted++;
        w->shard.admitted++;
    }
    if (saw_overload) {
        w->stats.overloadEvents++;
        w->shard.overloadEvents++;
    }
}

FaasHost::Claim
FaasHost::claimForService(Worker* w, uint64_t now_ns)
{
    if (opts_.admission == AdmissionPolicy::None)
        return claimRequest(now_ns);
    Claim claim;
    {
        std::lock_guard<std::mutex> lock(w->admMu);
        if (!w->admitted.empty()) {
            claim.id = w->admitted.front().first;
            claim.enqueueNs = w->admitted.front().second;
            w->admitted.pop_front();
            return claim;
        }
    }
    // Own shard dry: steal the oldest admission from a sibling so a
    // hot shard cannot back up while others idle.
    for (Worker* v : allWorkers_) {
        if (v == w)
            continue;
        std::lock_guard<std::mutex> lock(v->admMu);
        if (!v->admitted.empty()) {
            claim.id = v->admitted.front().first;
            claim.enqueueNs = v->admitted.front().second;
            v->admitted.pop_front();
            w->stats.stolenAdmissions++;
            return claim;
        }
    }
    // Nothing admitted anywhere; report the next scheduled arrival so
    // the caller can sleep instead of spinning.
    uint64_t cur = nextRequestId_.load(std::memory_order_relaxed);
    if (cur < totalRequests_ && !arrivalNs_.empty())
        claim.nextArrivalNs = runStartNs_ + arrivalNs_[cur];
    return claim;
}

void
FaasHost::yieldFromGuest(RequestSlot* slot)
{
    // Stash the sandbox context (signal ownership, %gs, PKRU) so other
    // instances can run, then restore it on resume.
    //
    // PKRU-under-fibers invariant (audited for the per-thread PKRU in
    // EmulatedMpk): every suspension saves the PKRU *value* into the
    // slot and parks the thread register at allowAll; every resumption
    // rewrites the saved value into whichever thread runs the fiber.
    // Save/restore is by value, never by thread identity, so it would
    // stay correct even if a fiber migrated between workers — though
    // the scheduler never migrates them (a RequestSlot is owned by
    // exactly one Worker and only ever resumed from its workerLoop).
    // Slot recycling cannot observe a stale savedPkru either: a slot is
    // reassigned only after its fiber finished (active == false), and
    // Instance::callFunction restored the entry PKRU before that, so
    // the next request overwrites savedPkru before anyone reads it.
    slot->savedExec = rt::setActiveExecution(nullptr);
    slot->savedGs = seg::getGsBase();
    slot->savedPkru = mpk_->readPkru();
    mpk_->writePkru(mpk::Pkru::allowAll());
    // Quiescent point for key recycling: with PKRU parked at allowAll
    // this thread grants no *retired* key (the saved key is live — its
    // lease is not released until the slot is freed), so recyclers may
    // re-tag behind us.
    if (slot->worker->participant)
        slot->worker->participant->fence();

    slot->fiber->yield();

    mpk_->writePkru(slot->savedPkru);
    seg::setGsBase(slot->savedGs);
    rt::setActiveExecution(slot->savedExec);
}

void
FaasHost::requestBody(RequestSlot* slot)
{
    const uint32_t min_pages = std::max<uint32_t>(
        module_->module().memory.minPages, 1);
    const uint32_t max_pages = static_cast<uint32_t>(
        std::min<uint64_t>(module_->module().memory.maxPages,
                           opts_.slotBytes / kWasmPageSize));

    rt::Instance::Options iopt;
    iopt.memoryView = pool_->memoryView(slot->poolSlot, min_pages,
                                        max_pages);
    if (opts_.colorguard) {
        iopt.mpkSystem = mpk_.get();
        iopt.pkey = slot->poolSlot.pkey;
    }
    Worker* worker = slot->worker;
    auto inst = rt::Instance::create(
        module_,
        {{"io_wait",
          [this, slot, worker](uint64_t*, size_t) {
              // Simulated IO: park until the Poisson delay elapses.
              double delay =
                  worker->rng.nextExponential(opts_.ioDelayMeanMs * 1e6);
              slot->readyAtNs = monotonicNs() + uint64_t(delay);
              worker->stats.ioYields++;
              yieldFromGuest(slot);
              return rt::HostOutcome{};
          }}},
        std::move(iopt));
    SFI_CHECK_MSG(inst.isOk(), "instance creation failed: %s",
                  inst.message().c_str());
    worker->stats.coldStarts++;
    slot->instance = std::move(*inst);
    slot->instance->setEpoch(timer_->counter(), timer_->now());
    slot->instance->setEpochCallback([this, slot, worker] {
        // Preempted: yield to the scheduler, run again next round.
        slot->readyAtNs = 0;
        worker->stats.epochYields++;
        yieldFromGuest(slot);
        slot->instance->setEpochDeadline(timer_->now());
    });

    // Serve the claimed request — and, under batching, drain up to
    // batchMax-1 more already-arrived requests on this instance inside
    // the same entry/exit pair. The typed direct entry skips the
    // marshal-slot indirection; the EntryScope amortizes the %gs/PKRU/
    // fault-ownership switches over the whole batch (§6.4.1).
    const uint64_t batch_max =
        uint64_t(std::max(1, opts_.batchMax));
    rt::Instance::DirectEntry handle =
        slot->instance->directEntry("handle");
    uint64_t served = 0;
    {
        auto scope = slot->instance->enter();
        for (;;) {
            auto out = handle.call({slot->requestId & 0xffffffffu});
            SFI_CHECK_MSG(out.ok(), "request trapped: %s",
                          rt::name(out.trap));
            worker->stats.checksum ^= out.value + slot->requestId;
            worker->stats.completed++;

            // Latency sample: enqueue -> start -> finish, into this
            // worker's private reservoirs (no cross-thread
            // coordination).
            uint64_t finish = monotonicNs();
            worker->latencyQueueNs.add(slot->startNs - slot->enqueueNs);
            worker->latencyServiceNs.add(finish - slot->startNs);
            worker->latencyTotalNs.add(finish - slot->enqueueNs);

            if (++served >= batch_max)
                break;  // fairness bound reached
            Claim claim = claimForService(worker, monotonicNs());
            if (claim.id == UINT64_MAX)
                break;  // nothing queued right now
            worker->stats.batchedRequests++;
            slot->requestId = claim.id;
            slot->enqueueNs = claim.enqueueNs;
            slot->startNs = monotonicNs();
            slot->instance->setEpochDeadline(timer_->now());
        }
    }
    worker->stats.sandboxTransitions += slot->instance->transitions();
    worker->stats.gsSwitches += slot->instance->gsSwitches();
    worker->stats.gsSwitchesSkipped +=
        slot->instance->gsSwitchesSkipped();
    slot->active = false;
}

Status
FaasHost::workerSetup(Worker* w)
{
    if (ring_)
        w->participant = ring_->registerParticipant();
    for (int i = 0; i < w->numSlots; i++) {
        auto slot = std::make_unique<RequestSlot>();
        slot->host = this;
        slot->worker = w;
        auto ps = pool_->allocate(w->participant);
        if (!ps)
            return Status::error(ps.message());
        slot->poolSlot = *ps;
        w->slots.push_back(std::move(slot));
    }
    return Status::ok();
}

void
FaasHost::workerTeardown(Worker* w)
{
    for (auto& slot : w->slots) {
        // touchedBytes(): the probed faulted span, not the
        // conservative full declared memory size — warm reuse then
        // zeroes/decommits only what this occupant actually dirtied.
        uint64_t touched =
            slot->instance ? slot->instance->memory().touchedBytes()
                           : 0;
        SFI_CHECK(pool_->free(slot->poolSlot, touched).isOk());
        slot->instance.reset();
    }
    w->slots.clear();
    if (w->participant) {
        ring_->unregisterParticipant(w->participant);
        w->participant = nullptr;
    }
}

void
FaasHost::workerLoop(Worker* w)
{
    // Checkout happens on the worker thread so slots land in (and
    // return to) this thread's free-list shard.
    w->failure = workerSetup(w);
    if (w->failure.isOk()) {
        while (true) {
            uint64_t now = monotonicNs();
            uint64_t next_ready = UINT64_MAX;
            bool progressed = false;
            bool any_active = false;

            // Top of the scheduling round is host code with PKRU at
            // allowAll — a natural quiescent point for key recycling.
            if (w->participant)
                w->participant->fence();
            pumpAdmission(w, now);

            for (auto& slot_ptr : w->slots) {
                RequestSlot* slot = slot_ptr.get();
                if (!slot->active) {
                    Claim claim = claimForService(w, now);
                    if (claim.id == UINT64_MAX) {
                        // Nothing claimable now; in open-loop mode wake
                        // up for the next scheduled arrival.
                        next_ready =
                            std::min(next_ready, claim.nextArrivalNs);
                        continue;
                    }
                    // Assign a new request: fresh fiber + recycled slot
                    // memory. With warm affinity the slot usually comes
                    // straight back from this shard's cache — zeroed by
                    // memset over the previous request's footprint, no
                    // decommit/refault. The freed span is the probed
                    // faulted span (touchedBytes), not the full
                    // declared memory size.
                    slot->requestId = claim.id;
                    slot->active = true;
                    slot->readyAtNs = 0;
                    slot->enqueueNs = claim.enqueueNs;
                    slot->startNs = monotonicNs();
                    uint64_t touched =
                        slot->instance
                            ? slot->instance->memory().touchedBytes()
                            : 0;
                    SFI_CHECK(
                        pool_->free(slot->poolSlot, touched).isOk());
                    auto ps = pool_->allocate(w->participant);
                    SFI_CHECK(ps.isOk());
                    slot->poolSlot = *ps;
                    auto fiber = Fiber::create(
                        [this, slot] { requestBody(slot); });
                    SFI_CHECK_MSG(fiber.isOk(), "%s",
                                  fiber.message().c_str());
                    slot->fiber = std::move(*fiber);
                }
                any_active = true;
                if (slot->readyAtNs > now) {
                    next_ready = std::min(next_ready, slot->readyAtNs);
                    continue;
                }
                w->stats.transitions++;
                slot->fiber->resume();
                progressed = true;
                if (slot->fiber->finished()) {
                    slot->fiber.reset();
                } else if (slot->readyAtNs > 0) {
                    next_ready = std::min(next_ready, slot->readyAtNs);
                }
                now = monotonicNs();
            }

            // Open-loop: idle slots with requests still to *arrive* must
            // keep the worker alive, so exit requires every id claimed —
            // and, with admission control, this shard drained (other
            // shards drain themselves or get stolen from).
            bool queue_empty = true;
            if (opts_.admission != AdmissionPolicy::None) {
                std::lock_guard<std::mutex> lock(w->admMu);
                queue_empty = w->admitted.empty();
            }
            if (!any_active && queue_empty &&
                nextRequestId_.load(std::memory_order_relaxed) >=
                    totalRequests_)
                break;
            if (!progressed && next_ready != UINT64_MAX) {
                uint64_t wait = next_ready > now ? next_ready - now : 0;
                // Cap the nap when other machinery may need this
                // thread soon: a recycle epoch cannot retire keys until
                // every participant fences, and sibling shards may fill
                // with stealable admissions.
                if (ring_ || opts_.admission != AdmissionPolicy::None)
                    wait = std::min<uint64_t>(wait, 200'000);
                if (wait > 10'000) {
                    struct timespec ts;
                    ts.tv_sec = long(wait / 1'000'000'000ull);
                    ts.tv_nsec = long(wait % 1'000'000'000ull);
                    nanosleep(&ts, nullptr);
                }
            }
        }
    }
    // Return every slot to the pool so run() can be called again.
    workerTeardown(w);
}

Result<FaasHost::Stats>
FaasHost::run(uint64_t total_requests)
{
    arrivalNs_.clear();
    offeredRps_ = 0;
    return runInternal(total_requests);
}

Result<FaasHost::Stats>
FaasHost::runOpenLoop(uint64_t total_requests, const LoadGenConfig& load)
{
    arrivalNs_ = LoadGen::schedule(load, total_requests);
    offeredRps_ = load.ratePerSec;
    return runInternal(total_requests);
}

Result<FaasHost::Stats>
FaasHost::runInternal(uint64_t total_requests)
{
    totalRequests_ = total_requests;
    nextRequestId_.store(0);

    int num_workers = opts_.workerThreads;
    std::vector<std::unique_ptr<Worker>> workers;
    for (int i = 0; i < num_workers; i++) {
        auto w = std::make_unique<Worker>();
        w->host = this;
        w->index = i;
        // Distribute the concurrency budget; early workers take the
        // remainder.
        w->numSlots = opts_.maxConcurrent / num_workers +
                      (i < opts_.maxConcurrent % num_workers ? 1 : 0);
        w->rng = Rng(opts_.seed + uint64_t(i) * 0x9e3779b97f4a7c15ull);
        workers.push_back(std::move(w));
    }

    // Published for admission stealing; cleared before the workers are
    // destroyed. Safe to read concurrently: the vector is immutable
    // while any worker thread runs.
    allWorkers_.clear();
    for (auto& w : workers)
        allWorkers_.push_back(w.get());

    uint64_t start_ns = monotonicNs();
    runStartNs_ = start_ns;
    if (num_workers == 1) {
        workerLoop(workers[0].get());
    } else {
        std::vector<std::thread> threads;
        for (auto& w : workers)
            threads.emplace_back([this, &w] { workerLoop(w.get()); });
        for (auto& t : threads)
            t.join();
    }
    double elapsed = double(monotonicNs() - start_ns) / 1e9;
    allWorkers_.clear();

    Stats stats;
    stats.offeredRps = offeredRps_;
    for (auto& w : workers) {
        if (!w->failure.isOk())
            return Result<Stats>::error(w->failure.message());
        stats.completed += w->stats.completed;
        stats.epochYields += w->stats.epochYields;
        stats.ioYields += w->stats.ioYields;
        stats.transitions += w->stats.transitions;
        stats.sandboxTransitions += w->stats.sandboxTransitions;
        stats.gsSwitches += w->stats.gsSwitches;
        stats.gsSwitchesSkipped += w->stats.gsSwitchesSkipped;
        stats.batchedRequests += w->stats.batchedRequests;
        stats.coldStarts += w->stats.coldStarts;
        stats.checksum ^= w->stats.checksum;
        stats.latencyQueueNs.merge(w->latencyQueueNs);
        stats.latencyServiceNs.merge(w->latencyServiceNs);
        stats.latencyTotalNs.merge(w->latencyTotalNs);
        stats.admitted += w->stats.admitted;
        stats.rejected += w->stats.rejected;
        stats.shedRequests += w->stats.shedRequests;
        stats.overloadEvents += w->stats.overloadEvents;
        stats.stolenAdmissions += w->stats.stolenAdmissions;
        stats.admissionDelayNs.merge(w->admissionDelayNs);
        stats.shards.push_back(w->shard);
    }
    // Cumulative across runs of this host (pool/ring counters are
    // monotonic), which is what the perf-lab wants anyway.
    pool::MemoryPool::Stats ps = pool_->stats();
    stats.recolors = ps.recolors;
    stats.retags = ps.retags;
    stats.keyRecycles = ps.keyRecycles;
    stats.recycleStallNs = ps.recycleStallNs;
    stats.keyShares = ps.keyShares;
    stats.elapsedSec = elapsed;
    stats.throughputRps =
        elapsed > 0 ? double(stats.completed) / elapsed : 0;
    if (const jit::TieredModule* tm = module_->tiered()) {
        jit::TierStatsSnapshot ts = tm->stats();
        stats.baselineCompiles = ts.baselineCompiles;
        stats.tierUps = ts.tierUps;
        stats.cacheHits = ts.cacheHits;
        stats.interpFallbacks = ts.interpFallbacks;
        stats.compileNs = ts.compileNs;
        stats.cacheFillVerifyNs = ts.cacheFillVerifyNs;
    }
    return stats;
}

}  // namespace sfi::faas
