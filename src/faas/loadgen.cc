#include "faas/loadgen.h"

#include "base/logging.h"

namespace sfi::faas {

LoadGen::LoadGen(LoadGenConfig config)
    : config_(config), rng_(config.seed)
{
    SFI_CHECK_MSG(config_.ratePerSec > 0,
                  "open-loop arrival rate must be positive");
}

uint64_t
LoadGen::nextArrivalNs()
{
    double mean_gap_ns = 1e9 / config_.ratePerSec;
    switch (config_.process) {
      case ArrivalProcess::Poisson:
        nextNs_ += rng_.nextExponential(mean_gap_ns);
        break;
      case ArrivalProcess::Uniform:
        nextNs_ += mean_gap_ns;
        break;
    }
    return uint64_t(nextNs_);
}

std::vector<uint64_t>
LoadGen::schedule(const LoadGenConfig& config, uint64_t n)
{
    LoadGen gen(config);
    std::vector<uint64_t> arrivals;
    arrivals.reserve(n);
    for (uint64_t i = 0; i < n; i++)
        arrivals.push_back(gen.nextArrivalNs());
    return arrivals;
}

}  // namespace sfi::faas
