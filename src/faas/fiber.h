/**
 * @file
 * Minimal stackful fibers — the substrate for async sandbox scheduling.
 *
 * Wasmtime's async support runs every instance on its own fiber so
 * epoch interruption can *yield* (not kill) a sandbox mid-execution
 * (§6.4.3's Tokio harness). sfikit's fibers are ~100 lines: an mmap'd
 * stack with a guard page and a context switch that saves exactly the
 * SysV callee-saved registers.
 */
#ifndef SFIKIT_FAAS_FIBER_H_
#define SFIKIT_FAAS_FIBER_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "base/os_mem.h"
#include "base/result.h"

namespace sfi::faas {

/** A suspended or running fiber. */
class Fiber
{
  public:
    /**
     * Creates a fiber that will run @p fn when first resumed. The fiber
     * must finish (fn returns) or be abandoned before destruction.
     */
    static Result<std::unique_ptr<Fiber>>
    create(std::function<void()> fn, uint64_t stack_bytes = 256 * 1024);

    ~Fiber();

    /**
     * Switches from the calling context into this fiber; returns when
     * the fiber yields or finishes.
     */
    void resume();

    /** From inside the fiber: switch back to the resumer. */
    void yield();

    bool finished() const { return finished_; }

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

  private:
    Fiber() = default;

    static void entryThunk(void* self);

    Reservation stack_;
    std::function<void()> fn_;
    void* fiberSp_ = nullptr;   ///< saved rsp when suspended
    void* resumerSp_ = nullptr; ///< saved rsp of whoever resumed us
    bool started_ = false;
    bool finished_ = false;
    bool running_ = false;
};

}  // namespace sfi::faas

#endif  // SFIKIT_FAAS_FIBER_H_
