/**
 * @file
 * IR-level optimizer (see optimizer.h for the contract).
 *
 * The optimizer is a symbolic re-execution of the stack machine: it
 * walks the body once to census values (pass 1), then again to rewrite
 * (pass 2). Values get hash-consed ids so "the same expression over the
 * same local versions" is recognizable; each id carries a conservative
 * max-value bound mirroring — never exceeding — what the machine-code
 * verifier can re-derive from the emitted instructions. That invariant
 * is the whole game: any elision the optimizer makes on a bound the
 * verifier cannot reconstruct shows up as a bounds.dominate violation
 * in the test suite.
 *
 * Scoping is structural rather than CFG-based: facts (known local
 * values, CSE availability, dominating-check extents) are snapshotted
 * at Block/If entry and restored at Else/End, loop-assigned locals are
 * invalidated at Loop entry, and a Loop's End keeps the fall-through
 * state (the fall-through textually executed the whole body). This is
 * sound for the same reason single-pass baseline JITs are possible at
 * all: the flat-stack discipline means every join point is a construct
 * boundary.
 */
#include "jit/optimizer.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/logging.h"

namespace sfi::jit {
namespace {

using wasm::Function;
using wasm::FuncType;
using wasm::Instr;
using wasm::Module;
using wasm::Op;
using wasm::ValType;

constexpr uint64_t kU32Max = 0xFFFFFFFFull;
constexpr uint32_t kMaxTemps = 24;
constexpr uint64_t kWasmPageBytes = 64 * 1024;

/** One hash-consed symbolic value. */
struct Val
{
    Op op;  ///< producing opcode; Op::Nop marks an opaque value
    uint32_t x = 0, y = 0, z = 0;  ///< operand value ids
    uint64_t imm = 0;  ///< const payload / local key / opaque serial
    ValType type = ValType::I32;
    bool pure = false;
    /** Max possible runtime value (i32 values only; others kU32Max). */
    uint64_t bound = kU32Max;
};

struct ValKey
{
    Op op;
    uint32_t x, y, z;
    uint64_t imm;
    bool operator==(const ValKey&) const = default;
};

struct ValKeyHash
{
    size_t
    operator()(const ValKey& k) const
    {
        uint64_t h = 1469598103934665603ull;
        auto mix = [&h](uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
        };
        mix(static_cast<uint64_t>(k.op));
        mix((static_cast<uint64_t>(k.x) << 32) | k.y);
        mix(k.z);
        mix(k.imm);
        return static_cast<size_t>(h);
    }
};

/**
 * One symbolic operand-stack slot.
 *
 * `id` is the semantic value; `baseId` + `pendOff` is what the machine
 * would actually hold if we emitted the span as rewritten so far (a
 * folded-but-unmaterialized `+pendOff` may still be owed). `[start,end)`
 * is the output-body span that produced it; `contig` says the span is
 * exclusively this value's computation; `effect` says the span contains
 * a trapping/observable instruction and must never be deleted.
 */
struct Entry
{
    uint32_t id = 0;
    uint32_t baseId = 0;
    uint32_t pendOff = 0;
    ValType type = ValType::I32;
    size_t start = 0, end = 0;
    bool contig = false;
    bool effect = false;
    /** Local index whose frame slot holds this value, or -1. */
    int32_t prov = -1;
};

/** A dominating bounds-check fact: slot of local `prov` was checked. */
struct Fact
{
    uint32_t id = 0;        ///< value id the slot held at check time
    uint64_t extent = 0;    ///< proven idx + extent <= memSize
};

struct Scope
{
    Op kind = Op::Block;
    size_t stackHeight = 0;
    size_t pc = 0;  ///< original-body pc of the construct opcode
    std::unordered_map<uint32_t, uint32_t> localValue;
    std::unordered_map<uint32_t, Fact> facts;
    std::unordered_map<uint32_t, uint32_t> avail;
};

/** Census shared between the two passes, keyed by value id. */
struct Census
{
    std::unordered_map<uint32_t, uint32_t> prodCount;
    std::unordered_set<uint32_t> addressUse;
};

struct OpInfo
{
    int arity;
    ValType result;
    bool pure;
};

/** Arity/result/purity for the plain arithmetic/conversion opcodes. */
bool
opInfo(Op op, OpInfo* out)
{
    switch (op) {
      case Op::I32Eqz:
        *out = {1, ValType::I32, true};
        return true;
      case Op::I64Eqz:
        *out = {1, ValType::I32, true};
        return true;
      case Op::I32Eq: case Op::I32Ne: case Op::I32LtS: case Op::I32LtU:
      case Op::I32GtS: case Op::I32GtU: case Op::I32LeS: case Op::I32LeU:
      case Op::I32GeS: case Op::I32GeU:
      case Op::I64Eq: case Op::I64Ne: case Op::I64LtS: case Op::I64LtU:
      case Op::I64GtS: case Op::I64GtU: case Op::I64LeS: case Op::I64LeU:
      case Op::I64GeS: case Op::I64GeU:
      case Op::F64Eq: case Op::F64Ne: case Op::F64Lt: case Op::F64Gt:
      case Op::F64Le: case Op::F64Ge:
        *out = {2, ValType::I32, true};
        return true;
      case Op::I32Add: case Op::I32Sub: case Op::I32Mul:
      case Op::I32And: case Op::I32Or: case Op::I32Xor:
      case Op::I32Shl: case Op::I32ShrS: case Op::I32ShrU:
      case Op::I32Rotl: case Op::I32Rotr:
        *out = {2, ValType::I32, true};
        return true;
      case Op::I32DivS: case Op::I32DivU: case Op::I32RemS:
      case Op::I32RemU:
        *out = {2, ValType::I32, false};
        return true;
      case Op::I32Popcnt:
        *out = {1, ValType::I32, true};
        return true;
      case Op::I64Add: case Op::I64Sub: case Op::I64Mul:
      case Op::I64And: case Op::I64Or: case Op::I64Xor:
      case Op::I64Shl: case Op::I64ShrS: case Op::I64ShrU:
      case Op::I64Rotl: case Op::I64Rotr:
        *out = {2, ValType::I64, true};
        return true;
      case Op::I64DivS: case Op::I64DivU: case Op::I64RemS:
      case Op::I64RemU:
        *out = {2, ValType::I64, false};
        return true;
      case Op::I64Popcnt:
        *out = {1, ValType::I64, true};
        return true;
      case Op::I32WrapI64:
        *out = {1, ValType::I32, true};
        return true;
      case Op::I64ExtendI32S: case Op::I64ExtendI32U:
        *out = {1, ValType::I64, true};
        return true;
      case Op::F64Add: case Op::F64Sub: case Op::F64Mul: case Op::F64Div:
      case Op::F64Min: case Op::F64Max:
        *out = {2, ValType::F64, true};
        return true;
      case Op::F64Sqrt: case Op::F64Neg: case Op::F64Abs:
        *out = {1, ValType::F64, true};
        return true;
      case Op::F64ConvertI32S: case Op::F64ConvertI32U:
      case Op::F64ConvertI64S:
        *out = {1, ValType::F64, true};
        return true;
      case Op::I32TruncF64S:
        *out = {1, ValType::I32, false};  // traps on range
        return true;
      case Op::I64TruncF64S:
        *out = {1, ValType::I64, false};
        return true;
      case Op::F64ReinterpretI64:
        *out = {1, ValType::F64, true};
        return true;
      case Op::I64ReinterpretF64:
        *out = {1, ValType::I64, true};
        return true;
      default:
        return false;
    }
}

/** Access size + result type for the memory opcodes. */
bool
accessInfo(Op op, uint32_t* bytes, bool* is_store, ValType* res,
           uint64_t* res_bound)
{
    *res_bound = kU32Max;
    *is_store = false;
    switch (op) {
      case Op::I32Load: *bytes = 4; *res = ValType::I32; return true;
      case Op::I64Load: *bytes = 8; *res = ValType::I64; return true;
      case Op::F64Load: *bytes = 8; *res = ValType::F64; return true;
      case Op::I32Load8S: *bytes = 1; *res = ValType::I32; return true;
      case Op::I32Load8U:
        *bytes = 1;
        *res = ValType::I32;
        *res_bound = 255;  // matches the verifier's zero-extend rule
        return true;
      case Op::I32Load16S: *bytes = 2; *res = ValType::I32; return true;
      case Op::I32Load16U:
        *bytes = 2;
        *res = ValType::I32;
        *res_bound = 65535;
        return true;
      case Op::I64Load32S: *bytes = 4; *res = ValType::I64; return true;
      case Op::I64Load32U: *bytes = 4; *res = ValType::I64; return true;
      case Op::I32Store: *bytes = 4; *is_store = true; return true;
      case Op::I64Store: *bytes = 8; *is_store = true; return true;
      case Op::F64Store: *bytes = 8; *is_store = true; return true;
      case Op::I32Store8: *bytes = 1; *is_store = true; return true;
      case Op::I32Store16: *bytes = 2; *is_store = true; return true;
      default:
        return false;
    }
}

bool
isCommutative(Op op)
{
    switch (op) {
      case Op::I32Add: case Op::I32Mul: case Op::I32And: case Op::I32Or:
      case Op::I32Xor: case Op::I32Eq: case Op::I32Ne:
      case Op::I64Add: case Op::I64Mul: case Op::I64And: case Op::I64Or:
      case Op::I64Xor: case Op::I64Eq: case Op::I64Ne:
      case Op::F64Add: case Op::F64Mul: case Op::F64Eq: case Op::F64Ne:
        return true;
      default:
        return false;
    }
}

/**
 * Locals assigned (local.set/local.tee) inside each construct, keyed by
 * the construct opcode's pc. Used to invalidate loop-carried state at
 * Loop entry and construct-modified state at Block/If End.
 */
std::unordered_map<size_t, std::vector<uint32_t>>
scanAssignedLocals(const Function& fn)
{
    std::unordered_map<size_t, std::vector<uint32_t>> out;
    std::vector<std::pair<size_t, std::unordered_set<uint32_t>>> open;
    for (size_t pc = 0; pc < fn.body.size(); pc++) {
        const Instr& in = fn.body[pc];
        switch (in.op) {
          case Op::Block: case Op::Loop: case Op::If:
            open.emplace_back(pc, std::unordered_set<uint32_t>{});
            break;
          case Op::End:
            if (!open.empty()) {
                auto& [start, set] = open.back();
                out[start] = {set.begin(), set.end()};
                // Propagate into the enclosing construct.
                if (open.size() >= 2) {
                    auto& parent = open[open.size() - 2].second;
                    parent.insert(set.begin(), set.end());
                }
                open.pop_back();
            }
            break;
          case Op::LocalSet: case Op::LocalTee:
            for (auto& [start, set] : open)
                set.insert(in.a);
            break;
          default:
            break;
        }
    }
    return out;
}

class Simulator
{
  public:
    Simulator(const Function& fn, const Module& module,
              const CompilerConfig& cfg,
              const std::unordered_map<size_t, std::vector<uint32_t>>&
                  assigned,
              Census& census, bool rewrite, OptStats* stats)
        : fn_(fn),
          module_(module),
          cfg_(cfg),
          assigned_(assigned),
          census_(census),
          rewrite_(rewrite),
          stats_(stats)
    {
        const FuncType& ft = module.types.at(fn.typeIdx);
        numParams_ = static_cast<uint32_t>(ft.params.size());
        numOrigLocals_ =
            numParams_ + static_cast<uint32_t>(fn.locals.size());
        version_.resize(numOrigLocals_ + kMaxTemps, 0);
        minMemBytes_ =
            static_cast<uint64_t>(module.memory.minPages) * kWasmPageBytes;
    }

    void
    run()
    {
        for (size_t pc = 0; pc < fn_.body.size(); pc++) {
            const Instr& in = fn_.body[pc];
            if (dead_) {
                stepDead(in);
                continue;
            }
            step(pc, in);
        }
    }

    std::vector<Instr>
    takeBody()
    {
        return std::move(out_);
    }

    const std::vector<ValType>&
    tempLocals() const
    {
        return temps_;
    }

  private:
    // ---- value interning -------------------------------------------------

    uint32_t
    addVal(const Val& v)
    {
        vals_.push_back(v);
        return static_cast<uint32_t>(vals_.size() - 1);
    }

    uint32_t
    internKeyed(Val v)
    {
        ValKey k{v.op, v.x, v.y, v.z, v.imm};
        auto it = interned_.find(k);
        if (it != interned_.end())
            return it->second;
        uint32_t id = addVal(v);
        interned_.emplace(k, id);
        return id;
    }

    uint32_t
    constId(Op op, uint64_t imm, ValType t)
    {
        Val v{op, 0, 0, 0, imm, t, /*pure=*/true, kU32Max};
        if (op == Op::I32Const)
            v.bound = imm & kU32Max;
        return internKeyed(v);
    }

    uint32_t
    opaqueId(ValType t, uint64_t bound = kU32Max)
    {
        return addVal(
            Val{Op::Nop, 0, 0, 0, opaqueSerial_++, t, false, bound});
    }

    uint32_t
    localLeafId(uint32_t l, ValType t)
    {
        Val v{Op::LocalGet, l, version_[l], 0, 0, t, true, kU32Max};
        return internKeyed(v);
    }

    /**
     * Max-value bound for an i32-producing pure op. Deliberately a
     * strict subset of what verify/checker.cc can re-derive from the
     * machine code — see the file comment.
     */
    uint64_t
    boundFor(Op op, uint32_t x, uint32_t y)
    {
        const uint64_t bx = vals_[x].bound;
        switch (op) {
          case Op::I32Add: {
            uint64_t s = bx + vals_[y].bound;
            return s <= kU32Max ? s : kU32Max;
          }
          case Op::I32Mul: {
            uint64_t by = vals_[y].bound;
            if (bx != 0 && by > kU32Max / bx)
                return kU32Max;
            return bx * by;
          }
          case Op::I32And:
            return std::min(bx, vals_[y].bound);
          case Op::I32Shl:
            if (vals_[y].op == Op::I32Const) {
                uint64_t s = bx << (vals_[y].imm & 31);
                return s <= kU32Max ? s : kU32Max;
            }
            return kU32Max;
          case Op::I32ShrU:
            if (vals_[y].op == Op::I32Const)
                return bx >> (vals_[y].imm & 31);
            return bx;  // logical right shift never grows the value
          case Op::I32Eqz: case Op::I64Eqz:
          case Op::I32Eq: case Op::I32Ne: case Op::I32LtS:
          case Op::I32LtU: case Op::I32GtS: case Op::I32GtU:
          case Op::I32LeS: case Op::I32LeU: case Op::I32GeS:
          case Op::I32GeU:
          case Op::I64Eq: case Op::I64Ne: case Op::I64LtS:
          case Op::I64LtU: case Op::I64GtS: case Op::I64GtU:
          case Op::I64LeS: case Op::I64LeU: case Op::I64GeS:
          case Op::I64GeU:
          case Op::F64Eq: case Op::F64Ne: case Op::F64Lt: case Op::F64Gt:
          case Op::F64Le: case Op::F64Ge:
            return 255;  // setcc + movzx8: the verifier proves <= 255
          default:
            return kU32Max;
        }
    }

    uint32_t
    internOp(Op op, ValType result, uint32_t x, uint32_t y = 0,
             uint32_t z = 0)
    {
        if (isCommutative(op) && x > y)
            std::swap(x, y);
        Val v{op, x, y, z, 0, result, true, kU32Max};
        if (result == ValType::I32)
            v.bound = boundFor(op, x, y);
        return internKeyed(v);
    }

    // ---- symbolic stack --------------------------------------------------

    void
    pushEntry(const Entry& e)
    {
        stack_.push_back(e);
    }

    Entry
    popEntry()
    {
        SFI_CHECK(!stack_.empty());
        Entry e = stack_.back();
        stack_.pop_back();
        return e;
    }

    /** Shift spans of stack entries at/after an insertion point. */
    void
    shiftSpans(size_t pos, size_t delta, const Entry* skip)
    {
        for (auto& s : stack_) {
            if (&s == skip)
                continue;
            if (s.start >= pos) {
                s.start += delta;
                s.end += delta;
            }
        }
    }

    /**
     * Pay off a pending folded offset: insert `i32.const c; i32.add`
     * right after the entry's span so the machine value matches the
     * semantic one. Valid at any stack depth — at `end` the entry was
     * the top of the operand stack.
     */
    void
    materializeAt(size_t si)
    {
        Entry& e = stack_[si];
        if (e.pendOff == 0)
            return;
        size_t pos = e.end;
        Instr c{Op::I32Const, 0, e.pendOff, 0};
        Instr add{Op::I32Add, 0, 0, 0};
        out_.insert(out_.begin() + static_cast<ptrdiff_t>(pos), {c, add});
        shiftSpans(pos, 2, &e);
        e.end = pos + 2;
        e.baseId = e.id;
        e.pendOff = 0;
        e.prov = -1;
    }

    void
    materializeTop()
    {
        if (!stack_.empty())
            materializeAt(stack_.size() - 1);
    }

    /** Materialize the top `n` entries (call/return/bulk operands). */
    void
    materializeTopN(size_t n)
    {
        SFI_CHECK(stack_.size() >= n);
        for (size_t i = stack_.size() - n; i < stack_.size(); i++)
            materializeAt(i);
    }

    void
    resizeStack(size_t h)
    {
        while (stack_.size() > h)
            stack_.pop_back();
        while (stack_.size() < h) {
            // Dead-path padding: opaque, effectful, span-less.
            Entry e;
            e.id = e.baseId = opaqueId(ValType::I32);
            e.start = e.end = out_.size();
            e.effect = true;
            stack_.push_back(e);
        }
    }

    // ---- scoped state ----------------------------------------------------

    void
    invalidateLocal(uint32_t l)
    {
        localValue_.erase(l);
        facts_.erase(l);
        if (l < version_.size())
            version_[l]++;
    }

    void
    pushScope(Op kind, size_t pc)
    {
        Scope s;
        s.kind = kind;
        s.pc = pc;
        s.stackHeight = stack_.size();
        s.localValue = localValue_;
        s.facts = facts_;
        s.avail = avail_;
        scopes_.push_back(std::move(s));
    }

    void
    restoreScope(const Scope& s)
    {
        localValue_ = s.localValue;
        facts_ = s.facts;
        avail_ = s.avail;
    }

    void
    conservativeClear()
    {
        localValue_.clear();
        facts_.clear();
        avail_.clear();
        for (auto& v : version_)
            v++;
    }

    const std::vector<uint32_t>*
    assignedAt(size_t pc) const
    {
        auto it = assigned_.find(pc);
        return it == assigned_.end() ? nullptr : &it->second;
    }

    // ---- CSE -------------------------------------------------------------

    /**
     * Census (pass 1) or rewrite (pass 2) hook for a freshly pushed
     * pure-op result. May collapse the producing span to a temp-local
     * read, or seed the temp on the value's first profitable sighting.
     */
    void
    onProduce()
    {
        Entry& e = stack_.back();
        const Val& v = vals_[e.id];
        if (!v.pure || !e.contig || e.effect)
            return;
        if (v.op == Op::I32Const || v.op == Op::I64Const ||
            v.op == Op::F64Const || v.op == Op::LocalGet) {
            return;
        }
        size_t len = e.end - e.start;
        if (len < 2)
            return;
        if (!rewrite_) {
            census_.prodCount[e.id]++;
            return;
        }
        if (e.type != ValType::I32)
            return;  // temps are i32: this pass exists for addresses
        auto hit = avail_.find(e.id);
        if (hit != avail_.end()) {
            // The value is live in a temp slot: re-read it instead.
            SFI_CHECK(e.end == out_.size());
            out_.resize(e.start);
            out_.push_back(Instr{Op::LocalGet, hit->second, 0, 0});
            e.start = out_.size() - 1;
            e.end = out_.size();
            e.prov = static_cast<int32_t>(hit->second);
            if (stats_)
                stats_->cseHits++;
            return;
        }
        auto pc = census_.prodCount.find(e.id);
        uint32_t occ = pc == census_.prodCount.end() ? 0 : pc->second;
        if (occ < 2 || temps_.size() >= kMaxTemps)
            return;
        // Address values pay extra via guard elimination — but only
        // under strategies that emit explicit guards; elsewhere they
        // must win on instruction count like any other value.
        bool addr = cfg_.explicitBounds() &&
                    census_.addressUse.count(e.id) > 0;
        uint64_t benefit = static_cast<uint64_t>(occ - 1) * (len - 1);
        if (!(addr ? benefit >= 1 : benefit >= 3))
            return;
        uint32_t t = numOrigLocals_ + static_cast<uint32_t>(temps_.size());
        temps_.push_back(ValType::I32);
        out_.push_back(Instr{Op::LocalSet, t, 0, 0});
        out_.push_back(Instr{Op::LocalGet, t, 0, 0});
        e.end = out_.size();
        e.prov = static_cast<int32_t>(t);
        // The span now contains a store: never delete it wholesale.
        e.effect = true;
        avail_[e.id] = t;
        localValue_[t] = e.id;
        if (stats_)
            stats_->cseTemps++;
    }

    // ---- instruction dispatch --------------------------------------------

    void
    stepDead(const Instr& in)
    {
        switch (in.op) {
          case Op::Block: case Op::Loop: case Op::If:
            deadDepth_++;
            out_.push_back(in);
            break;
          case Op::Else:
            if (deadDepth_ == 0) {
                SFI_CHECK(!scopes_.empty());
                restoreScope(scopes_.back());
                resizeStack(scopes_.back().stackHeight);
                dead_ = false;
            }
            out_.push_back(in);
            break;
          case Op::End:
            if (deadDepth_ == 0) {
                dead_ = false;
                endConstruct(in, /*from_dead=*/true);
            } else {
                deadDepth_--;
                out_.push_back(in);
            }
            break;
          default:
            out_.push_back(in);
            break;
        }
    }

    void
    endConstruct(const Instr& in, bool from_dead)
    {
        if (scopes_.empty()) {
            // Function-level End: the result (if any) must be real.
            if (!from_dead && !stack_.empty())
                materializeTop();
            out_.push_back(in);
            return;
        }
        Scope s = std::move(scopes_.back());
        scopes_.pop_back();
        if (s.kind == Op::Loop) {
            // Fall-through textually executed the whole body, so the
            // current state stands — unless we got here dead.
            if (from_dead)
                conservativeClear();
        } else {
            // Block End / If End are join points (br targets, or the
            // skipped-arm path): back to entry state, minus anything
            // the construct may have assigned.
            restoreScope(s);
            if (const auto* as = assignedAt(s.pc))
                for (uint32_t l : *as)
                    invalidateLocal(l);
        }
        resizeStack(s.stackHeight);
        out_.push_back(in);
    }

    void
    handleAccess(size_t, const Instr& in, uint32_t bytes, bool is_store,
                 ValType res, uint64_t res_bound)
    {
        if (is_store)
            materializeTop();  // the stored value must be real
        size_t ii = stack_.size() - (is_store ? 2 : 1);
        Instr emit = in;
        // Addressing-mode folding: pay the pending add via the static
        // offset when the displacement field can absorb it.
        if (stack_[ii].pendOff != 0) {
            uint64_t nd = emit.imm + stack_[ii].pendOff;
            if (nd + bytes <= static_cast<uint64_t>(INT32_MAX)) {
                emit.imm = nd;
                if (stats_)
                    stats_->addsFolded++;
            } else {
                materializeAt(ii);
            }
        }
        Entry value;
        if (is_store)
            value = popEntry();
        Entry idx = popEntry();
        if (!rewrite_) {
            // Census: values feeding accesses are CSE priorities.
            const Val& bv = vals_[idx.baseId];
            if (bv.pure && bv.op != Op::I32Const &&
                bv.op != Op::LocalGet) {
                census_.addressUse.insert(idx.baseId);
            }
        }
        if (cfg_.explicitBounds()) {
            uint64_t extent = emit.imm + bytes;
            if (stats_)
                stats_->checksConsidered++;
            uint64_t b = vals_[idx.baseId].bound;
            bool elided = false;
            if (b + extent <= minMemBytes_) {
                // Statically below the initial memory size; memSize is
                // monotone, so this holds for the whole run.
                elided = true;
                if (stats_)
                    stats_->checksStatic++;
            } else if (idx.prov >= 0) {
                auto f = facts_.find(static_cast<uint32_t>(idx.prov));
                if (f != facts_.end() && f->second.id == idx.baseId &&
                    f->second.extent >= extent) {
                    // A dominating check with >= reach covers this
                    // access; never widened, so traps are unchanged.
                    elided = true;
                    if (stats_)
                        stats_->checksDominated++;
                } else {
                    // This access's own check becomes the fact.
                    Fact nf{idx.baseId, extent};
                    if (f != facts_.end() && f->second.id == idx.baseId)
                        nf.extent = std::max(nf.extent, f->second.extent);
                    facts_[static_cast<uint32_t>(idx.prov)] = nf;
                }
            }
            if (elided)
                emit.flags |= wasm::kBoundsElided;
        }
        out_.push_back(emit);
        if (!is_store) {
            Entry r;
            r.id = r.baseId = opaqueId(res, res_bound);
            r.type = res;
            r.start = idx.start;
            r.end = out_.size();
            r.contig = idx.contig && idx.end == out_.size() - 1;
            r.effect = true;  // loads can trap / observe memory
            pushEntry(r);
        }
    }

    void
    genericOp(const Instr& in, const OpInfo& info)
    {
        if (info.arity == 2) {
            materializeAt(stack_.size() - 2);
            materializeTop();
            Entry b = popEntry();
            Entry a = popEntry();
            out_.push_back(in);
            Entry r;
            r.id = r.baseId = info.pure
                                  ? internOp(in.op, info.result, a.id, b.id)
                                  : opaqueId(info.result);
            r.type = info.result;
            r.start = a.start;
            r.end = out_.size();
            r.contig = a.contig && b.contig && a.end == b.start &&
                       b.end == out_.size() - 1;
            r.effect = a.effect || b.effect || !info.pure;
            pushEntry(r);
        } else {
            materializeTop();
            Entry a = popEntry();
            out_.push_back(in);
            Entry r;
            r.id = r.baseId = info.pure
                                  ? internOp(in.op, info.result, a.id)
                                  : opaqueId(info.result);
            r.type = info.result;
            r.start = a.start;
            r.end = out_.size();
            r.contig = a.contig && a.end == out_.size() - 1;
            r.effect = a.effect || !info.pure;
            pushEntry(r);
        }
        if (info.pure)
            onProduce();
    }

    /** `expr; i32.const c; i32.add` with a no-wrap proof folds to a
     *  pending displacement instead of a materialized add. */
    bool
    tryFoldAddConst()
    {
        if (stack_.size() < 2)
            return false;
        Entry& b = stack_[stack_.size() - 1];
        Entry& a = stack_[stack_.size() - 2];
        const Val& bv = vals_[b.id];
        if (bv.op != Op::I32Const || b.pendOff != 0 || !b.contig ||
            b.effect || b.end != b.start + 1 || b.end != out_.size() ||
            a.type != ValType::I32) {
            return false;
        }
        uint32_t c = static_cast<uint32_t>(bv.imm);
        uint64_t base_bound = vals_[a.baseId].bound;
        if (base_bound + a.pendOff + c > kU32Max)
            return false;  // the i32 add could wrap: folding unsound
        out_.pop_back();  // drop the const producer
        Entry bent = popEntry();
        Entry aent = popEntry();
        Entry r = aent;
        r.id = internOp(Op::I32Add, ValType::I32, aent.id, bent.id);
        r.pendOff = aent.pendOff + c;
        pushEntry(r);
        return true;
    }

    ValType
    localType(uint32_t l) const
    {
        const FuncType& ft = module_.types.at(fn_.typeIdx);
        if (l < numParams_)
            return ft.params[l];
        if (l < numOrigLocals_)
            return fn_.locals[l - numParams_];
        return ValType::I32;  // CSE temp
    }

    void
    step(size_t pc, const Instr& in)
    {
        OpInfo info;
        uint32_t bytes;
        bool is_store;
        ValType res = ValType::I32;
        uint64_t res_bound;
        if (accessInfo(in.op, &bytes, &is_store, &res, &res_bound)) {
            handleAccess(pc, in, bytes, is_store, res, res_bound);
            return;
        }
        switch (in.op) {
          case Op::Nop:
            out_.push_back(in);
            break;
          case Op::Unreachable:
            out_.push_back(in);
            dead_ = true;
            break;
          case Op::Block:
            out_.push_back(in);
            pushScope(Op::Block, pc);
            break;
          case Op::Loop:
            if (const auto* as = assignedAt(pc))
                for (uint32_t l : *as)
                    invalidateLocal(l);
            out_.push_back(in);
            pushScope(Op::Loop, pc);
            break;
          case Op::If: {
            materializeTop();
            popEntry();
            out_.push_back(in);
            pushScope(Op::If, pc);
            break;
          }
          case Op::Else: {
            SFI_CHECK(!scopes_.empty());
            restoreScope(scopes_.back());
            resizeStack(scopes_.back().stackHeight);
            out_.push_back(in);
            break;
          }
          case Op::End:
            endConstruct(in, /*from_dead=*/false);
            break;
          case Op::Br:
            out_.push_back(in);
            dead_ = true;
            break;
          case Op::BrIf:
            materializeTop();
            popEntry();
            out_.push_back(in);
            break;
          case Op::BrTable:
            materializeTop();
            popEntry();
            out_.push_back(in);
            dead_ = true;
            break;
          case Op::Return: {
            const FuncType& ft = module_.types.at(fn_.typeIdx);
            size_t n = ft.results.size();
            materializeTopN(n);
            for (size_t i = 0; i < n; i++)
                popEntry();
            out_.push_back(in);
            dead_ = true;
            break;
          }
          case Op::Call: {
            const FuncType& ft = module_.typeOfFunc(in.a);
            size_t n = ft.params.size();
            materializeTopN(n);
            for (size_t i = 0; i < n; i++)
                popEntry();
            out_.push_back(in);
            // Calls may grow memory, but memSize is monotone and
            // locals/temps are private: all facts survive.
            if (!ft.results.empty()) {
                Entry r;
                r.id = r.baseId = opaqueId(ft.results[0]);
                r.type = ft.results[0];
                r.start = out_.size() - 1;
                r.end = out_.size();
                r.contig = false;
                r.effect = true;
                pushEntry(r);
            }
            break;
          }
          case Op::CallIndirect: {
            const FuncType& ft = module_.types.at(in.a);
            size_t n = ft.params.size() + 1;  // args + table index
            materializeTopN(n);
            for (size_t i = 0; i < n; i++)
                popEntry();
            out_.push_back(in);
            if (!ft.results.empty()) {
                Entry r;
                r.id = r.baseId = opaqueId(ft.results[0]);
                r.type = ft.results[0];
                r.start = out_.size() - 1;
                r.end = out_.size();
                r.contig = false;
                r.effect = true;
                pushEntry(r);
            }
            break;
          }
          case Op::Drop:
            // The dropped value is never observed: a pending offset
            // can die unpaid.
            popEntry();
            out_.push_back(in);
            break;
          case Op::Select: {
            materializeAt(stack_.size() - 3);
            materializeAt(stack_.size() - 2);
            materializeTop();
            Entry c = popEntry();
            Entry b = popEntry();
            Entry a = popEntry();
            out_.push_back(in);
            Entry r;
            r.id = r.baseId =
                internOp(Op::Select, a.type, a.id, b.id, c.id);
            r.type = a.type;
            r.start = a.start;
            r.end = out_.size();
            r.contig = a.contig && b.contig && c.contig &&
                       a.end == b.start && b.end == c.start &&
                       c.end == out_.size() - 1;
            r.effect = a.effect || b.effect || c.effect;
            pushEntry(r);
            onProduce();
            break;
          }
          case Op::LocalGet: {
            uint32_t l = in.a;
            uint32_t id;
            auto it = localValue_.find(l);
            if (it != localValue_.end())
                id = it->second;
            else
                id = localLeafId(l, localType(l));
            out_.push_back(in);
            Entry e;
            e.id = e.baseId = id;
            e.type = localType(l);
            e.start = out_.size() - 1;
            e.end = out_.size();
            e.contig = true;
            e.prov = static_cast<int32_t>(l);
            pushEntry(e);
            break;
          }
          case Op::LocalSet: {
            materializeTop();
            Entry e = popEntry();
            out_.push_back(in);
            localValue_[in.a] = e.id;
            facts_.erase(in.a);
            break;
          }
          case Op::LocalTee: {
            materializeTop();
            Entry e = popEntry();
            out_.push_back(in);
            localValue_[in.a] = e.id;
            facts_.erase(in.a);
            Entry r = e;
            r.end = out_.size();
            r.prov = static_cast<int32_t>(in.a);
            r.effect = true;  // the span now writes a user local
            pushEntry(r);
            break;
          }
          case Op::GlobalGet: {
            out_.push_back(in);
            Entry e;
            ValType t = module_.globals.at(in.a).type;
            e.id = e.baseId = opaqueId(t);
            e.type = t;
            e.start = out_.size() - 1;
            e.end = out_.size();
            e.contig = true;
            e.effect = true;
            pushEntry(e);
            break;
          }
          case Op::GlobalSet:
            materializeTop();
            popEntry();
            out_.push_back(in);
            break;
          case Op::MemorySize: {
            out_.push_back(in);
            Entry e;
            e.id = e.baseId = opaqueId(ValType::I32);
            e.type = ValType::I32;
            e.start = out_.size() - 1;
            e.end = out_.size();
            e.effect = true;
            pushEntry(e);
            break;
          }
          case Op::MemoryGrow: {
            materializeTop();
            popEntry();
            out_.push_back(in);
            Entry e;
            e.id = e.baseId = opaqueId(ValType::I32);
            e.type = ValType::I32;
            e.start = out_.size() - 1;
            e.end = out_.size();
            e.effect = true;
            pushEntry(e);
            break;
          }
          case Op::MemoryFill: case Op::MemoryCopy:
            materializeTopN(3);
            popEntry();
            popEntry();
            popEntry();
            out_.push_back(in);
            break;
          case Op::I32Const: {
            out_.push_back(in);
            Entry e;
            e.id = e.baseId = constId(Op::I32Const,
                                      in.imm & kU32Max, ValType::I32);
            e.type = ValType::I32;
            e.start = out_.size() - 1;
            e.end = out_.size();
            e.contig = true;
            pushEntry(e);
            break;
          }
          case Op::I64Const: case Op::F64Const: {
            out_.push_back(in);
            Entry e;
            ValType t =
                in.op == Op::I64Const ? ValType::I64 : ValType::F64;
            e.id = e.baseId = constId(in.op, in.imm, t);
            e.type = t;
            e.start = out_.size() - 1;
            e.end = out_.size();
            e.contig = true;
            pushEntry(e);
            break;
          }
          case Op::I32Add:
            if (tryFoldAddConst())
                break;  // counted at the access that absorbs it
            [[fallthrough]];
          default: {
            bool known = opInfo(in.op, &info);
            SFI_CHECK_MSG(known, "optimizer: unhandled opcode");
            genericOp(in, info);
            break;
          }
        }
    }

    // ---- members ---------------------------------------------------------

    const Function& fn_;
    const Module& module_;
    const CompilerConfig& cfg_;
    const std::unordered_map<size_t, std::vector<uint32_t>>& assigned_;
    Census& census_;
    const bool rewrite_;
    OptStats* const stats_;

    uint32_t numParams_ = 0;
    uint32_t numOrigLocals_ = 0;
    uint64_t minMemBytes_ = 0;

    std::vector<Instr> out_;
    std::vector<Entry> stack_;
    std::vector<Scope> scopes_;
    std::vector<Val> vals_;
    std::unordered_map<ValKey, uint32_t, ValKeyHash> interned_;
    uint64_t opaqueSerial_ = 0;

    std::vector<uint32_t> version_;
    std::unordered_map<uint32_t, uint32_t> localValue_;
    std::unordered_map<uint32_t, Fact> facts_;
    std::unordered_map<uint32_t, uint32_t> avail_;
    std::vector<ValType> temps_;

    bool dead_ = false;
    uint32_t deadDepth_ = 0;
};

}  // namespace

wasm::Function
optimizeFunction(const wasm::Function& fn, const wasm::Module& module,
                 const CompilerConfig& config, OptStats* stats)
{
    auto assigned = scanAssignedLocals(fn);
    Census census;
    {
        Simulator census_pass(fn, module, config, assigned, census,
                              /*rewrite=*/false, nullptr);
        census_pass.run();
    }
    OptStats local;
    Simulator rewrite(fn, module, config, assigned, census,
                      /*rewrite=*/true, &local);
    rewrite.run();

    wasm::Function out;
    out.typeIdx = fn.typeIdx;
    out.name = fn.name;
    out.brTables = fn.brTables;
    out.locals = fn.locals;
    const auto& temps = rewrite.tempLocals();
    out.locals.insert(out.locals.end(), temps.begin(), temps.end());
    out.body = rewrite.takeBody();
    if (out.body.size() < fn.body.size())
        local.instrsRemoved += fn.body.size() - out.body.size();
    if (stats)
        stats->merge(local);
    return out;
}

}  // namespace sfi::jit
