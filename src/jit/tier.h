/**
 * @file
 * Per-module tiered-execution state: lazy baseline compilation,
 * hot-count tier-up, and the entry-slot table JIT'd code calls
 * through.
 *
 * Tier state machine, per defined function:
 *
 *     Unresolved --first call--> Baseline --hot count--> Optimized
 *          \--compile/verify failure--> Interp (fail closed)
 *
 * A function starts Unresolved: its ctx->funcEntries slot points at
 * the resolver thunk, which calls ctx->tierFn (routed here) to
 * compile the single-pass baseline body and patch the slot. Baseline
 * prologues bump ctx->tierCounters[i]; past TierOptions::hotThreshold
 * they call tierFn again, which recompiles through the optimizer and
 * patches the slot to the optimized body. Slot patches are release
 * stores and readers (JIT'd call sites, dispatch thunks) issue plain
 * aligned 64-bit loads, so a concurrent caller sees the old or the
 * new entry — never a torn pointer — and there is no stop-the-world.
 *
 * Every body comes from the process-wide verified CodeCache
 * (codecache.h): machine code is proven by the static verifier before
 * it is published, and instantiating the same image twice compiles
 * zero functions the second time. If a baseline compile or its
 * verification fails, the function degrades to the interpreter thunk
 * (fail closed — unverified code never runs); if a *tier-up* fails,
 * the verified baseline stays in place and the function is marked so
 * it does not retry (verification is deterministic).
 */
#ifndef SFIKIT_JIT_TIER_H_
#define SFIKIT_JIT_TIER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "base/result.h"
#include "jit/codecache.h"
#include "jit/compiler.h"
#include "jit/strategy.h"
#include "wasm/module.h"

namespace sfi::jit {

/** Tiered-execution policy knobs. */
struct TierOptions
{
    /** Baseline calls before a function requests tier-up. */
    uint64_t hotThreshold = 64;
    /**
     * Share code across modules with identical content. Off salts the
     * cache key per TieredModule, so blobs are still verified-at-fill
     * and arena-published but never shared (isolation-paranoid mode /
     * cache-miss benchmarking).
     */
    bool useCodeCache = true;
    /** Pin every function to the interpreter thunk (differential
     *  testing: the oracle path with the tiered entry ABI). */
    bool forceInterp = false;
};

/** Monotonic per-module tiering counters (relaxed; reporting only). */
struct TierStatsSnapshot
{
    uint64_t baselineCompiles = 0;
    uint64_t tierUps = 0;
    uint64_t cacheHits = 0;
    uint64_t interpFallbacks = 0;
    uint64_t compileNs = 0;        ///< compile+verify wall time (fills)
    uint64_t cacheFillVerifyNs = 0;
};

/**
 * The tiered twin of CompiledModule, shared by every instance of a
 * module image (it lives on rt::SharedModule next to the wasm IR).
 * All code lives in the CodeCache arena; this object owns only the
 * slot/counter tables and the tier state.
 */
class TieredModule
{
  public:
    /** Per-function tier (state()). */
    enum class FuncState : uint8_t {
        Unresolved,  ///< slot -> resolver thunk
        Baseline,    ///< slot -> single-pass body (counters on)
        Optimized,   ///< slot -> optimizer-tier body
        Interp,      ///< slot -> interpreter thunk (fail-closed)
    };

    /**
     * Builds the tiered state for @p module under the user-facing
     * @p config (which must have CfiMode::None — entry-slot values
     * are trusted runtime pointers the LFI mask chain would mangle).
     * @p module must outlive the TieredModule.
     */
    static Result<std::unique_ptr<TieredModule>> create(
        const wasm::Module& module, const CompilerConfig& config,
        const TierOptions& opts);

    /**
     * ctx->tierFn target: resolves (first call) or tiers up (hot
     * count) defined function @p defined_idx and returns the entry to
     * continue through. Thread-safe; concurrent callers for the same
     * function serialize on the module mutex and the winner's result
     * is shared.
     */
    const void* resolve(uint32_t defined_idx);

    /** Entry-slot table for ctx->funcEntries. */
    const void* const* entries() const
    {
        return reinterpret_cast<const void* const*>(slots_.get());
    }

    /** Counter table for ctx->tierCounters. */
    uint64_t* counters() const { return counters_.get(); }

    uint64_t threshold() const { return opts_.hotThreshold; }

    /**
     * Stable address of @p defined_idx: the dispatch thunk, which
     * forwards to the live slot on every call. Anything that caches a
     * function address across calls (table entries, DirectEntry,
     * host-held pointers) must cache this, not the slot value.
     */
    const void* dispatchAddr(uint32_t defined_idx) const;

    /** Entry trampolines (CompiledModule-compatible signatures). */
    CompiledModule::EntryFn entry() const;
    CompiledModule::DirectEntryFn directEntry() const;
    uint32_t entrySavedRegs() const { return stubMeta_->entrySavedRegs; }

    FuncState state(uint32_t defined_idx) const;
    uint32_t numDefined() const
    {
        return static_cast<uint32_t>(module_.functions.size());
    }

    const CompilerConfig& baseConfig() const { return baseCfg_; }
    const CompilerConfig& optConfig() const { return optCfg_; }
    uint64_t moduleHash() const { return hash_; }

    TierStatsSnapshot stats() const;

  private:
    TieredModule(const wasm::Module& module, const TierOptions& opts)
        : module_(module), opts_(opts)
    {
    }

    const void* interpThunkAddr(uint32_t defined_idx) const;
    /** Patches a slot (release store). */
    void setSlot(uint32_t defined_idx, const void* entry);

    const wasm::Module& module_;
    TierOptions opts_;
    CompilerConfig baseCfg_;  ///< user config, optimizer off, counters on
    CompilerConfig optCfg_;   ///< user config, optimizer on, counters off
    uint64_t hash_ = 0;       ///< moduleHash, salted when sharing is off
    uint64_t minMemBytes_ = 0;

    const uint8_t* stubsBase_ = nullptr;
    const TierStubs* stubMeta_ = nullptr;

    std::unique_ptr<std::atomic<const void*>[]> slots_;
    std::unique_ptr<uint64_t[]> counters_;

    mutable std::mutex mu_;
    std::vector<FuncState> states_;     ///< guarded by mu_
    std::vector<uint8_t> tierFailed_;   ///< guarded by mu_

    mutable std::atomic<uint64_t> statBaselineCompiles_{0};
    mutable std::atomic<uint64_t> statTierUps_{0};
    mutable std::atomic<uint64_t> statCacheHits_{0};
    mutable std::atomic<uint64_t> statInterpFallbacks_{0};
    mutable std::atomic<uint64_t> statCompileNs_{0};
    mutable std::atomic<uint64_t> statVerifyNs_{0};
};

}  // namespace sfi::jit

#endif  // SFIKIT_JIT_TIER_H_
