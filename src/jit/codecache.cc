#include "jit/codecache.h"

#include <chrono>
#include <cstring>

#include "verify/checker.h"

namespace sfi::jit {

namespace {

constexpr uint64_t kArenaBytes = 256ull << 20;
constexpr uint64_t kPage = 4096;

uint64_t
alignPage(uint64_t n)
{
    return (n + kPage - 1) & ~(kPage - 1);
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** FNV-1a 64-bit accumulator over the canonical serialization. */
struct Fnv
{
    uint64_t h = 14695981039346656037ull;

    void
    byte(uint8_t b)
    {
        h ^= b;
        h *= 1099511628211ull;
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; i++)
            byte(static_cast<uint8_t>(v >> (8 * i)));
    }

    void u32(uint32_t v) { u64(v); }
    void u8(uint8_t v) { u64(v); }

    void
    str(const std::string& s)
    {
        u64(s.size());
        for (char c : s)
            byte(static_cast<uint8_t>(c));
    }

    void
    bytes(const std::vector<uint8_t>& v)
    {
        u64(v.size());
        for (uint8_t b : v)
            byte(b);
    }
};

}  // namespace

CodeCache&
CodeCache::instance()
{
    static CodeCache cache;
    return cache;
}

uint64_t
CodeCache::moduleHash(const wasm::Module& module)
{
    Fnv f;
    f.u64(module.types.size());
    for (const auto& t : module.types) {
        f.u64(t.params.size());
        for (auto v : t.params)
            f.u8(static_cast<uint8_t>(v));
        f.u64(t.results.size());
        for (auto v : t.results)
            f.u8(static_cast<uint8_t>(v));
    }
    f.u64(module.imports.size());
    for (const auto& im : module.imports) {
        f.str(im.name);
        f.u32(im.typeIdx);
    }
    f.u64(module.functions.size());
    for (const auto& fn : module.functions) {
        f.u32(fn.typeIdx);
        f.u64(fn.locals.size());
        for (auto v : fn.locals)
            f.u8(static_cast<uint8_t>(v));
        // Instr::flags is optimizer output, Function::name is a
        // diagnostic: neither affects what compiles, so neither
        // participates in the content hash.
        f.u64(fn.body.size());
        for (const auto& in : fn.body) {
            f.u8(static_cast<uint8_t>(in.op));
            f.u32(in.a);
            f.u64(in.imm);
        }
        f.u64(fn.brTables.size());
        for (const auto& bt : fn.brTables) {
            f.u64(bt.size());
            for (uint32_t d : bt)
                f.u32(d);
        }
    }
    f.u64(module.globals.size());
    for (const auto& g : module.globals) {
        f.u8(static_cast<uint8_t>(g.type));
        f.u8(g.isMutable ? 1 : 0);
        f.u64(g.init);
    }
    f.u32(module.memory.minPages);
    f.u32(module.memory.maxPages);
    f.u64(module.data.size());
    for (const auto& d : module.data) {
        f.u32(d.offset);
        f.bytes(d.bytes);
    }
    f.u64(module.table.size());
    for (uint32_t fi : module.table)
        f.u32(fi);
    f.u64(module.exports.size());
    for (const auto& [name, idx] : module.exports) {
        f.str(name);
        f.u32(idx);
    }
    return f.h;
}

uint64_t
CodeCache::configFingerprint(const CompilerConfig& config)
{
    Fnv f;
    f.u8(static_cast<uint8_t>(config.mem));
    f.u8(static_cast<uint8_t>(config.cfi));
    f.u8(config.vectorizeBulkLoops ? 1 : 0);
    f.u8(config.epochChecks ? 1 : 0);
    f.u8(config.untrustedIndexRegs ? 1 : 0);
    f.u8(config.optimize ? 1 : 0);
    f.u8(config.fullSaveEntry ? 1 : 0);
    f.u8(config.tieredCalls ? 1 : 0);
    f.u8(config.tierCounters ? 1 : 0);
    return f.h;
}

Status
CodeCache::ensureArena()
{
    if (arena_.valid())
        return Status::ok();
    auto r = Reservation::reserve(kArenaBytes);
    if (!r.isOk())
        return Status::error("code cache arena reservation failed");
    arena_ = std::move(*r);
    cursor_ = 0;
    return Status::ok();
}

Result<uint64_t>
CodeCache::publish(const std::vector<uint8_t>& bytes)
{
    using R = Result<uint64_t>;
    uint64_t off = alignPage(cursor_);
    uint64_t span = alignPage(bytes.size());
    if (off + span > arena_.size())
        return R::error("code cache arena exhausted");
    Status s = arena_.protect(off, span, PageAccess::ReadWrite);
    if (!s.isOk())
        return R::error("code cache commit failed");
    std::memcpy(arena_.base() + off, bytes.data(), bytes.size());
    s = arena_.protect(off, span, PageAccess::ReadExec);
    if (!s.isOk())
        return R::error("code cache seal failed");
    cursor_ = off + span;
    stats_.publishedBytes += bytes.size();
    return R(off);
}

namespace {

/**
 * Proves a per-function blob: the body and its private trap-stub
 * region as two ranges, mirroring checkModule. The split matters for
 * BoundsCheck strategies — the `ja <trap>` guard only proves the
 * fall-through bound when the taken edge *leaves* the verified range,
 * so trap stubs must sit outside the body's range just as they sit
 * outside each function in a monolithic module.
 */
Status
checkFunctionBlob(const uint8_t* blob, uint64_t size,
                  uint64_t body_size, const CompilerConfig& cfg,
                  uint64_t min_mem_bytes)
{
    verify::Report rep = verify::checkFunction(
        blob, body_size, cfg, /*base_offset=*/0, min_mem_bytes);
    if (!rep.ok())
        return Status::error(rep.summary());
    if (body_size < size) {
        rep = verify::checkFunction(blob + body_size, size - body_size,
                                    cfg, body_size, min_mem_bytes);
        if (!rep.ok())
            return Status::error(rep.summary());
    }
    return Status::ok();
}

}  // namespace

Status
CodeCache::verifyEntry(const Entry& e) const
{
    const uint8_t* blob = arena_.base() + e.offset;
    if (e.kind == Entry::Kind::Function)
        return checkFunctionBlob(blob, e.size, e.bodySize, e.cfg,
                                 e.minMemBytes);
    const TierStubs& m = e.meta;
    verify::Report rep = verify::checkEntryStub(
        blob + m.entryOffset, m.entrySize, e.cfg, m.entryOffset);
    if (!rep.ok())
        return Status::error(rep.summary());
    rep = verify::checkEntryStub(blob + m.directEntryOffset,
                                 m.directEntrySize, e.cfg,
                                 m.directEntryOffset);
    if (!rep.ok())
        return Status::error(rep.summary());
    for (size_t i = 0; i < m.dispatchOffsets.size(); i++) {
        rep = verify::checkTierStub(
            blob + m.dispatchOffsets[i], m.dispatchSizes[i],
            verify::TierStubKind::Dispatch, e.cfg, m.dispatchOffsets[i]);
        if (!rep.ok())
            return Status::error(rep.summary());
        rep = verify::checkTierStub(
            blob + m.resolverOffsets[i], m.resolverSizes[i],
            verify::TierStubKind::Resolver, e.cfg, m.resolverOffsets[i]);
        if (!rep.ok())
            return Status::error(rep.summary());
        rep = verify::checkTierStub(
            blob + m.interpOffsets[i], m.interpSizes[i],
            verify::TierStubKind::Interp, e.cfg, m.interpOffsets[i]);
        if (!rep.ok())
            return Status::error(rep.summary());
    }
    return Status::ok();
}

Result<CodeCache::FuncResult>
CodeCache::getFunction(uint64_t module_hash, uint32_t defined_idx,
                       const wasm::Module& module,
                       const CompilerConfig& config,
                       uint64_t min_mem_bytes)
{
    using R = Result<FuncResult>;
    std::lock_guard<std::mutex> lock(mu_);
    Key k{module_hash, configFingerprint(config),
          (static_cast<uint64_t>(defined_idx) << 1) | 1};
    auto it = entries_.find(k);
    if (it != entries_.end()) {
        stats_.hits++;
        const Entry& e = it->second;
        return R(FuncResult{arena_.base() + e.offset, e.size,
                            e.bodySize, /*hit=*/true, /*verifyNs=*/0});
    }
    Status as = ensureArena();
    if (!as.isOk())
        return R::error(as.message());

    auto cf = compileFunction(module, defined_idx, config);
    if (!cf.isOk())
        return R::error(cf.message());

    // Verification at fill: the blob earns its arena slot or it does
    // not exist. The unpublished bytes are proven first — nothing
    // unverified is ever mapped executable.
    uint64_t t0 = nowNs();
    Status vs = checkFunctionBlob(cf->bytes.data(), cf->bytes.size(),
                                  cf->bodySize, config, min_mem_bytes);
    uint64_t vns = nowNs() - t0;
    if (!vs.isOk()) {
        stats_.verifyFailures++;
        return R::error("cache fill rejected by verifier:\n" +
                        vs.message());
    }

    auto off = publish(cf->bytes);
    if (!off.isOk())
        return R::error(off.message());

    Entry e;
    e.kind = Entry::Kind::Function;
    e.offset = *off;
    e.size = cf->bytes.size();
    e.bodySize = cf->bodySize;
    e.minMemBytes = min_mem_bytes;
    e.cfg = config;
    e.verifyNs = vns;
    entries_.emplace(k, std::move(e));
    stats_.fills++;
    stats_.verifyNs += vns;
    stats_.entries = entries_.size();
    return R(FuncResult{arena_.base() + *off, cf->bytes.size(),
                        cf->bodySize, /*hit=*/false, vns});
}

Result<CodeCache::StubsResult>
CodeCache::getStubs(uint64_t module_hash, const wasm::Module& module,
                    const CompilerConfig& config)
{
    using R = Result<StubsResult>;
    std::lock_guard<std::mutex> lock(mu_);
    Key k{module_hash, configFingerprint(config), 0};
    auto it = entries_.find(k);
    if (it != entries_.end()) {
        stats_.hits++;
        const Entry& e = it->second;
        return R(StubsResult{arena_.base() + e.offset, &e.meta,
                             /*hit=*/true, /*verifyNs=*/0});
    }
    Status as = ensureArena();
    if (!as.isOk())
        return R::error(as.message());

    auto ts = compileTierStubs(module, config);
    if (!ts.isOk())
        return R::error(ts.message());

    Entry e;
    e.kind = Entry::Kind::Stubs;
    e.size = ts->bytes.size();
    e.cfg = config;
    e.meta = *ts;
    e.meta.bytes.clear();  // the arena owns the code; keep offsets only
    e.meta.bytes.shrink_to_fit();

    // Prove every stub before publication (entry.contract for the
    // trampolines, tier.thunk for the per-function thunks).
    uint64_t t0 = nowNs();
    {
        // verifyEntry() reads from the arena; this fill-time pass runs
        // on the raw unpublished bytes instead (same checks).
        const TierStubs& m = e.meta;
        const uint8_t* blob = ts->bytes.data();
        auto check = [&](verify::Report rep) -> Status {
            if (!rep.ok())
                return Status::error(rep.summary());
            return Status::ok();
        };
        Status s = check(verify::checkEntryStub(blob + m.entryOffset,
                                                m.entrySize, config,
                                                m.entryOffset));
        if (s.isOk())
            s = check(verify::checkEntryStub(
                blob + m.directEntryOffset, m.directEntrySize, config,
                m.directEntryOffset));
        for (size_t i = 0; s.isOk() && i < m.dispatchOffsets.size();
             i++) {
            s = check(verify::checkTierStub(
                blob + m.dispatchOffsets[i], m.dispatchSizes[i],
                verify::TierStubKind::Dispatch, config,
                m.dispatchOffsets[i]));
            if (s.isOk())
                s = check(verify::checkTierStub(
                    blob + m.resolverOffsets[i], m.resolverSizes[i],
                    verify::TierStubKind::Resolver, config,
                    m.resolverOffsets[i]));
            if (s.isOk())
                s = check(verify::checkTierStub(
                    blob + m.interpOffsets[i], m.interpSizes[i],
                    verify::TierStubKind::Interp, config,
                    m.interpOffsets[i]));
        }
        if (!s.isOk()) {
            stats_.verifyFailures++;
            return R::error("cache fill rejected by verifier:\n" +
                            s.message());
        }
    }
    uint64_t vns = nowNs() - t0;

    auto off = publish(ts->bytes);
    if (!off.isOk())
        return R::error(off.message());
    e.offset = *off;
    e.verifyNs = vns;
    auto [pos, inserted] = entries_.emplace(k, std::move(e));
    (void)inserted;
    stats_.fills++;
    stats_.verifyNs += vns;
    stats_.entries = entries_.size();
    return R(StubsResult{arena_.base() + *off, &pos->second.meta,
                         /*hit=*/false, vns});
}

CodeCache::Stats
CodeCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

Result<uint64_t>
CodeCache::audit() const
{
    using R = Result<uint64_t>;
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t proven = 0;
    for (const auto& [k, e] : entries_) {
        Status s = verifyEntry(e);
        if (!s.isOk())
            return R::error("cache audit failure at blob offset " +
                            std::to_string(e.offset) + ":\n" +
                            s.message());
        proven++;
    }
    return R(proven);
}

}  // namespace sfi::jit
