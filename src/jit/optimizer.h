/**
 * @file
 * IR-level optimizer between the wasm IR and the single-pass emitter:
 * the "verified JIT optimizer" layer.
 *
 * Three cooperating transformations, all gated by
 * `CompilerConfig::optimize`:
 *
 *  1. Addressing-mode folding — `expr; i32.const c; i32.add` feeding a
 *     load/store folds `c` into the access's static offset instead of
 *     materializing the add, for every MemStrategy (including the %gs
 *     forms, whose displacement field absorbs it the same way). Folds
 *     only fire when a max-value bound on `expr` proves the i32 add
 *     cannot wrap (wrap would change the trapping address) and the
 *     combined displacement stays in the emitter's int32 range.
 *
 *  2. Address-expression CSE — a pure i32 expression that feeds two or
 *     more heap accesses is computed once into a fresh temp local
 *     (`local.set t` + `local.get t`) and later occurrences collapse to
 *     `local.get t`. Besides shrinking code, this is what makes guard
 *     elimination fire on real kernels, where `(i*N+j)*8` is re-derived
 *     per access: the shared temp gives the accesses one SSA-ish value
 *     the bounds fact can attach to — and one frame slot the machine-
 *     code verifier can track the fact through.
 *
 *  3. Redundant-guard elimination (BoundsCheck/SegueBounds only) — an
 *     access whose index value already passed a dominating limit check
 *     with greater-or-equal reach, or whose address is statically below
 *     the module's initial memory size, is tagged `wasm::kBoundsElided`
 *     and the emitter skips its `lea; cmp memSize; ja` sequence.
 *     Soundness leans on `memSize` being monotone (memory.grow never
 *     shrinks): a passed check and the initial-size floor both stay
 *     true for the rest of the run. Checks are never widened — a
 *     dropped check must be covered exactly, so trap behavior is
 *     bit-for-bit identical.
 *
 * Dominance is tracked structurally: facts are scoped to the enclosing
 * Block/If arm, loop-carried locals are invalidated at loop entry, and
 * anything assigned inside a construct is forgotten at its End. Every
 * elision is re-proven on the emitted machine code by verify::checkModule
 * (the dominating-check extension of its `bounds.dominate` rule), so the
 * optimizer is untrusted in the VeriWasm sense.
 */
#ifndef SFIKIT_JIT_OPTIMIZER_H_
#define SFIKIT_JIT_OPTIMIZER_H_

#include <cstdint>

#include "jit/strategy.h"
#include "wasm/module.h"

namespace sfi::jit {

/** Counters reported by the optimizer (per module; merged by compile). */
struct OptStats
{
    /** Heap accesses that carry an explicit bounds check pre-opt. */
    uint64_t checksConsidered = 0;
    /** ... of which a dominating check made the guard redundant. */
    uint64_t checksDominated = 0;
    /** ... of which a static bound below initial memory size did. */
    uint64_t checksStatic = 0;
    /** i32.const/i32.add pairs folded into access displacements. */
    uint64_t addsFolded = 0;
    /** Address expressions replaced by a CSE temp local.get. */
    uint64_t cseHits = 0;
    /** CSE temp locals allocated. */
    uint64_t cseTemps = 0;
    /** IR instructions removed net of inserted tee/get sequences. */
    uint64_t instrsRemoved = 0;

    // Machine-level peephole counters (x64::Assembler::PeepStats,
    // copied here by jit::compile so callers see one stats object).
    uint64_t peepMovsDropped = 0;   ///< dead 64-bit `mov r, r` elided
    uint64_t peepZextsDropped = 0;  ///< redundant `mov r32, r32` elided
    uint64_t peepXorZeros = 0;      ///< `mov r32, 0` -> `xor r32, r32`
    uint64_t peepBytesSaved = 0;    ///< code bytes the peephole saved

    uint64_t
    checksEliminated() const
    {
        return checksDominated + checksStatic;
    }

    void
    merge(const OptStats& o)
    {
        checksConsidered += o.checksConsidered;
        checksDominated += o.checksDominated;
        checksStatic += o.checksStatic;
        addsFolded += o.addsFolded;
        cseHits += o.cseHits;
        cseTemps += o.cseTemps;
        instrsRemoved += o.instrsRemoved;
        peepMovsDropped += o.peepMovsDropped;
        peepZextsDropped += o.peepZextsDropped;
        peepXorZeros += o.peepXorZeros;
        peepBytesSaved += o.peepBytesSaved;
    }
};

/**
 * Returns an optimized copy of @p fn (the input is never mutated; the
 * shape mirrors vectorizeBulkLoops). @p stats accumulates counters when
 * non-null. The result validates under the same module and computes
 * bit-for-bit identical results, trap-for-trap.
 */
wasm::Function optimizeFunction(const wasm::Function& fn,
                                const wasm::Module& module,
                                const CompilerConfig& config,
                                OptStats* stats);

}  // namespace sfi::jit

#endif  // SFIKIT_JIT_OPTIMIZER_H_
