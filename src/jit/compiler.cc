#include "jit/compiler.h"

#include <algorithm>
#include <optional>

#include "base/logging.h"
#include "base/units.h"
#include "jit/vectorize.h"
#include "runtime/trap.h"
#include "wasm/validator.h"
#include "x64/assembler.h"

namespace sfi::jit {

using wasm::Instr;
using wasm::Op;
using wasm::ValType;
using x64::AluOp;
using x64::Assembler;
using x64::Cond;
using x64::Label;
using x64::Mem;
using x64::Reg;
using x64::ShiftOp;
using x64::Width;
using x64::Xmm;

namespace {

/** Pinned registers. */
constexpr Reg kCtxReg = Reg::r14;
constexpr Reg kHeapReg = Reg::r15;
constexpr Reg kCodeReg = Reg::r13;  // LFI mode only

/** Integer-argument registers of the internal calling convention. */
constexpr Reg kIntArgRegs[6] = {Reg::rdi, Reg::rsi, Reg::rdx,
                                Reg::rcx, Reg::r8,  Reg::r9};

/** Context-field memory operands. */
Mem
ctxField(uint32_t offset)
{
    return Mem::baseDisp(kCtxReg, static_cast<int32_t>(offset));
}

constexpr uint32_t kOffMemBase = offsetof(JitContext, memBase);
constexpr uint32_t kOffMemSize = offsetof(JitContext, memSize);
constexpr uint32_t kOffEpochPtr = offsetof(JitContext, epochPtr);
constexpr uint32_t kOffEpochDeadline = offsetof(JitContext, epochDeadline);
constexpr uint32_t kOffGlobals = offsetof(JitContext, globals);
constexpr uint32_t kOffTableTypeIds = offsetof(JitContext, tableTypeIds);
constexpr uint32_t kOffTableEntries = offsetof(JitContext, tableEntries);
constexpr uint32_t kOffTableSize = offsetof(JitContext, tableSize);
constexpr uint32_t kOffRuntimeData = offsetof(JitContext, runtimeData);
constexpr uint32_t kOffTrapFn = offsetof(JitContext, trapFn);
constexpr uint32_t kOffGrowFn = offsetof(JitContext, growFn);
constexpr uint32_t kOffHostFn = offsetof(JitContext, hostFn);
constexpr uint32_t kOffFillFn = offsetof(JitContext, fillFn);
constexpr uint32_t kOffCopyFn = offsetof(JitContext, copyFn);
constexpr uint32_t kOffEpochFn = offsetof(JitContext, epochFn);
constexpr uint32_t kOffMemPages = offsetof(JitContext, memPages);
constexpr uint32_t kOffStackLimit = offsetof(JitContext, stackLimit);
constexpr uint32_t kOffHostArgs = offsetof(JitContext, hostArgs);
constexpr uint32_t kOffCodeBase = offsetof(JitContext, codeBase);
constexpr uint32_t kOffFuncEntries = offsetof(JitContext, funcEntries);
constexpr uint32_t kOffTierCounters = offsetof(JitContext, tierCounters);
constexpr uint32_t kOffTierThreshold =
    offsetof(JitContext, tierThreshold);
constexpr uint32_t kOffTierFn = offsetof(JitContext, tierFn);
constexpr uint32_t kOffInterpFn = offsetof(JitContext, interpFn);

/** Module-wide emission state shared across functions. */
struct ModuleState
{
    Assembler asm_;
    const wasm::Module* module = nullptr;
    CompilerConfig config;
    std::vector<Label> funcLabels;  ///< per defined function
    /** Lazily created trap stubs, keyed by trap code. */
    std::optional<Label> trapStubs[16];
    /**
     * Registers the allocator handed out in any function body, by
     * hardware number. Function prologues save only %rbp, so a pool
     * register that is callee-saved in the System-V sense (rbx, r12,
     * and r13/r15 when unpinned) is clobbered without being preserved —
     * the entry trampoline owns that save. Emitting the trampolines
     * after the bodies lets them preserve exactly this set.
     */
    bool gprAllocated[16] = {};
    /**
     * Defined index of the function being compiled — the tier-counter
     * prologue and diagnostics need it; rel32 codegen does not.
     */
    uint32_t currentDefinedIdx = 0;

    Label&
    trapStub(rt::TrapKind kind)
    {
        auto idx = static_cast<size_t>(kind);
        if (!trapStubs[idx])
            trapStubs[idx] = asm_.newLabel();
        return *trapStubs[idx];
    }
};

/** Compiles one function. */
class FunctionCompiler
{
  public:
    FunctionCompiler(ModuleState& ms, const wasm::Function& fn)
        : ms_(ms), a_(ms.asm_), mod_(*ms.module), cfg_(ms.config), fn_(fn),
          type_(mod_.types[fn.typeIdx])
    {
        numParams_ = type_.params.size();
        numLocals_ = numParams_ + fn.locals.size();
        localTypes_ = type_.params;
        localTypes_.insert(localTypes_.end(), fn.locals.begin(),
                           fn.locals.end());
        buildGprPool();
    }

    void compile();

  private:
    // --- virtual stack ---
    struct VEntry
    {
        enum class Loc : uint8_t { Gpr, Xmm, Const, Slot } loc;
        ValType type;
        Reg reg{};
        Xmm xmm{};
        uint64_t imm = 0;
    };

    struct CtrlFrame
    {
        Op kind;  ///< Block / Loop / If / Else
        Label end;
        Label head;      ///< loops
        Label elseArm;   ///< ifs
        bool hasElse = false;
        size_t entryHeight;
    };

    void
    buildGprPool()
    {
        // allocGpr pops from the back, so list callee-saved registers
        // first: they are handed out only once every caller-saved
        // register is live. Every callee-saved register the allocator
        // never touches is one push/pop pair the lean entry stub can
        // drop from its register contract.
        gprPool_.clear();
        if (!cfg_.needsHeapBaseReg())
            gprPool_.push_back(kHeapReg);  // Segue frees r15 (§3.1)
        if (cfg_.cfi != CfiMode::Lfi)
            gprPool_.push_back(kCodeReg);  // r13 free without LFI
        gprPool_.insert(gprPool_.end(),
                        {Reg::r12, Reg::rbx, Reg::rsi, Reg::rdi, Reg::r8,
                         Reg::r9, Reg::r10, Reg::r11});
        // A pinned register in the allocation pool would let ordinary
        // codegen clobber the sandbox base — exactly what the static
        // verifier's pin.write rule rejects. Fail loudly at compile
        // time instead.
        for (Reg r : gprPool_) {
            SFI_CHECK_MSG(!(r == kHeapReg && cfg_.needsHeapBaseReg()),
                          "pinned heap base %%r15 leaked into the GPR "
                          "pool under %s",
                          name(cfg_.mem));
            SFI_CHECK_MSG(!(r == kCodeReg && cfg_.cfi == CfiMode::Lfi),
                          "pinned LFI code base %%r13 leaked into the "
                          "GPR pool");
            SFI_CHECK_MSG(r != kCtxReg,
                          "JitContext register %%r14 must never be "
                          "allocatable");
        }
        gprFree_ = gprPool_;
        for (int i = 4; i <= 15; i++)
            xmmFree_.push_back(static_cast<Xmm>(i));
    }

    /** Frame slot of local @p i (8 bytes each, below rbp). */
    Mem
    localSlot(uint32_t i) const
    {
        return Mem::baseDisp(Reg::rbp, -8 * (static_cast<int32_t>(i) + 1));
    }

    /** Frame slot of vstack position @p pos. */
    Mem
    stackSlot(size_t pos) const
    {
        return Mem::baseDisp(
            Reg::rbp,
            -8 * (static_cast<int32_t>(numLocals_ + pos) + 1));
    }

    Reg
    allocGpr()
    {
        if (gprFree_.empty())
            spillOldestGpr();
        Reg r = gprFree_.back();
        gprFree_.pop_back();
        ms_.gprAllocated[static_cast<size_t>(r)] = true;
        return r;
    }

    Xmm
    allocXmm()
    {
        if (xmmFree_.empty())
            spillOldestXmm();
        Xmm x = xmmFree_.back();
        xmmFree_.pop_back();
        return x;
    }

    void freeGpr(Reg r) { gprFree_.push_back(r); }
    void freeXmm(Xmm x) { xmmFree_.push_back(x); }

    void
    spillOldestGpr()
    {
        for (size_t i = 0; i < vstack_.size(); i++) {
            if (vstack_[i].loc == VEntry::Loc::Gpr) {
                a_.store(Width::W64, stackSlot(i), vstack_[i].reg);
                freeGpr(vstack_[i].reg);
                vstack_[i].loc = VEntry::Loc::Slot;
                return;
            }
        }
        SFI_PANIC("GPR pool exhausted with nothing to spill");
    }

    void
    spillOldestXmm()
    {
        for (size_t i = 0; i < vstack_.size(); i++) {
            if (vstack_[i].loc == VEntry::Loc::Xmm) {
                a_.movsdStore(stackSlot(i), vstack_[i].xmm);
                freeXmm(vstack_[i].xmm);
                vstack_[i].loc = VEntry::Loc::Slot;
                return;
            }
        }
        SFI_PANIC("XMM pool exhausted with nothing to spill");
    }

    /** Spills every vstack entry to its canonical slot. */
    void
    spillAll()
    {
        for (size_t i = 0; i < vstack_.size(); i++) {
            VEntry& e = vstack_[i];
            switch (e.loc) {
              case VEntry::Loc::Gpr:
                a_.store(Width::W64, stackSlot(i), e.reg);
                freeGpr(e.reg);
                break;
              case VEntry::Loc::Xmm:
                a_.movsdStore(stackSlot(i), e.xmm);
                freeXmm(e.xmm);
                break;
              case VEntry::Loc::Const:
                materializeConstToSlot(e, i);
                break;
              case VEntry::Loc::Slot:
                continue;
            }
            e.loc = VEntry::Loc::Slot;
        }
    }

    void
    materializeConstToSlot(const VEntry& e, size_t pos)
    {
        int64_t as_signed = static_cast<int64_t>(e.imm);
        if (as_signed >= INT32_MIN && as_signed <= INT32_MAX) {
            a_.storeImm32(Width::W64, stackSlot(pos),
                          static_cast<int32_t>(e.imm));
        } else {
            a_.movImm64(Reg::rax, e.imm);
            a_.store(Width::W64, stackSlot(pos), Reg::rax);
        }
    }

    void
    pushGpr(Reg r, ValType t)
    {
        vstack_.push_back({VEntry::Loc::Gpr, t, r, Xmm::xmm0, 0});
    }

    void
    pushXmm(Xmm x, ValType t)
    {
        vstack_.push_back({VEntry::Loc::Xmm, t, Reg::rax, x, 0});
    }

    void
    pushConst(uint64_t v, ValType t)
    {
        vstack_.push_back({VEntry::Loc::Const, t, Reg::rax, Xmm::xmm0, v});
    }

    VEntry
    popV()
    {
        SFI_CHECK(!vstack_.empty());
        VEntry e = vstack_.back();
        vstack_.pop_back();
        return e;
    }

    /**
     * Restores the compile-time stack to @p height at a control join.
     * Dead code (after return/br) may leave the stack shorter; the
     * placeholders are Slot-resident so they hold no registers. All
     * live entries are already spilled when this is called.
     */
    void
    resizeStackTo(size_t height)
    {
        while (vstack_.size() < height) {
            vstack_.push_back(
                {VEntry::Loc::Slot, ValType::I64, Reg::rax, Xmm::xmm0, 0});
        }
        if (vstack_.size() > height)
            vstack_.resize(height);
    }

    /** Materializes @p e into a pool GPR (caller owns the register). */
    Reg
    intoGpr(const VEntry& e, size_t slot_pos)
    {
        switch (e.loc) {
          case VEntry::Loc::Gpr:
            return e.reg;
          case VEntry::Loc::Const: {
            Reg r = allocGpr();
            loadConst(r, e);
            return r;
          }
          case VEntry::Loc::Slot: {
            Reg r = allocGpr();
            a_.load(Width::W64, false, r, stackSlot(slot_pos));
            return r;
          }
          case VEntry::Loc::Xmm:
            SFI_PANIC("intoGpr on f64 value");
        }
        __builtin_unreachable();
    }

    void
    loadConst(Reg r, const VEntry& e)
    {
        if (e.type == ValType::I32 || (e.imm >> 32) == 0) {
            a_.movImm32(r, static_cast<uint32_t>(e.imm));
        } else {
            a_.movImm64(r, e.imm);
        }
    }

    Xmm
    intoXmm(const VEntry& e, size_t slot_pos)
    {
        switch (e.loc) {
          case VEntry::Loc::Xmm:
            return e.xmm;
          case VEntry::Loc::Const: {
            Xmm x = allocXmm();
            a_.movImm64(Reg::rax, e.imm);
            a_.movqToXmm(x, Reg::rax);
            return x;
          }
          case VEntry::Loc::Slot: {
            Xmm x = allocXmm();
            a_.movsdLoad(x, stackSlot(slot_pos));
            return x;
          }
          case VEntry::Loc::Gpr:
            SFI_PANIC("intoXmm on integer value");
        }
        __builtin_unreachable();
    }

    /** Pops the top entry into a pool GPR. */
    Reg
    popGpr()
    {
        size_t pos = vstack_.size() - 1;
        VEntry e = popV();
        return intoGpr(e, pos);
    }

    Xmm
    popXmm()
    {
        size_t pos = vstack_.size() - 1;
        VEntry e = popV();
        return intoXmm(e, pos);
    }

    void
    freeEntryReg(const VEntry& e)
    {
        if (e.loc == VEntry::Loc::Gpr)
            freeGpr(e.reg);
        else if (e.loc == VEntry::Loc::Xmm)
            freeXmm(e.xmm);
    }

    // --- codegen helpers ---

    Width
    widthOf(ValType t) const
    {
        return t == ValType::I64 ? Width::W64 : Width::W32;
    }

    void
    jumpTrap(rt::TrapKind kind)
    {
        a_.jmp(ms_.trapStub(kind));
    }

    void
    jccTrap(Cond cc, rt::TrapKind kind)
    {
        a_.jcc(cc, ms_.trapStub(kind));
    }

    /**
     * Builds the memory operand for a heap access and emits any
     * strategy-required checks. @p idx holds a (possibly untrusted)
     * index register; may clobber rax.
     */
    Mem
    heapOperand(Reg idx, uint32_t disp, uint32_t access_bytes,
                bool is_store, bool elide_bounds = false)
    {
        bool use_segue =
            is_store ? cfg_.segueStores() : cfg_.segueLoads();

        if (cfg_.explicitBounds() && !elide_bounds) {
            // lea rax, [idx + disp + size]; cmp rax, ctx->memSize; ja trap
            a_.lea(Width::W64, Reg::rax,
                   Mem::baseDisp(idx,
                                 static_cast<int32_t>(disp + access_bytes)));
            a_.aluMem(AluOp::Cmp, Width::W64, Reg::rax,
                      ctxField(kOffMemSize));
            jccTrap(Cond::A, rt::TrapKind::OutOfBounds);
        }

        if (use_segue) {
            if (cfg_.untrustedIndexRegs) {
                // LFI/Figure 1c: one instruction; 0x67 truncates the
                // effective address to 32 bits, %gs adds the base.
                Mem m = Mem::gs32(idx, static_cast<int32_t>(disp));
                return m;
            }
            // Wasm: idx is a clean u32, so a plain 64-bit EA gives exact
            // 33-bit semantics: gs:[idx + disp].
            Mem m = Mem::baseDisp(idx, static_cast<int32_t>(disp));
            m.seg = x64::Seg::Gs;
            return m;
        }

        if (cfg_.untrustedIndexRegs &&
            cfg_.mem != MemStrategy::Unsandboxed) {
            // Figure 1b: explicit truncation, then base-indexed access.
            a_.mov(Width::W32, idx, idx);
        }
        return Mem::baseIndex(kHeapReg, idx, 1,
                              static_cast<int32_t>(disp));
    }

    void emitLoad(const Instr& in);
    void emitStore(const Instr& in);
    void emitI32Bin(Op op);
    void emitI64Bin(Op op);
    void emitIntCompare(Op op);
    void emitF64Bin(Op op);
    void emitF64Compare(Op op);
    void emitDivRem(Op op);
    void emitShift(Op op);
    void emitSelect();
    void emitCall(const Instr& in);
    void emitCallIndirect(const Instr& in);
    void emitHostCall(uint32_t import_idx);
    void emitRuntimeCall3(uint32_t fn_off, int nargs);
    void emitEpochCheck();
    void emitBranch(uint32_t depth);
    void emitReturn();
    void emitEpilogue();
    void setResultRegsForBranch();
    void loadCallArgs(const wasm::FuncType& ft);
    void setResultRegs();

    CtrlFrame&
    frameAt(uint32_t depth)
    {
        SFI_CHECK(depth < ctrl_.size());
        return ctrl_[ctrl_.size() - 1 - depth];
    }

    /** Computes the maximum vstack height (frame sizing prepass). */
    size_t maxStackHeight() const;

    ModuleState& ms_;
    Assembler& a_;
    const wasm::Module& mod_;
    CompilerConfig cfg_;
    const wasm::Function& fn_;
    const wasm::FuncType& type_;

    size_t numParams_ = 0;
    size_t numLocals_ = 0;
    std::vector<ValType> localTypes_;

    std::vector<Reg> gprPool_, gprFree_;
    std::vector<Xmm> xmmFree_;
    std::vector<VEntry> vstack_;
    std::vector<CtrlFrame> ctrl_;
    Label epilogue_;
    size_t pc_ = 0;
    /** True after an unconditional transfer; cleared at End/Else. */
    bool dead_ = false;
};

size_t
FunctionCompiler::maxStackHeight() const
{
    // Heights are deterministic under validation; simulate them.
    size_t h = 0, maxh = 0;
    std::vector<size_t> entry;  // frame entry heights
    auto bump = [&](int delta) {
        h = static_cast<size_t>(static_cast<int64_t>(h) + delta);
        maxh = std::max(maxh, h);
    };
    for (const Instr& in : fn_.body) {
        switch (in.op) {
          case Op::Block:
          case Op::Loop:
            entry.push_back(h);
            break;
          case Op::If:
            bump(-1);
            entry.push_back(h);
            break;
          case Op::Else:
            h = entry.back();
            break;
          case Op::End:
            if (!entry.empty()) {
                h = entry.back();
                entry.pop_back();
            }
            break;
          case Op::Br:
          case Op::Return:
          case Op::Unreachable:
            // Unreachable until the frame closes; height resets at
            // End/Else via the entry stack.
            break;
          case Op::BrIf:
          case Op::BrTable:
            bump(-1);
            break;
          case Op::Call:
          case Op::CallIndirect: {
            const wasm::FuncType& ft =
                in.op == Op::Call ? mod_.typeOfFunc(in.a)
                                  : mod_.types[in.a];
            if (in.op == Op::CallIndirect)
                bump(-1);
            bump(-static_cast<int>(ft.params.size()));
            bump(static_cast<int>(ft.results.size()));
            break;
          }
          case Op::Drop:
            bump(-1);
            break;
          case Op::Select:
            bump(-2);
            break;
          case Op::LocalGet:
          case Op::GlobalGet:
          case Op::I32Const:
          case Op::I64Const:
          case Op::F64Const:
          case Op::MemorySize:
            bump(+1);
            break;
          case Op::LocalSet:
          case Op::GlobalSet:
            bump(-1);
            break;
          case Op::LocalTee:
          case Op::MemoryGrow:
            break;  // net zero
          case Op::MemoryFill:
          case Op::MemoryCopy:
            bump(-3);
            break;
          // Loads and unary ops: net zero. Stores: -2. Binary ops: -1.
          case Op::I32Store: case Op::I64Store: case Op::F64Store:
          case Op::I32Store8: case Op::I32Store16:
            bump(-2);
            break;
          case Op::I32Load: case Op::I64Load: case Op::F64Load:
          case Op::I32Load8S: case Op::I32Load8U: case Op::I32Load16S:
          case Op::I32Load16U: case Op::I64Load32S: case Op::I64Load32U:
          case Op::I32Eqz: case Op::I64Eqz: case Op::I32Popcnt:
          case Op::I64Popcnt: case Op::I32WrapI64:
          case Op::I64ExtendI32S: case Op::I64ExtendI32U:
          case Op::F64Sqrt: case Op::F64Neg: case Op::F64Abs:
          case Op::F64ConvertI32S: case Op::F64ConvertI32U:
          case Op::F64ConvertI64S: case Op::I32TruncF64S:
          case Op::I64TruncF64S: case Op::F64ReinterpretI64:
          case Op::I64ReinterpretF64: case Op::Nop:
            break;
          default:
            // All remaining opcodes are binary: two in, one out.
            bump(-1);
            break;
        }
    }
    return maxh + 2;  // slack for transient scratch spills
}

void
FunctionCompiler::compile()
{
    epilogue_ = a_.newLabel();

    // --- prologue ---
    a_.push(Reg::rbp);
    a_.mov(Width::W64, Reg::rbp, Reg::rsp);
    size_t frame_slots = numLocals_ + maxStackHeight();
    uint32_t frame_bytes =
        static_cast<uint32_t>(alignUp(frame_slots * 8, 16));
    if (frame_bytes > 0)
        a_.aluImm(AluOp::Sub, Width::W64, Reg::rsp,
                  static_cast<int32_t>(frame_bytes));

    // Stack-overflow check against ctx->stackLimit.
    a_.aluMem(AluOp::Cmp, Width::W64, Reg::rsp,
              ctxField(kOffStackLimit));
    jccTrap(Cond::B, rt::TrapKind::StackExhausted);

    // Store parameters into local slots.
    size_t int_pos = 0, f64_pos = 0;
    for (size_t i = 0; i < numParams_; i++) {
        if (localTypes_[i] == ValType::F64) {
            a_.movsdStore(localSlot(static_cast<uint32_t>(i)),
                          static_cast<Xmm>(f64_pos));
            f64_pos++;
        } else {
            a_.store(Width::W64, localSlot(static_cast<uint32_t>(i)),
                     kIntArgRegs[int_pos]);
            int_pos++;
        }
    }
    // Zero the declared locals (Wasm requires zero-initialization).
    if (numLocals_ > numParams_) {
        a_.alu(AluOp::Xor, Width::W32, Reg::rax, Reg::rax);
        for (size_t i = numParams_; i < numLocals_; i++)
            a_.store(Width::W64, localSlot(static_cast<uint32_t>(i)),
                     Reg::rax);
    }

    // Hot-count tier-up (baseline tier only): bump this function's
    // counter and call ctx->tierFn at the threshold. Parameters are
    // already spilled to their local slots, so rax/rdx and every
    // argument register are dead; rsp ≡ 0 (mod 16) here, so the
    // C-ABI tierFn call is correctly aligned. The counter pointer is
    // loaded from a JitContext field, which the static verifier
    // tracks as a trusted runtime pointer (verify: MC::Trusted).
    if (cfg_.tierCounters) {
        uint32_t idx = ms_.currentDefinedIdx;
        int32_t slot = static_cast<int32_t>(8 * idx);
        Label skip = a_.newLabel();
        a_.load(Width::W64, false, Reg::rax, ctxField(kOffTierCounters));
        a_.load(Width::W64, false, Reg::rdx,
                Mem::baseDisp(Reg::rax, slot));
        a_.aluImm(AluOp::Add, Width::W64, Reg::rdx, 1);
        a_.store(Width::W64, Mem::baseDisp(Reg::rax, slot), Reg::rdx);
        a_.aluMem(AluOp::Cmp, Width::W64, Reg::rdx,
                  ctxField(kOffTierThreshold));
        a_.jcc(Cond::B, skip);
        a_.load(Width::W64, false, Reg::rdi, ctxField(kOffRuntimeData));
        a_.movImm32(Reg::rsi, idx);
        a_.load(Width::W64, false, Reg::rax, ctxField(kOffTierFn));
        a_.callReg(Reg::rax);
        a_.bind(skip);
    }

    // --- body ---
    for (pc_ = 0; pc_ < fn_.body.size(); pc_++) {
        const Instr& in = fn_.body[pc_];
        switch (in.op) {
          case Op::Unreachable:
            spillAll();  // free registers held by pending values
            jumpTrap(rt::TrapKind::Unreachable);
            dead_ = true;
            break;
          case Op::Nop:
            break;

          case Op::Block: {
            spillAll();
            CtrlFrame f{Op::Block, a_.newLabel(), {}, {}, false,
                        vstack_.size()};
            ctrl_.push_back(f);
            break;
          }
          case Op::Loop: {
            spillAll();
            CtrlFrame f{Op::Loop, a_.newLabel(), a_.newLabel(), {}, false,
                        vstack_.size()};
            // Align loop headers so hot-loop performance doesn't depend
            // on how many bytes the chosen SFI strategy happened to
            // emit earlier — strategies are compared on their
            // instruction streams, not alignment luck.
            a_.alignTo(16);
            a_.bind(f.head);
            ctrl_.push_back(f);
            if (cfg_.epochChecks)
                emitEpochCheck();
            break;
          }
          case Op::If: {
            Reg cond = popGpr();
            spillAll();
            a_.test(Width::W32, cond, cond);
            freeGpr(cond);
            CtrlFrame f{Op::If, a_.newLabel(), {}, a_.newLabel(), false,
                        vstack_.size()};
            a_.jcc(Cond::E, f.elseArm);
            ctrl_.push_back(f);
            break;
          }
          case Op::Else: {
            CtrlFrame& f = ctrl_.back();
            spillAll();
            resizeStackTo(f.entryHeight);
            if (!dead_)
                a_.jmp(f.end);
            a_.bind(f.elseArm);
            f.hasElse = true;
            dead_ = false;
            break;
          }
          case Op::End: {
            if (ctrl_.empty()) {
                // Function end: result (if any) to the return registers.
                if (!dead_)
                    setResultRegs();
                a_.bind(epilogue_);
                emitEpilogue();
                break;
            }
            CtrlFrame f = ctrl_.back();
            ctrl_.pop_back();
            spillAll();
            resizeStackTo(f.entryHeight);
            if (f.kind == Op::If && !f.hasElse)
                a_.bind(f.elseArm);
            a_.bind(f.end);
            dead_ = false;
            break;
          }

          case Op::Br:
            emitBranch(in.a);
            dead_ = true;
            break;
          case Op::BrIf: {
            Reg cond = popGpr();
            spillAll();
            a_.test(Width::W32, cond, cond);
            freeGpr(cond);
            Label skip = a_.newLabel();
            a_.jcc(Cond::E, skip);
            if (in.a >= ctrl_.size()) {
                setResultRegsForBranch();
                a_.jmp(epilogue_);
            } else {
                CtrlFrame& t = frameAt(in.a);
                a_.jmp(t.kind == Op::Loop ? t.head : t.end);
            }
            a_.bind(skip);
            break;
          }
          case Op::BrTable: {
            Reg idx = popGpr();
            a_.mov(Width::W32, Reg::rax, idx);
            freeGpr(idx);
            spillAll();
            const auto& depths = fn_.brTables[in.a];
            for (size_t i = 0; i + 1 < depths.size(); i++) {
                a_.aluImm(AluOp::Cmp, Width::W32, Reg::rax,
                          static_cast<int32_t>(i));
                uint32_t d = depths[i];
                if (d >= ctrl_.size()) {
                    // Branch to function frame: route via epilogue.
                    Label skip = a_.newLabel();
                    a_.jcc(Cond::NE, skip);
                    setResultRegsForBranch();
                    a_.jmp(epilogue_);
                    a_.bind(skip);
                } else {
                    CtrlFrame& t = frameAt(d);
                    a_.jcc(Cond::E, t.kind == Op::Loop ? t.head : t.end);
                }
            }
            uint32_t dd = depths.back();
            if (dd >= ctrl_.size()) {
                setResultRegsForBranch();
                a_.jmp(epilogue_);
            } else {
                CtrlFrame& t = frameAt(dd);
                a_.jmp(t.kind == Op::Loop ? t.head : t.end);
            }
            dead_ = true;
            break;
          }
          case Op::Return:
            emitReturn();
            dead_ = true;
            break;

          case Op::Call:
            emitCall(in);
            break;
          case Op::CallIndirect:
            emitCallIndirect(in);
            break;

          case Op::Drop: {
            VEntry e = popV();
            freeEntryReg(e);
            break;
          }
          case Op::Select:
            emitSelect();
            break;

          case Op::LocalGet: {
            if (localTypes_[in.a] == ValType::F64) {
                Xmm x = allocXmm();
                a_.movsdLoad(x, localSlot(in.a));
                pushXmm(x, ValType::F64);
            } else {
                Reg r = allocGpr();
                a_.load(Width::W64, false, r, localSlot(in.a));
                pushGpr(r, localTypes_[in.a]);
            }
            break;
          }
          case Op::LocalSet: {
            size_t pos = vstack_.size() - 1;
            VEntry e = popV();
            if (e.type == ValType::F64) {
                Xmm x = intoXmm(e, pos);
                a_.movsdStore(localSlot(in.a), x);
                freeXmm(x);
            } else if (e.loc == VEntry::Loc::Const &&
                       static_cast<int64_t>(e.imm) >= INT32_MIN &&
                       static_cast<int64_t>(e.imm) <= INT32_MAX) {
                a_.storeImm32(Width::W64, localSlot(in.a),
                              static_cast<int32_t>(e.imm));
            } else {
                Reg r = intoGpr(e, pos);
                a_.store(Width::W64, localSlot(in.a), r);
                freeGpr(r);
            }
            break;
          }
          case Op::LocalTee: {
            size_t pos = vstack_.size() - 1;
            VEntry e = popV();
            if (e.type == ValType::F64) {
                Xmm x = intoXmm(e, pos);
                a_.movsdStore(localSlot(in.a), x);
                pushXmm(x, ValType::F64);
            } else {
                Reg r = intoGpr(e, pos);
                a_.store(Width::W64, localSlot(in.a), r);
                pushGpr(r, e.type);
            }
            break;
          }
          case Op::GlobalGet: {
            ValType t = mod_.globals[in.a].type;
            a_.load(Width::W64, false, Reg::rax, ctxField(kOffGlobals));
            if (t == ValType::F64) {
                Xmm x = allocXmm();
                a_.movsdLoad(x, Mem::baseDisp(Reg::rax, 8 * in.a));
                pushXmm(x, t);
            } else {
                Reg r = allocGpr();
                a_.load(Width::W64, false, r,
                        Mem::baseDisp(Reg::rax, 8 * in.a));
                pushGpr(r, t);
            }
            break;
          }
          case Op::GlobalSet: {
            size_t pos = vstack_.size() - 1;
            VEntry e = popV();
            a_.load(Width::W64, false, Reg::rax, ctxField(kOffGlobals));
            if (e.type == ValType::F64) {
                Xmm x = intoXmm(e, pos);
                a_.movsdStore(Mem::baseDisp(Reg::rax, 8 * in.a), x);
                freeXmm(x);
            } else {
                Reg r = intoGpr(e, pos);
                a_.store(Width::W64, Mem::baseDisp(Reg::rax, 8 * in.a),
                         r);
                freeGpr(r);
            }
            break;
          }

          case Op::I32Load: case Op::I64Load: case Op::F64Load:
          case Op::I32Load8S: case Op::I32Load8U: case Op::I32Load16S:
          case Op::I32Load16U: case Op::I64Load32S: case Op::I64Load32U:
            emitLoad(in);
            break;
          case Op::I32Store: case Op::I64Store: case Op::F64Store:
          case Op::I32Store8: case Op::I32Store16:
            emitStore(in);
            break;

          case Op::MemorySize: {
            Reg r = allocGpr();
            a_.load(Width::W64, false, r, ctxField(kOffMemPages));
            pushGpr(r, ValType::I32);
            break;
          }
          case Op::MemoryGrow:
            emitRuntimeCall3(kOffGrowFn, 1);
            break;
          case Op::MemoryFill:
            emitRuntimeCall3(kOffFillFn, 3);
            break;
          case Op::MemoryCopy:
            emitRuntimeCall3(kOffCopyFn, 3);
            break;

          case Op::I32Const:
            pushConst(in.imm & 0xffffffffu, ValType::I32);
            break;
          case Op::I64Const:
            pushConst(in.imm, ValType::I64);
            break;
          case Op::F64Const:
            pushConst(in.imm, ValType::F64);
            break;

          case Op::I32Eqz: {
            Reg r = popGpr();
            a_.test(Width::W32, r, r);
            a_.setcc(Cond::E, r);
            a_.movzx8(r, r);
            pushGpr(r, ValType::I32);
            break;
          }
          case Op::I64Eqz: {
            Reg r = popGpr();
            a_.test(Width::W64, r, r);
            a_.setcc(Cond::E, r);
            a_.movzx8(r, r);
            pushGpr(r, ValType::I32);
            break;
          }

          case Op::I32Eq: case Op::I32Ne: case Op::I32LtS:
          case Op::I32LtU: case Op::I32GtS: case Op::I32GtU:
          case Op::I32LeS: case Op::I32LeU: case Op::I32GeS:
          case Op::I32GeU: case Op::I64Eq: case Op::I64Ne:
          case Op::I64LtS: case Op::I64LtU: case Op::I64GtS:
          case Op::I64GtU: case Op::I64LeS: case Op::I64LeU:
          case Op::I64GeS: case Op::I64GeU:
            emitIntCompare(in.op);
            break;

          case Op::I32Add: case Op::I32Sub: case Op::I32Mul:
          case Op::I32And: case Op::I32Or: case Op::I32Xor:
            emitI32Bin(in.op);
            break;
          case Op::I64Add: case Op::I64Sub: case Op::I64Mul:
          case Op::I64And: case Op::I64Or: case Op::I64Xor:
            emitI64Bin(in.op);
            break;

          case Op::I32DivS: case Op::I32DivU: case Op::I32RemS:
          case Op::I32RemU: case Op::I64DivS: case Op::I64DivU:
          case Op::I64RemS: case Op::I64RemU:
            emitDivRem(in.op);
            break;

          case Op::I32Shl: case Op::I32ShrS: case Op::I32ShrU:
          case Op::I32Rotl: case Op::I32Rotr: case Op::I64Shl:
          case Op::I64ShrS: case Op::I64ShrU: case Op::I64Rotl:
          case Op::I64Rotr:
            emitShift(in.op);
            break;

          case Op::I32Popcnt: {
            Reg r = popGpr();
            a_.popcnt(Width::W32, r, r);
            pushGpr(r, ValType::I32);
            break;
          }
          case Op::I64Popcnt: {
            Reg r = popGpr();
            a_.popcnt(Width::W64, r, r);
            pushGpr(r, ValType::I64);
            break;
          }

          case Op::I32WrapI64: {
            Reg r = popGpr();
            a_.mov(Width::W32, r, r);
            pushGpr(r, ValType::I32);
            break;
          }
          case Op::I64ExtendI32S: {
            Reg r = popGpr();
            a_.movsxd(r, r);
            pushGpr(r, ValType::I64);
            break;
          }
          case Op::I64ExtendI32U: {
            // i32 values are already zero-extended.
            Reg r = popGpr();
            pushGpr(r, ValType::I64);
            break;
          }

          case Op::F64Eq: case Op::F64Ne: case Op::F64Lt: case Op::F64Gt:
          case Op::F64Le: case Op::F64Ge:
            emitF64Compare(in.op);
            break;
          case Op::F64Add: case Op::F64Sub: case Op::F64Mul:
          case Op::F64Div: case Op::F64Min: case Op::F64Max:
            emitF64Bin(in.op);
            break;
          case Op::F64Sqrt: {
            Xmm x = popXmm();
            a_.sqrtsd(x, x);
            pushXmm(x, ValType::F64);
            break;
          }
          case Op::F64Neg: {
            Xmm x = popXmm();
            a_.movqFromXmm(Reg::rax, x);
            a_.movImm64(Reg::rdx, 0x8000000000000000ull);
            a_.alu(AluOp::Xor, Width::W64, Reg::rax, Reg::rdx);
            a_.movqToXmm(x, Reg::rax);
            pushXmm(x, ValType::F64);
            break;
          }
          case Op::F64Abs: {
            Xmm x = popXmm();
            a_.movqFromXmm(Reg::rax, x);
            a_.movImm64(Reg::rdx, 0x7fffffffffffffffull);
            a_.alu(AluOp::And, Width::W64, Reg::rax, Reg::rdx);
            a_.movqToXmm(x, Reg::rax);
            pushXmm(x, ValType::F64);
            break;
          }

          case Op::F64ConvertI32S: {
            Reg r = popGpr();
            Xmm x = allocXmm();
            a_.cvtsi2sd(x, Width::W32, r);
            freeGpr(r);
            pushXmm(x, ValType::F64);
            break;
          }
          case Op::F64ConvertI32U: {
            // Zero-extended u32 in a 64-bit reg converts exactly.
            Reg r = popGpr();
            Xmm x = allocXmm();
            a_.cvtsi2sd(x, Width::W64, r);
            freeGpr(r);
            pushXmm(x, ValType::F64);
            break;
          }
          case Op::F64ConvertI64S: {
            Reg r = popGpr();
            Xmm x = allocXmm();
            a_.cvtsi2sd(x, Width::W64, r);
            freeGpr(r);
            pushXmm(x, ValType::F64);
            break;
          }
          case Op::I32TruncF64S: {
            Xmm x = popXmm();
            Reg r = allocGpr();
            a_.cvttsd2si(Width::W32, r, x);
            freeXmm(x);
            a_.aluImm(AluOp::Cmp, Width::W32, r, INT32_MIN);
            jccTrap(Cond::E, rt::TrapKind::IntegerOverflow);
            pushGpr(r, ValType::I32);
            break;
          }
          case Op::I64TruncF64S: {
            Xmm x = popXmm();
            Reg r = allocGpr();
            a_.cvttsd2si(Width::W64, r, x);
            freeXmm(x);
            a_.movImm64(Reg::rax, 0x8000000000000000ull);
            a_.alu(AluOp::Cmp, Width::W64, r, Reg::rax);
            jccTrap(Cond::E, rt::TrapKind::IntegerOverflow);
            pushGpr(r, ValType::I64);
            break;
          }
          case Op::F64ReinterpretI64: {
            Reg r = popGpr();
            Xmm x = allocXmm();
            a_.movqToXmm(x, r);
            freeGpr(r);
            pushXmm(x, ValType::F64);
            break;
          }
          case Op::I64ReinterpretF64: {
            Xmm x = popXmm();
            Reg r = allocGpr();
            a_.movqFromXmm(r, x);
            freeXmm(x);
            pushGpr(r, ValType::I64);
            break;
          }
        }
    }
}

void
FunctionCompiler::setResultRegs()
{
    if (type_.results.empty())
        return;
    size_t pos = vstack_.size() - 1;
    VEntry e = popV();
    if (e.type == ValType::F64) {
        Xmm x = intoXmm(e, pos);
        if (x != Xmm::xmm0)
            a_.movsd(Xmm::xmm0, x);
        freeXmm(x);
    } else {
        if (e.loc == VEntry::Loc::Const) {
            loadConst(Reg::rax, e);
        } else if (e.loc == VEntry::Loc::Slot) {
            a_.load(Width::W64, false, Reg::rax, stackSlot(pos));
        } else {
            a_.mov(Width::W64, Reg::rax, e.reg);
            freeGpr(e.reg);
        }
    }
}

void
FunctionCompiler::emitReturn()
{
    setResultRegs();
    spillAll();  // release registers of any values below the result
    a_.jmp(epilogue_);
}

void
FunctionCompiler::setResultRegsForBranch()
{
    // Branch to the function frame: the result sits at the top of the
    // (fully spilled) vstack; load it without changing compile state —
    // the not-taken path continues with the value still on the stack.
    if (type_.results.empty())
        return;
    SFI_CHECK(!vstack_.empty());
    size_t pos = vstack_.size() - 1;
    if (type_.results[0] == ValType::F64) {
        a_.movsdLoad(Xmm::xmm0, stackSlot(pos));
    } else {
        a_.load(Width::W64, false, Reg::rax, stackSlot(pos));
    }
}

void
FunctionCompiler::emitEpilogue()
{
    // leave = mov rsp, rbp; pop rbp.
    a_.mov(Width::W64, Reg::rsp, Reg::rbp);
    a_.pop(Reg::rbp);
    if (cfg_.cfi == CfiMode::Lfi) {
        // NaCl/LFI-style protected return: truncate the return address
        // to 32 bits relative to the code base, re-add the base, jump.
        a_.pop(Reg::rcx);
        a_.alu(AluOp::Sub, Width::W64, Reg::rcx, kCodeReg);
        a_.mov(Width::W32, Reg::rcx, Reg::rcx);
        a_.alu(AluOp::Add, Width::W64, Reg::rcx, kCodeReg);
        a_.jmpReg(Reg::rcx);
    } else {
        a_.ret();
    }
}

void
FunctionCompiler::emitBranch(uint32_t depth)
{
    spillAll();
    if (depth >= ctrl_.size()) {
        setResultRegsForBranch();
        a_.jmp(epilogue_);
        return;
    }
    CtrlFrame& t = frameAt(depth);
    a_.jmp(t.kind == Op::Loop ? t.head : t.end);
}

void
FunctionCompiler::emitEpochCheck()
{
    // vstack is fully spilled at loop heads, so the callback is safe.
    Label skip = a_.newLabel();
    a_.load(Width::W64, false, Reg::rax, ctxField(kOffEpochPtr));
    a_.load(Width::W64, false, Reg::rax, Mem::baseDisp(Reg::rax, 0));
    a_.aluMem(AluOp::Cmp, Width::W64, Reg::rax,
              ctxField(kOffEpochDeadline));
    a_.jcc(Cond::BE, skip);
    a_.load(Width::W64, false, Reg::rdi, ctxField(kOffRuntimeData));
    a_.load(Width::W64, false, Reg::rax, ctxField(kOffEpochFn));
    a_.callReg(Reg::rax);
    a_.bind(skip);
}

void
FunctionCompiler::emitLoad(const Instr& in)
{
    Width w{};
    bool sx = false;
    ValType out = ValType::I32;
    switch (in.op) {
      case Op::I32Load: w = Width::W32; out = ValType::I32; break;
      case Op::I64Load: w = Width::W64; out = ValType::I64; break;
      case Op::F64Load: w = Width::W64; out = ValType::F64; break;
      case Op::I32Load8S: w = Width::W8; sx = true; break;
      case Op::I32Load8U: w = Width::W8; break;
      case Op::I32Load16S: w = Width::W16; sx = true; break;
      case Op::I32Load16U: w = Width::W16; break;
      case Op::I64Load32S:
        w = Width::W32; sx = true; out = ValType::I64; break;
      case Op::I64Load32U: w = Width::W32; out = ValType::I64; break;
      default: SFI_PANIC("not a load");
    }
    uint32_t bytes = w == Width::W64   ? 8
                     : w == Width::W32 ? 4
                     : w == Width::W16 ? 2
                                       : 1;
    Reg idx = popGpr();
    Mem m = heapOperand(idx, static_cast<uint32_t>(in.imm), bytes,
                        /*is_store=*/false,
                        (in.flags & wasm::kBoundsElided) != 0);
    if (out == ValType::F64) {
        Xmm x = allocXmm();
        a_.movsdLoad(x, m);
        freeGpr(idx);
        pushXmm(x, out);
    } else {
        // For sign-extended i32 loads, extension stops at bit 31: use
        // the 32-bit movsx forms, then the value is a clean u32.
        if ((in.op == Op::I32Load8S || in.op == Op::I32Load16S)) {
            a_.load(w, true, idx, m);
            a_.mov(Width::W32, idx, idx);
        } else {
            a_.load(w, sx, idx, m);
        }
        pushGpr(idx, out);
    }
}

void
FunctionCompiler::emitStore(const Instr& in)
{
    Width w{};
    bool is_f64 = false;
    switch (in.op) {
      case Op::I32Store: w = Width::W32; break;
      case Op::I64Store: w = Width::W64; break;
      case Op::F64Store: w = Width::W64; is_f64 = true; break;
      case Op::I32Store8: w = Width::W8; break;
      case Op::I32Store16: w = Width::W16; break;
      default: SFI_PANIC("not a store");
    }
    uint32_t bytes = w == Width::W64   ? 8
                     : w == Width::W32 ? 4
                     : w == Width::W16 ? 2
                                       : 1;
    size_t vpos = vstack_.size() - 1;
    VEntry val = popV();
    Reg idx = popGpr();
    Mem m = heapOperand(idx, static_cast<uint32_t>(in.imm), bytes,
                        /*is_store=*/true,
                        (in.flags & wasm::kBoundsElided) != 0);
    if (is_f64) {
        Xmm x = intoXmm(val, vpos);
        a_.movsdStore(m, x);
        freeXmm(x);
    } else if (val.loc == VEntry::Loc::Const && w != Width::W64) {
        a_.storeImm32(w, m, static_cast<int32_t>(val.imm));
    } else {
        Reg v = intoGpr(val, vpos);
        a_.store(w, m, v);
        freeGpr(v);
    }
    freeGpr(idx);
}

void
FunctionCompiler::emitI32Bin(Op op)
{
    // Constant folding keeps address arithmetic tight.
    if (vstack_.size() >= 2 &&
        vstack_[vstack_.size() - 1].loc == VEntry::Loc::Const &&
        vstack_[vstack_.size() - 2].loc == VEntry::Loc::Const) {
        uint32_t b = static_cast<uint32_t>(popV().imm);
        uint32_t a = static_cast<uint32_t>(popV().imm);
        uint32_t r = 0;
        switch (op) {
          case Op::I32Add: r = a + b; break;
          case Op::I32Sub: r = a - b; break;
          case Op::I32Mul: r = a * b; break;
          case Op::I32And: r = a & b; break;
          case Op::I32Or: r = a | b; break;
          case Op::I32Xor: r = a ^ b; break;
          default: SFI_PANIC("bad fold");
        }
        pushConst(r, ValType::I32);
        return;
    }

    size_t bpos = vstack_.size() - 1;
    VEntry be = popV();
    Reg ra = popGpr();
    AluOp alu{};
    switch (op) {
      case Op::I32Add: alu = AluOp::Add; break;
      case Op::I32Sub: alu = AluOp::Sub; break;
      case Op::I32And: alu = AluOp::And; break;
      case Op::I32Or: alu = AluOp::Or; break;
      case Op::I32Xor: alu = AluOp::Xor; break;
      case Op::I32Mul: {
        Reg rb = intoGpr(be, bpos);
        a_.imul(Width::W32, ra, rb);
        freeGpr(rb);
        pushGpr(ra, ValType::I32);
        return;
      }
      default: SFI_PANIC("bad i32 bin");
    }
    if (be.loc == VEntry::Loc::Const) {
        a_.aluImm(alu, Width::W32, ra, static_cast<int32_t>(be.imm));
    } else if (be.loc == VEntry::Loc::Slot) {
        a_.aluMem(alu, Width::W32, ra, stackSlot(bpos));
    } else {
        a_.alu(alu, Width::W32, ra, be.reg);
        freeGpr(be.reg);
    }
    pushGpr(ra, ValType::I32);
}

void
FunctionCompiler::emitI64Bin(Op op)
{
    size_t bpos = vstack_.size() - 1;
    VEntry be = popV();
    Reg ra = popGpr();
    AluOp alu{};
    switch (op) {
      case Op::I64Add: alu = AluOp::Add; break;
      case Op::I64Sub: alu = AluOp::Sub; break;
      case Op::I64And: alu = AluOp::And; break;
      case Op::I64Or: alu = AluOp::Or; break;
      case Op::I64Xor: alu = AluOp::Xor; break;
      case Op::I64Mul: {
        Reg rb = intoGpr(be, bpos);
        a_.imul(Width::W64, ra, rb);
        freeGpr(rb);
        pushGpr(ra, ValType::I64);
        return;
      }
      default: SFI_PANIC("bad i64 bin");
    }
    if (be.loc == VEntry::Loc::Const &&
        static_cast<int64_t>(be.imm) >= INT32_MIN &&
        static_cast<int64_t>(be.imm) <= INT32_MAX) {
        a_.aluImm(alu, Width::W64, ra, static_cast<int32_t>(be.imm));
    } else if (be.loc == VEntry::Loc::Slot) {
        a_.aluMem(alu, Width::W64, ra, stackSlot(bpos));
    } else {
        Reg rb = intoGpr(be, bpos);
        a_.alu(alu, Width::W64, ra, rb);
        freeGpr(rb);
    }
    pushGpr(ra, ValType::I64);
}

void
FunctionCompiler::emitIntCompare(Op op)
{
    bool is64 = op >= Op::I64Eq && op <= Op::I64GeU;
    Width w = is64 ? Width::W64 : Width::W32;
    size_t bpos = vstack_.size() - 1;
    VEntry be = popV();
    Reg ra = popGpr();
    if (be.loc == VEntry::Loc::Const && !is64) {
        a_.aluImm(AluOp::Cmp, w, ra, static_cast<int32_t>(be.imm));
    } else {
        Reg rb = intoGpr(be, bpos);
        a_.alu(AluOp::Cmp, w, ra, rb);
        freeGpr(rb);
    }
    Cond cc{};
    switch (op) {
      case Op::I32Eq: case Op::I64Eq: cc = Cond::E; break;
      case Op::I32Ne: case Op::I64Ne: cc = Cond::NE; break;
      case Op::I32LtS: case Op::I64LtS: cc = Cond::L; break;
      case Op::I32LtU: case Op::I64LtU: cc = Cond::B; break;
      case Op::I32GtS: case Op::I64GtS: cc = Cond::G; break;
      case Op::I32GtU: case Op::I64GtU: cc = Cond::A; break;
      case Op::I32LeS: case Op::I64LeS: cc = Cond::LE; break;
      case Op::I32LeU: case Op::I64LeU: cc = Cond::BE; break;
      case Op::I32GeS: case Op::I64GeS: cc = Cond::GE; break;
      case Op::I32GeU: case Op::I64GeU: cc = Cond::AE; break;
      default: SFI_PANIC("bad compare");
    }
    a_.setcc(cc, ra);
    a_.movzx8(ra, ra);
    pushGpr(ra, ValType::I32);
}

void
FunctionCompiler::emitDivRem(Op op)
{
    bool is64 = op == Op::I64DivS || op == Op::I64DivU ||
                op == Op::I64RemS || op == Op::I64RemU;
    bool is_signed = op == Op::I32DivS || op == Op::I32RemS ||
                     op == Op::I64DivS || op == Op::I64RemS;
    bool is_rem = op == Op::I32RemS || op == Op::I32RemU ||
                  op == Op::I64RemS || op == Op::I64RemU;
    Width w = is64 ? Width::W64 : Width::W32;

    Reg rb = popGpr();
    Reg ra_entry = popGpr();
    a_.mov(w, Reg::rax, ra_entry);
    freeGpr(ra_entry);

    a_.test(w, rb, rb);
    jccTrap(Cond::E, rt::TrapKind::DivByZero);

    Label done = a_.newLabel();
    if (is_signed) {
        if (is_rem) {
            // Wasm: INT_MIN % -1 == 0 (idiv would fault).
            Label do_div = a_.newLabel();
            a_.aluImm(AluOp::Cmp, w, rb, -1);
            a_.jcc(Cond::NE, do_div);
            a_.movImm32(Reg::rdx, 0);
            a_.jmp(done);
            a_.bind(do_div);
        }
        if (is64)
            a_.cqo();
        else
            a_.cdq();
        // INT_MIN / -1 faults in hardware -> SIGFPE -> IntegerOverflow.
        a_.idiv(w, rb);
    } else {
        a_.movImm32(Reg::rdx, 0);
        a_.div(w, rb);
    }
    a_.bind(done);
    freeGpr(rb);
    Reg out = allocGpr();
    a_.mov(Width::W64, out, is_rem ? Reg::rdx : Reg::rax);
    pushGpr(out, is64 ? ValType::I64 : ValType::I32);
}

void
FunctionCompiler::emitShift(Op op)
{
    bool is64 = op >= Op::I64Shl && op <= Op::I64Rotr;
    Width w = is64 ? Width::W64 : Width::W32;
    ShiftOp so{};
    switch (op) {
      case Op::I32Shl: case Op::I64Shl: so = ShiftOp::Shl; break;
      case Op::I32ShrU: case Op::I64ShrU: so = ShiftOp::Shr; break;
      case Op::I32ShrS: case Op::I64ShrS: so = ShiftOp::Sar; break;
      case Op::I32Rotl: case Op::I64Rotl: so = ShiftOp::Rol; break;
      case Op::I32Rotr: case Op::I64Rotr: so = ShiftOp::Ror; break;
      default: SFI_PANIC("bad shift");
    }
    size_t bpos = vstack_.size() - 1;
    VEntry count = popV();
    Reg ra = popGpr();
    if (count.loc == VEntry::Loc::Const) {
        a_.shiftImm(so, w, ra,
                    static_cast<uint8_t>(count.imm & (is64 ? 63 : 31)));
    } else {
        Reg rc = intoGpr(count, bpos);
        a_.mov(Width::W64, Reg::rcx, rc);
        freeGpr(rc);
        a_.shiftCl(so, w, ra);  // hardware masks the count
    }
    pushGpr(ra, is64 ? ValType::I64 : ValType::I32);
}

void
FunctionCompiler::emitF64Bin(Op op)
{
    size_t bpos = vstack_.size() - 1;
    VEntry be = popV();
    Xmm xb = intoXmm(be, bpos);
    Xmm xa = popXmm();
    switch (op) {
      case Op::F64Add: a_.addsd(xa, xb); break;
      case Op::F64Sub: a_.subsd(xa, xb); break;
      case Op::F64Mul: a_.mulsd(xa, xb); break;
      case Op::F64Div: a_.divsd(xa, xb); break;
      case Op::F64Min: a_.minsd(xa, xb); break;
      case Op::F64Max: a_.maxsd(xa, xb); break;
      default: SFI_PANIC("bad f64 bin");
    }
    freeXmm(xb);
    pushXmm(xa, ValType::F64);
}

void
FunctionCompiler::emitF64Compare(Op op)
{
    size_t bpos = vstack_.size() - 1;
    VEntry be = popV();
    Xmm xb = intoXmm(be, bpos);
    Xmm xa = popXmm();
    Reg out = allocGpr();
    switch (op) {
      case Op::F64Lt:
        a_.ucomisd(xb, xa);
        a_.setcc(Cond::A, out);
        break;
      case Op::F64Le:
        a_.ucomisd(xb, xa);
        a_.setcc(Cond::AE, out);
        break;
      case Op::F64Gt:
        a_.ucomisd(xa, xb);
        a_.setcc(Cond::A, out);
        break;
      case Op::F64Ge:
        a_.ucomisd(xa, xb);
        a_.setcc(Cond::AE, out);
        break;
      case Op::F64Eq: {
        a_.ucomisd(xa, xb);
        a_.setcc(Cond::NP, out);
        a_.setcc(Cond::E, Reg::rax);
        a_.alu(AluOp::And, Width::W8, out, Reg::rax);
        break;
      }
      case Op::F64Ne: {
        a_.ucomisd(xa, xb);
        a_.setcc(Cond::P, out);
        a_.setcc(Cond::NE, Reg::rax);
        a_.alu(AluOp::Or, Width::W8, out, Reg::rax);
        break;
      }
      default:
        SFI_PANIC("bad f64 compare");
    }
    a_.movzx8(out, out);
    freeXmm(xa);
    freeXmm(xb);
    pushGpr(out, ValType::I32);
}

void
FunctionCompiler::emitSelect()
{
    Reg cond = popGpr();
    if (vstack_.back().type == ValType::F64) {
        size_t bpos = vstack_.size() - 1;
        VEntry be = popV();
        Xmm xb = intoXmm(be, bpos);
        Xmm xa = popXmm();
        Label keep = a_.newLabel();
        a_.test(Width::W32, cond, cond);
        a_.jcc(Cond::NE, keep);
        a_.movsd(xa, xb);
        a_.bind(keep);
        freeXmm(xb);
        freeGpr(cond);
        pushXmm(xa, ValType::F64);
        return;
    }
    size_t bpos = vstack_.size() - 1;
    VEntry be = popV();
    Reg rb = intoGpr(be, bpos);
    Reg ra = popGpr();
    ValType t = be.type;
    a_.test(Width::W32, cond, cond);
    a_.cmovcc(Cond::E, Width::W64, ra, rb);  // cond==0 -> b
    freeGpr(rb);
    freeGpr(cond);
    pushGpr(ra, t);
}

void
FunctionCompiler::loadCallArgs(const wasm::FuncType& ft)
{
    // Arguments are the top N vstack entries, all in slots (spillAll ran).
    size_t n = ft.params.size();
    size_t base = vstack_.size() - n;
    size_t int_pos = 0, f64_pos = 0;
    for (size_t j = 0; j < n; j++) {
        Mem slot = stackSlot(base + j);
        if (ft.params[j] == ValType::F64) {
            a_.movsdLoad(static_cast<Xmm>(f64_pos), slot);
            f64_pos++;
        } else {
            a_.load(Width::W64, false, kIntArgRegs[int_pos], slot);
            int_pos++;
        }
    }
    vstack_.resize(base);
}

void
FunctionCompiler::emitCall(const Instr& in)
{
    if (in.a < mod_.numImports()) {
        emitHostCall(in.a);
        return;
    }
    const wasm::FuncType& ft = mod_.typeOfFunc(in.a);
    spillAll();
    loadCallArgs(ft);
    if (cfg_.tieredCalls) {
        // Call through the per-function entry slot so the callee can
        // move between tiers (resolver -> baseline -> optimized) under
        // our feet. rax is not in the GPR pool and the args are already
        // in their convention registers, so it is free scratch here.
        uint32_t d = in.a - mod_.numImports();
        a_.load(Width::W64, false, Reg::rax, ctxField(kOffFuncEntries));
        a_.load(Width::W64, false, Reg::rax,
                Mem::baseDisp(Reg::rax, static_cast<int32_t>(8 * d)));
        a_.callReg(Reg::rax);
    } else {
        a_.call(ms_.funcLabels[in.a - mod_.numImports()]);
    }
    if (!ft.results.empty()) {
        if (ft.results[0] == ValType::F64) {
            Xmm x = allocXmm();
            a_.movsd(x, Xmm::xmm0);
            pushXmm(x, ValType::F64);
        } else {
            Reg r = allocGpr();
            a_.mov(Width::W64, r, Reg::rax);
            pushGpr(r, ft.results[0]);
        }
    }
}

void
FunctionCompiler::emitCallIndirect(const Instr& in)
{
    const wasm::FuncType& ft = mod_.types[in.a];
    // Pop the table index into rax (survives spillAll).
    Reg idx = popGpr();
    a_.mov(Width::W32, Reg::rax, idx);
    freeGpr(idx);
    spillAll();

    a_.aluMem(AluOp::Cmp, Width::W64, Reg::rax, ctxField(kOffTableSize));
    jccTrap(Cond::AE, rt::TrapKind::IndirectCallOutOfRange);
    a_.load(Width::W64, false, Reg::r10, ctxField(kOffTableTypeIds));
    a_.load(Width::W64, false, Reg::r10,
            Mem::baseIndex(Reg::r10, Reg::rax, 8, 0));
    a_.aluImm(AluOp::Cmp, Width::W64, Reg::r10,
              static_cast<int32_t>(in.a));
    jccTrap(Cond::NE, rt::TrapKind::IndirectCallTypeMismatch);
    a_.load(Width::W64, false, Reg::r11, ctxField(kOffTableEntries));
    a_.load(Width::W64, false, Reg::r11,
            Mem::baseIndex(Reg::r11, Reg::rax, 8, 0));

    loadCallArgs(ft);
    if (cfg_.cfi == CfiMode::Lfi) {
        // Mask the indirect target into the code region (§4.3).
        a_.alu(AluOp::Sub, Width::W64, Reg::r11, kCodeReg);
        a_.mov(Width::W32, Reg::r11, Reg::r11);
        a_.alu(AluOp::Add, Width::W64, Reg::r11, kCodeReg);
    }
    a_.callReg(Reg::r11);
    if (!ft.results.empty()) {
        if (ft.results[0] == ValType::F64) {
            Xmm x = allocXmm();
            a_.movsd(x, Xmm::xmm0);
            pushXmm(x, ValType::F64);
        } else {
            Reg r = allocGpr();
            a_.mov(Width::W64, r, Reg::rax);
            pushGpr(r, ft.results[0]);
        }
    }
}

void
FunctionCompiler::emitHostCall(uint32_t import_idx)
{
    const wasm::FuncType& ft = mod_.typeOfFunc(import_idx);
    spillAll();
    size_t n = ft.params.size();
    size_t base = vstack_.size() - n;
    for (size_t j = 0; j < n; j++) {
        a_.load(Width::W64, false, Reg::rax, stackSlot(base + j));
        a_.store(Width::W64,
                 ctxField(kOffHostArgs + 8 * static_cast<uint32_t>(j)),
                 Reg::rax);
    }
    vstack_.resize(base);
    a_.load(Width::W64, false, Reg::rdi, ctxField(kOffRuntimeData));
    a_.movImm32(Reg::rsi, import_idx);
    a_.lea(Width::W64, Reg::rdx, ctxField(kOffHostArgs));
    a_.movImm32(Reg::rcx, static_cast<uint32_t>(n));
    a_.load(Width::W64, false, Reg::rax, ctxField(kOffHostFn));
    a_.callReg(Reg::rax);
    if (!ft.results.empty()) {
        if (ft.results[0] == ValType::F64) {
            Xmm x = allocXmm();
            a_.movqToXmm(x, Reg::rax);
            pushXmm(x, ValType::F64);
        } else {
            Reg r = allocGpr();
            a_.mov(Width::W64, r, Reg::rax);
            pushGpr(r, ft.results[0]);
        }
    }
}

void
FunctionCompiler::emitRuntimeCall3(uint32_t fn_off, int nargs)
{
    // (rdi = runtimeData, rsi, rdx, rcx = up to 3 popped operands).
    spillAll();
    size_t base = vstack_.size() - static_cast<size_t>(nargs);
    static constexpr Reg kSlots[3] = {Reg::rsi, Reg::rdx, Reg::rcx};
    for (int j = 0; j < nargs; j++) {
        a_.load(Width::W64, false, kSlots[j],
                stackSlot(base + static_cast<size_t>(j)));
    }
    vstack_.resize(base);
    a_.load(Width::W64, false, Reg::rdi, ctxField(kOffRuntimeData));
    a_.load(Width::W64, false, Reg::rax, ctxField(fn_off));
    a_.callReg(Reg::rax);
    if (fn_off == kOffGrowFn) {
        Reg r = allocGpr();
        a_.mov(Width::W64, r, Reg::rax);
        pushGpr(r, ValType::I32);
    }
}

/**
 * Emits the generic and the typed direct entry trampolines. Runs after
 * every function body so the prologue can be trimmed to the register
 * contract: the callee-saved registers the allocator actually handed
 * out (ModuleState::gprAllocated) plus the pins the stub itself must
 * establish (%r14 ctx always; %r15 heap base / %r13 code base when
 * pinned). With config.fullSaveEntry the legacy shape is emitted
 * instead — an rbp frame plus the full callee-saved set — so the seed
 * transition cost stays measurable on identical sandbox code.
 */
void
emitEntryStubs(ModuleState& ms, CompiledModule& out)
{
    Assembler& a = ms.asm_;
    const CompilerConfig& cfg = ms.config;

    std::vector<Reg> saves;
    if (cfg.fullSaveEntry) {
        saves = {Reg::rbx, Reg::r12, Reg::r13, Reg::r14, Reg::r15};
    } else {
        auto want = [&](Reg r, bool stub_writes) {
            if (stub_writes || ms.gprAllocated[static_cast<size_t>(r)])
                saves.push_back(r);
        };
        want(Reg::rbx, false);
        want(Reg::r12, false);
        want(kCodeReg, cfg.cfi == CfiMode::Lfi);
        want(kCtxReg, true);
        want(kHeapReg, cfg.needsHeapBaseReg());
    }
    for (Reg r : saves)
        out.entrySavedRegs |= 1u << static_cast<uint32_t>(r);

    const bool frame = cfg.fullSaveEntry;
    // The callee sees rsp ≡ 0 (mod 16) at its first instruction only if
    // ret-addr + frame + pushes + pad total a multiple of 16 at the
    // callReg below.
    const size_t pushed = saves.size() + (frame ? 1 : 0);
    const bool pad = pushed % 2 == 0;

    auto prologue = [&] {
        if (frame) {
            a.push(Reg::rbp);
            a.mov(Width::W64, Reg::rbp, Reg::rsp);
        }
        for (Reg r : saves)
            a.push(r);
        if (pad)
            a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 8);
    };
    auto pins = [&] {
        if (cfg.needsHeapBaseReg())
            a.load(Width::W64, false, kHeapReg, ctxField(kOffMemBase));
        if (cfg.cfi == CfiMode::Lfi)
            a.load(Width::W64, false, kCodeReg, ctxField(kOffCodeBase));
    };
    auto epilogue = [&] {
        a.movqFromXmm(Reg::rdx, Xmm::xmm0);  // EntryResult.f64Bits
        if (pad)
            a.aluImm(AluOp::Add, Width::W64, Reg::rsp, 8);
        for (auto it = saves.rbegin(); it != saves.rend(); ++it)
            a.pop(*it);
        if (frame)
            a.pop(Reg::rbp);
        a.ret();
    };

    // --- generic entry trampoline ---
    // EntryResult entry(JitContext* ctx /*rdi*/, const void* fn /*rsi*/,
    //                   const uint64_t* args /*rdx*/)
    out.entryOffset = a.size();
    prologue();
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);  // target fn
    a.mov(Width::W64, Reg::r10, Reg::rdx);  // args array
    pins();
    a.load(Width::W64, false, Reg::rdi, Mem::baseDisp(Reg::r10, 0));
    a.load(Width::W64, false, Reg::rsi, Mem::baseDisp(Reg::r10, 8));
    a.load(Width::W64, false, Reg::rdx, Mem::baseDisp(Reg::r10, 16));
    a.load(Width::W64, false, Reg::rcx, Mem::baseDisp(Reg::r10, 24));
    a.load(Width::W64, false, Reg::r8, Mem::baseDisp(Reg::r10, 32));
    a.load(Width::W64, false, Reg::r9, Mem::baseDisp(Reg::r10, 40));
    a.movsdLoad(Xmm::xmm0, Mem::baseDisp(Reg::r10, 48));
    a.movsdLoad(Xmm::xmm1, Mem::baseDisp(Reg::r10, 56));
    a.movsdLoad(Xmm::xmm2, Mem::baseDisp(Reg::r10, 64));
    a.movsdLoad(Xmm::xmm3, Mem::baseDisp(Reg::r10, 72));
    a.callReg(Reg::r11);
    epilogue();
    out.entrySize = a.size() - out.entryOffset;

    // --- direct entry trampoline (springboard elimination) ---
    // EntryResult direct(JitContext* ctx /*rdi*/, const void* fn /*rsi*/,
    //                    uint64_t a0 /*rdx*/, uint64_t a1 /*rcx*/,
    //                    uint64_t a2 /*r8*/, uint64_t a3 /*r9*/)
    // Integer args shift down two ABI slots into the internal
    // convention; no marshal array is touched.
    out.directEntryOffset = a.size();
    prologue();
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);  // target fn
    a.mov(Width::W64, Reg::rdi, Reg::rdx);  // a0
    a.mov(Width::W64, Reg::rsi, Reg::rcx);  // a1
    a.mov(Width::W64, Reg::rdx, Reg::r8);   // a2
    a.mov(Width::W64, Reg::rcx, Reg::r9);   // a3
    pins();
    a.callReg(Reg::r11);
    epilogue();
    out.directEntrySize = a.size() - out.directEntryOffset;
}

/** Emits every trap stub a compiled region requested. */
void
emitTrapStubs(ModuleState& ms)
{
    Assembler& a = ms.asm_;
    for (size_t k = 0; k < 16; k++) {
        if (!ms.trapStubs[k])
            continue;
        a.bind(*ms.trapStubs[k]);
        a.load(Width::W64, false, Reg::rdi, ctxField(kOffRuntimeData));
        a.movImm32(Reg::rsi, static_cast<uint32_t>(k));
        a.load(Width::W64, false, Reg::rax, ctxField(kOffTrapFn));
        a.callReg(Reg::rax);
        a.ud2();  // trapFn never returns
    }
}

}  // namespace

const char*
name(MemStrategy s)
{
    switch (s) {
      case MemStrategy::Unsandboxed: return "unsandboxed";
      case MemStrategy::BaseReg: return "base-reg";
      case MemStrategy::Segue: return "segue";
      case MemStrategy::SegueLoadsOnly: return "segue-loads-only";
      case MemStrategy::BoundsCheck: return "bounds-check";
      case MemStrategy::SegueBounds: return "segue-bounds";
    }
    return "?";
}

const char*
name(CfiMode m)
{
    return m == CfiMode::Lfi ? "lfi" : "none";
}

Result<CompiledModule>
compile(const wasm::Module& module, const CompilerConfig& config)
{
    if (auto st = wasm::validate(module); !st)
        return Result<CompiledModule>::error("validation: " + st.message());

    ModuleState ms;
    ms.module = &module;
    ms.config = config;
    Assembler& a = ms.asm_;
    // The machine-level third of the optimizer (dead movs, redundant
    // zero-extensions, the xor-zero idiom); the IR passes run per
    // function below. Safe for the trampoline/stubs too — every
    // rewrite preserves architectural state.
    a.setPeephole(config.optimize);

    for (size_t i = 0; i < module.functions.size(); i++)
        ms.funcLabels.push_back(a.newLabel());

    CompiledModule out;
    out.config = config;

    // --- functions ---
    // Emitted first: the entry trampolines go last so their prologues
    // can preserve exactly the callee-saved registers the bodies were
    // observed to allocate (emitEntryStubs).
    for (size_t i = 0; i < module.functions.size(); i++) {
        a.alignTo(16);
        a.bind(ms.funcLabels[i]);
        uint64_t start = a.size();
        out.funcOffsets.push_back(start);

        wasm::Function transformed;
        const wasm::Function* src = &module.functions[i];
        if (config.vectorizeBulkLoops &&
            !config.segueStores()) {
            transformed = vectorizeBulkLoops(module.functions[i]);
            src = &transformed;
        }
        if (config.optimize) {
            // After vectorization (which pattern-matches the original
            // loop shapes), before emission.
            transformed = optimizeFunction(*src, module, config,
                                           &out.optStats);
            src = &transformed;
        }
        ms.currentDefinedIdx = static_cast<uint32_t>(i);
        FunctionCompiler fc(ms, *src);
        fc.compile();
        out.funcCodeSizes.push_back(a.size() - start);
    }

    // --- trap stubs ---
    emitTrapStubs(ms);

    // --- entry stubs (generic + typed direct) ---
    emitEntryStubs(ms, out);

    out.totalCodeBytes = a.size();
    out.optStats.peepMovsDropped = a.peepStats().movsDropped;
    out.optStats.peepZextsDropped = a.peepStats().zextsDropped;
    out.optStats.peepXorZeros = a.peepStats().xorZeros;
    out.optStats.peepBytesSaved = a.peepStats().bytesSaved;
    out.minMemBytes =
        static_cast<uint64_t>(module.memory.minPages) * 64 * 1024;
    auto code = x64::ExecCode::publish(a.code());
    if (!code)
        return Result<CompiledModule>::error(code.message());
    out.code = std::move(*code);
    return out;
}

Result<CompiledFunction>
compileFunction(const wasm::Module& module, uint32_t defined_idx,
                const CompilerConfig& config)
{
    // The module is validated once by the tiered runtime before any
    // per-function compile; re-validating the whole module for every
    // lazy function would turn cold-start back into O(module²).
    SFI_CHECK_MSG(config.tieredCalls,
                  "per-function compilation requires tieredCalls: the "
                  "blob must be position-independent (no rel32 "
                  "intra-module calls)");
    SFI_CHECK(defined_idx < module.functions.size());

    ModuleState ms;
    ms.module = &module;
    ms.config = config;
    ms.currentDefinedIdx = defined_idx;
    Assembler& a = ms.asm_;
    a.setPeephole(config.optimize);

    CompiledFunction out;
    wasm::Function transformed;
    const wasm::Function* src = &module.functions[defined_idx];
    if (config.vectorizeBulkLoops && !config.segueStores()) {
        transformed = vectorizeBulkLoops(*src);
        src = &transformed;
    }
    if (config.optimize) {
        transformed = optimizeFunction(*src, module, config,
                                       &out.optStats);
        src = &transformed;
    }
    FunctionCompiler fc(ms, *src);
    fc.compile();
    out.bodySize = a.size();

    // Private trap stubs keep the blob position-independent: every
    // out-of-blob transfer is ctx-indirect (trapFn / funcEntries /
    // hostFn), so the bytes can live at any cache address.
    emitTrapStubs(ms);
    out.optStats.peepMovsDropped = a.peepStats().movsDropped;
    out.optStats.peepZextsDropped = a.peepStats().zextsDropped;
    out.optStats.peepXorZeros = a.peepStats().xorZeros;
    out.optStats.peepBytesSaved = a.peepStats().bytesSaved;
    out.bytes = a.code();
    return out;
}

Result<TierStubs>
compileTierStubs(const wasm::Module& module, const CompilerConfig& config)
{
    SFI_CHECK(config.tieredCalls);
    ModuleState ms;
    ms.module = &module;
    ms.config = config;
    Assembler& a = ms.asm_;
    // Canonical shapes: the tier-thunk verifier pattern-matches these
    // stubs instruction by instruction, so keep the peephole out.
    a.setPeephole(false);

    // Entry trampolines. Lazy compilation makes the per-module register
    // contract unknowable up front (bodies compile after instances
    // already hold the entry pointer), so claim every pool callee-saved
    // register and let emitEntryStubs derive the conservative save set.
    ms.gprAllocated[static_cast<size_t>(Reg::rbx)] = true;
    ms.gprAllocated[static_cast<size_t>(Reg::r12)] = true;
    ms.gprAllocated[static_cast<size_t>(Reg::r13)] = true;
    ms.gprAllocated[static_cast<size_t>(Reg::r15)] = true;
    CompiledModule entry;
    emitEntryStubs(ms, entry);

    TierStubs out;
    out.entryOffset = entry.entryOffset;
    out.entrySize = entry.entrySize;
    out.directEntryOffset = entry.directEntryOffset;
    out.directEntrySize = entry.directEntrySize;
    out.entrySavedRegs = entry.entrySavedRegs;

    size_t n = module.functions.size();
    for (size_t i = 0; i < n; i++) {
        int32_t slot = static_cast<int32_t>(8 * i);

        // Dispatch stub: a stable address that always lands on the
        // function's *current* tier. Table entries, DirectEntry, and
        // host-cached pointers use it instead of the raw slot value,
        // which would go stale across tier-up.
        a.alignTo(16);
        out.dispatchOffsets.push_back(a.size());
        a.load(Width::W64, false, Reg::r11, ctxField(kOffFuncEntries));
        a.load(Width::W64, false, Reg::r11,
               Mem::baseDisp(Reg::r11, slot));
        a.jmpReg(Reg::r11);
        out.dispatchSizes.push_back(a.size() - out.dispatchOffsets.back());

        // Resolver stub: the initial entry-slot value. Preserves the
        // internal argument registers, asks ctx->tierFn to compile (or
        // cache-hit) the function, then tail-jumps to the returned
        // entry with the arguments restored. At the callReg the stack
        // displacement from function entry is 8 (ret) + 48 (pushes) +
        // 40 = 96 ≡ 0 (mod 16), keeping the C ABI aligned.
        a.alignTo(16);
        out.resolverOffsets.push_back(a.size());
        a.push(Reg::rdi);
        a.push(Reg::rsi);
        a.push(Reg::rdx);
        a.push(Reg::rcx);
        a.push(Reg::r8);
        a.push(Reg::r9);
        a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 40);
        for (int x = 0; x < 4; x++)
            a.movsdStore(Mem::baseDisp(Reg::rsp, 8 * x),
                         static_cast<Xmm>(x));
        a.load(Width::W64, false, Reg::rdi, ctxField(kOffRuntimeData));
        a.movImm32(Reg::rsi, static_cast<uint32_t>(i));
        a.load(Width::W64, false, Reg::rax, ctxField(kOffTierFn));
        a.callReg(Reg::rax);
        for (int x = 0; x < 4; x++)
            a.movsdLoad(static_cast<Xmm>(x),
                        Mem::baseDisp(Reg::rsp, 8 * x));
        a.aluImm(AluOp::Add, Width::W64, Reg::rsp, 40);
        a.pop(Reg::r9);
        a.pop(Reg::r8);
        a.pop(Reg::rcx);
        a.pop(Reg::rdx);
        a.pop(Reg::rsi);
        a.pop(Reg::rdi);
        a.jmpReg(Reg::rax);
        out.resolverSizes.push_back(a.size() - out.resolverOffsets.back());

        // Interpreter thunk: marshals the internal-convention argument
        // registers into a frame array and routes to ctx->interpFn.
        // The tier state machine points a function's slot here when
        // its JIT compile (or its verification) fails — fail-closed
        // degradation — or when the tier options pin it to the
        // interpreter. 88 frame bytes: 8 + 88 = 96 ≡ 0 (mod 16) at the
        // callReg, and 11 slots cover the ≤10-parameter convention.
        const wasm::FuncType& ft =
            module.types[module.functions[i].typeIdx];
        a.alignTo(16);
        out.interpOffsets.push_back(a.size());
        a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 88);
        size_t int_pos = 0, f64_pos = 0;
        for (size_t j = 0; j < ft.params.size(); j++) {
            Mem m = Mem::baseDisp(Reg::rsp,
                                  static_cast<int32_t>(8 * j));
            if (ft.params[j] == ValType::F64)
                a.movsdStore(m, static_cast<Xmm>(f64_pos++));
            else
                a.store(Width::W64, m, kIntArgRegs[int_pos++]);
        }
        a.load(Width::W64, false, Reg::rdi, ctxField(kOffRuntimeData));
        a.movImm32(Reg::rsi, static_cast<uint32_t>(i));
        a.lea(Width::W64, Reg::rdx, Mem::baseDisp(Reg::rsp, 0));
        a.load(Width::W64, false, Reg::rax, ctxField(kOffInterpFn));
        a.callReg(Reg::rax);
        if (!ft.results.empty() && ft.results[0] == ValType::F64)
            a.movqToXmm(Xmm::xmm0, Reg::rax);
        a.aluImm(AluOp::Add, Width::W64, Reg::rsp, 88);
        a.ret();
        out.interpSizes.push_back(a.size() - out.interpOffsets.back());
    }

    out.bytes = a.code();
    return out;
}

}  // namespace sfi::jit
