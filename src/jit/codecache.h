/**
 * @file
 * Process-wide verified code cache for tiered execution.
 *
 * FaaS pools instantiate the same image many times; without sharing,
 * every pool slot pays the full compile + verify cost on its first
 * request (the cold-start tax). The cache keys machine code on
 * (module content hash, defined function index, compiler-config
 * fingerprint), so the second instantiation of an image compiles zero
 * functions — it reuses already-verified blobs.
 *
 * Security contract (verification at fill): compilation happens
 * *inside* the cache, and every blob is proven by the static verifier
 * (verify/checker.h) before it is published into the executable arena.
 * A caller can never insert bytes of its own, and a verification
 * failure is a hard error — the blob is not published and the miss is
 * reported (fail closed). `audit()` re-proves every published blob
 * from its stored metadata, so `sfi-verify --cache-audit` can check
 * the whole cache after the fact.
 *
 * Publication: one 256 MiB PROT_NONE reservation; each blob gets a
 * page-aligned bump allocation that is committed read-write, filled,
 * then flipped read-exec. Page alignment means a new blob's fill never
 * toggles protection on a page some already-published blob occupies —
 * W^X holds without double-mapping, and concurrent executors of old
 * blobs are never faulted. Blobs are immortal (never unpublished), so
 * readers need no locks and pointers into the arena stay valid for the
 * process lifetime.
 */
#ifndef SFIKIT_JIT_CODECACHE_H_
#define SFIKIT_JIT_CODECACHE_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "base/os_mem.h"
#include "base/result.h"
#include "jit/compiler.h"
#include "jit/strategy.h"
#include "wasm/module.h"

namespace sfi::jit {

class CodeCache
{
  public:
    /** The process-wide cache. */
    static CodeCache& instance();

    /** One published per-function blob (body + private trap stubs). */
    struct FuncResult
    {
        const uint8_t* base = nullptr;  ///< executable entry address
        uint64_t size = 0;              ///< total blob bytes
        uint64_t bodySize = 0;          ///< body proper (stubs follow)
        bool hit = false;               ///< served without compiling
        uint64_t verifyNs = 0;          ///< verifier time (0 on a hit)
    };

    /** One published per-module stub set. */
    struct StubsResult
    {
        const uint8_t* base = nullptr;  ///< blob base in the arena
        /**
         * Offsets/sizes within the blob. Points into the cache entry —
         * entries are immortal, so the pointer never dangles.
         */
        const TierStubs* meta = nullptr;
        bool hit = false;
        uint64_t verifyNs = 0;
    };

    /**
     * Returns the verified machine code of defined function
     * @p defined_idx compiled under @p config, compiling + verifying +
     * publishing on miss. @p module_hash must be moduleHash(@p module)
     * (possibly salted when sharing is off): a wrong hash can only
     * cause the wrong *verified* blob to be shared, never unverified
     * bytes to run. @p min_mem_bytes re-proves statically-elided
     * bounds checks (CompiledModule::minMemBytes semantics).
     */
    Result<FuncResult> getFunction(uint64_t module_hash,
                                   uint32_t defined_idx,
                                   const wasm::Module& module,
                                   const CompilerConfig& config,
                                   uint64_t min_mem_bytes);

    /**
     * Returns the verified stub set (entry trampolines under
     * entry.contract, dispatch/resolver/interp thunks under
     * tier.thunk) for @p module under @p config.
     */
    Result<StubsResult> getStubs(uint64_t module_hash,
                                 const wasm::Module& module,
                                 const CompilerConfig& config);

    /**
     * Arena span for fault attribution: a tiered instance's
     * ActiveExecution code range is the whole arena, since its slots
     * may point anywhere inside it.
     */
    const uint8_t* arenaBase() const { return arena_.base(); }
    uint64_t arenaSize() const { return arena_.size(); }

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t fills = 0;
        uint64_t verifyFailures = 0;
        uint64_t verifyNs = 0;        ///< total fill-time verifier ns
        uint64_t publishedBytes = 0;
        uint64_t entries = 0;
    };

    Stats stats() const;

    /**
     * Re-proves every published blob from stored metadata (function
     * blobs via checkFunction, stub blobs via checkEntryStub +
     * checkTierStub). Returns the number of blobs proven, or the first
     * failure's report summary as an error.
     */
    Result<uint64_t> audit() const;

    /**
     * Content hash of @p module (FNV-1a over a canonical
     * serialization). Excludes Instr::flags (optimizer-derived, not
     * content) and function names (diagnostics): two modules that
     * compile identically hash identically.
     */
    static uint64_t moduleHash(const wasm::Module& module);

    /** Fingerprint of every codegen-relevant CompilerConfig field. */
    static uint64_t configFingerprint(const CompilerConfig& config);

  private:
    CodeCache() = default;

    struct Entry
    {
        enum class Kind : uint8_t { Function, Stubs };
        Kind kind = Kind::Function;
        uint64_t offset = 0;  ///< blob offset in the arena
        uint64_t size = 0;
        uint64_t bodySize = 0;     ///< functions only
        uint64_t minMemBytes = 0;  ///< functions only
        CompilerConfig cfg;        ///< for audit re-verification
        TierStubs meta;            ///< stubs only (offsets/sizes)
        uint64_t verifyNs = 0;
    };

    /** Key: {module hash, config fingerprint, (idx << 1) | isFunc}. */
    using Key = std::array<uint64_t, 3>;

    Status ensureArena();
    /** Commits, fills, and seals one page-aligned blob. */
    Result<uint64_t> publish(const std::vector<uint8_t>& bytes);
    Status verifyEntry(const Entry& e) const;

    mutable std::mutex mu_;
    Reservation arena_;
    uint64_t cursor_ = 0;
    std::map<Key, Entry> entries_;
    Stats stats_;
};

}  // namespace sfi::jit

#endif  // SFIKIT_JIT_CODECACHE_H_
