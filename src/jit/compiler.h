/**
 * @file
 * Single-pass baseline JIT compiler: Wasm-subset IR -> x86-64, with
 * pluggable SFI strategies (strategy.h).
 *
 * Design notes:
 *  - %r14 is pinned to the JitContext; %r15 to the heap base (except in
 *    full-Segue modes, where %r15 joins the allocatable pool — Segue's
 *    freed-GPR benefit, §3.1); %r13 to the code base in LFI mode (§4.3).
 *  - Values live on a virtual stack cached in registers; everything is
 *    spilled to canonical frame slots at control-flow boundaries and
 *    calls, so merge points need no reconciliation (flat-stack
 *    discipline, module.h).
 *  - One code buffer per module; intra-module calls are rel32; traps
 *    funnel through per-module stubs into ctx->trapFn.
 */
#ifndef SFIKIT_JIT_COMPILER_H_
#define SFIKIT_JIT_COMPILER_H_

#include <cstdint>
#include <vector>

#include "base/result.h"
#include "jit/context.h"
#include "jit/optimizer.h"
#include "jit/strategy.h"
#include "wasm/module.h"
#include "x64/exec_code.h"

namespace sfi::jit {

/** A compiled module: executable code + metadata. */
struct CompiledModule
{
    x64::ExecCode code;
    CompilerConfig config;

    /** Offset of each defined function's entry (index = defined index). */
    std::vector<uint64_t> funcOffsets;
    /** Machine-code bytes per defined function (Table 2 measurements). */
    std::vector<uint64_t> funcCodeSizes;
    /**
     * Offset/size of the generic entry trampoline. The entry stubs are
     * emitted after the function bodies and trap stubs so their
     * prologues can save exactly the callee-saved registers the
     * module's code was observed to allocate (the register contract);
     * the verifier proves them separately under rule entry.contract.
     */
    uint64_t entryOffset = 0;
    uint64_t entrySize = 0;
    /** Offset/size of the typed direct-entry trampoline. */
    uint64_t directEntryOffset = 0;
    uint64_t directEntrySize = 0;
    /**
     * Callee-saved registers the entry stubs push (bit = hw register
     * number). Always includes %r14; %r15/%r13 when pinned; %rbx/%r12
     * (and unpinned %r13/%r15) only when some function allocated them.
     */
    uint32_t entrySavedRegs = 0;
    /** Total bytes of emitted code. */
    uint64_t totalCodeBytes = 0;
    /**
     * Initial linear-memory size in bytes (minPages * 64 KiB). The
     * static verifier uses it to re-prove statically-elided bounds
     * checks: ctx->memSize only ever grows, so an address below the
     * initial size stays in bounds for the whole run.
     */
    uint64_t minMemBytes = 0;
    /** Optimizer counters, summed over all functions (zero if off). */
    OptStats optStats;

    /**
     * Result of the generic entry trampoline: integer results arrive in
     * intBits (rax), f64 results in f64Bits (rdx, mirrored from xmm0).
     * The caller picks by signature.
     */
    struct EntryResult
    {
        uint64_t intBits;
        uint64_t f64Bits;
    };

    /**
     * Entry trampoline. args: 10 slots — [0..5] integer params in
     * order, [6..9] f64 params (as bit patterns) in order.
     */
    using EntryFn = EntryResult (*)(JitContext* ctx, const void* fn,
                                    const uint64_t* args);

    EntryFn
    entry() const
    {
        return code.entry<EntryFn>(entryOffset);
    }

    /**
     * Typed direct entry: up to four integer arguments arrive in
     * registers, no marshal-slot array. Springboard elimination for
     * known-signature exports — callers with >4 or non-integer params
     * must use the generic trampoline. f64 results still arrive in
     * f64Bits (mirrored from xmm0).
     */
    using DirectEntryFn = EntryResult (*)(JitContext* ctx, const void* fn,
                                          uint64_t a0, uint64_t a1,
                                          uint64_t a2, uint64_t a3);

    DirectEntryFn
    directEntry() const
    {
        return code.entry<DirectEntryFn>(directEntryOffset);
    }

    /** Native address of defined function @p defined_idx. */
    const void*
    funcAddr(uint32_t defined_idx) const
    {
        return code.base() + funcOffsets.at(defined_idx);
    }
};

/** Compiles a validated module under @p config. */
Result<CompiledModule> compile(const wasm::Module& module,
                               const CompilerConfig& config);

/**
 * One position-independent compiled function (tiered execution).
 *
 * The blob is self-contained: intra-module calls go through
 * ctx->funcEntries, traps through private trap stubs appended after the
 * body, host/runtime calls through ctx fields — no rel32 leaves the
 * buffer, so the bytes can be published at any code-cache address.
 * Produced unpublished (plain bytes): the code cache verifies them
 * fail-closed before they ever become executable.
 */
struct CompiledFunction
{
    /** Raw machine code: body followed by its private trap stubs. */
    std::vector<uint8_t> bytes;
    /** Bytes of the body proper (trap stubs start here). */
    uint64_t bodySize = 0;
    /** Optimizer counters (zero for baseline-tier compiles). */
    OptStats optStats;
};

/**
 * Compiles defined function @p defined_idx of an already-validated
 * @p module under @p config (which must set tieredCalls).
 */
Result<CompiledFunction> compileFunction(const wasm::Module& module,
                                         uint32_t defined_idx,
                                         const CompilerConfig& config);

/**
 * The per-module stub set for tiered execution: entry trampolines with
 * a conservative register contract plus three thunks per defined
 * function. Emitted once per (module, config) — the code cache shares
 * it across every instance of the image.
 */
struct TierStubs
{
    std::vector<uint8_t> bytes;
    /** Generic/direct entry trampolines (CompiledModule layout). */
    uint64_t entryOffset = 0;
    uint64_t entrySize = 0;
    uint64_t directEntryOffset = 0;
    uint64_t directEntrySize = 0;
    uint32_t entrySavedRegs = 0;
    /**
     * Dispatch stubs: stable per-function addresses that forward to
     * the current ctx->funcEntries slot. Used for table entries,
     * DirectEntry, and any host-cached pointer — caching a raw slot
     * value would go stale across tier-up.
     */
    std::vector<uint64_t> dispatchOffsets, dispatchSizes;
    /**
     * Resolver stubs: initial slot values. Preserve the argument
     * registers, call ctx->tierFn to compile the function, tail-jump
     * to the result.
     */
    std::vector<uint64_t> resolverOffsets, resolverSizes;
    /** Interpreter-fallback thunks routing to ctx->interpFn. */
    std::vector<uint64_t> interpOffsets, interpSizes;
};

/** Emits the tiered stub set for @p module (config.tieredCalls). */
Result<TierStubs> compileTierStubs(const wasm::Module& module,
                                   const CompilerConfig& config);

}  // namespace sfi::jit

#endif  // SFIKIT_JIT_COMPILER_H_
