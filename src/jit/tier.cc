#include "jit/tier.h"

#include <chrono>

#include "base/logging.h"

namespace sfi::jit {

namespace {

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Salt for useCodeCache=false: a per-TieredModule unique hash. */
uint64_t
nextSalt()
{
    static std::atomic<uint64_t> counter{0};
    uint64_t n = counter.fetch_add(1, std::memory_order_relaxed) + 1;
    // SplitMix64 finalizer: spread the counter over the hash space so
    // salted keys cannot collide with content hashes in practice.
    n ^= n >> 30;
    n *= 0xbf58476d1ce4e5b9ull;
    n ^= n >> 27;
    n *= 0x94d049bb133111ebull;
    n ^= n >> 31;
    return n;
}

}  // namespace

static_assert(sizeof(std::atomic<const void*>) == sizeof(const void*),
              "entry slots must be plain pointer-sized for JIT loads");

Result<std::unique_ptr<TieredModule>>
TieredModule::create(const wasm::Module& module,
                     const CompilerConfig& config,
                     const TierOptions& opts)
{
    using R = Result<std::unique_ptr<TieredModule>>;
    if (config.cfi != CfiMode::None)
        return R::error(
            "tiered execution requires CfiMode::None: entry-slot "
            "values are trusted runtime pointers, not maskable "
            "sandbox addresses");

    std::unique_ptr<TieredModule> tm(new TieredModule(module, opts));

    tm->baseCfg_ = config;
    tm->baseCfg_.tieredCalls = true;
    tm->baseCfg_.tierCounters = true;
    tm->baseCfg_.optimize = false;
    tm->baseCfg_.vectorizeBulkLoops = false;

    tm->optCfg_ = config;
    tm->optCfg_.tieredCalls = true;
    tm->optCfg_.tierCounters = false;

    tm->hash_ = CodeCache::moduleHash(module);
    if (!opts.useCodeCache)
        tm->hash_ ^= nextSalt();
    tm->minMemBytes_ =
        static_cast<uint64_t>(module.memory.minPages) * 65536;

    // The stub set is shared between both tiers (the thunks only read
    // context fields both configs lay out identically); key it on the
    // baseline fingerprint.
    auto stubs = CodeCache::instance().getStubs(tm->hash_, module,
                                                tm->baseCfg_);
    if (!stubs.isOk())
        return R::error(stubs.message());
    tm->stubsBase_ = stubs->base;
    tm->stubMeta_ = stubs->meta;
    if (stubs->hit)
        tm->statCacheHits_.fetch_add(1, std::memory_order_relaxed);
    tm->statVerifyNs_.fetch_add(stubs->verifyNs,
                                std::memory_order_relaxed);

    size_t n = module.functions.size();
    tm->slots_ =
        std::make_unique<std::atomic<const void*>[]>(n ? n : 1);
    tm->counters_ = std::make_unique<uint64_t[]>(n ? n : 1);
    tm->states_.assign(n, opts.forceInterp ? FuncState::Interp
                                           : FuncState::Unresolved);
    tm->tierFailed_.assign(n, 0);
    for (size_t i = 0; i < n; i++) {
        tm->counters_[i] = 0;
        const void* initial =
            opts.forceInterp
                ? tm->interpThunkAddr(static_cast<uint32_t>(i))
                : static_cast<const void*>(
                      tm->stubsBase_ +
                      tm->stubMeta_->resolverOffsets[i]);
        tm->slots_[i].store(initial, std::memory_order_release);
    }
    return R(std::move(tm));
}

const void*
TieredModule::interpThunkAddr(uint32_t defined_idx) const
{
    return stubsBase_ + stubMeta_->interpOffsets[defined_idx];
}

const void*
TieredModule::dispatchAddr(uint32_t defined_idx) const
{
    return stubsBase_ + stubMeta_->dispatchOffsets[defined_idx];
}

CompiledModule::EntryFn
TieredModule::entry() const
{
    return reinterpret_cast<CompiledModule::EntryFn>(
        const_cast<uint8_t*>(stubsBase_ + stubMeta_->entryOffset));
}

CompiledModule::DirectEntryFn
TieredModule::directEntry() const
{
    return reinterpret_cast<CompiledModule::DirectEntryFn>(
        const_cast<uint8_t*>(stubsBase_ +
                             stubMeta_->directEntryOffset));
}

void
TieredModule::setSlot(uint32_t defined_idx, const void* entry)
{
    slots_[defined_idx].store(entry, std::memory_order_release);
}

TieredModule::FuncState
TieredModule::state(uint32_t defined_idx) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return states_.at(defined_idx);
}

TierStatsSnapshot
TieredModule::stats() const
{
    TierStatsSnapshot s;
    s.baselineCompiles =
        statBaselineCompiles_.load(std::memory_order_relaxed);
    s.tierUps = statTierUps_.load(std::memory_order_relaxed);
    s.cacheHits = statCacheHits_.load(std::memory_order_relaxed);
    s.interpFallbacks =
        statInterpFallbacks_.load(std::memory_order_relaxed);
    s.compileNs = statCompileNs_.load(std::memory_order_relaxed);
    s.cacheFillVerifyNs = statVerifyNs_.load(std::memory_order_relaxed);
    return s;
}

const void*
TieredModule::resolve(uint32_t defined_idx)
{
    SFI_CHECK(defined_idx < module_.functions.size());
    std::lock_guard<std::mutex> lock(mu_);
    FuncState st = states_[defined_idx];

    // Terminal or already-advanced states: another thread won the
    // race (or the prologue counter fired for a function that just
    // tiered up). Return the live slot.
    if (st == FuncState::Optimized || st == FuncState::Interp)
        return slots_[defined_idx].load(std::memory_order_acquire);

    CodeCache& cache = CodeCache::instance();

    if (st == FuncState::Unresolved) {
        uint64_t t0 = nowNs();
        auto r = cache.getFunction(hash_, defined_idx, module_,
                                   baseCfg_, minMemBytes_);
        statCompileNs_.fetch_add(nowNs() - t0,
                                 std::memory_order_relaxed);
        if (!r.isOk()) {
            // Fail closed: the baseline body did not verify (or did
            // not compile), so the function runs interpreted forever.
            SFI_WARN("tier: baseline for func#%u fell back to the "
                     "interpreter: %s",
                     defined_idx, r.message().c_str());
            const void* thunk = interpThunkAddr(defined_idx);
            setSlot(defined_idx, thunk);
            states_[defined_idx] = FuncState::Interp;
            statInterpFallbacks_.fetch_add(1,
                                           std::memory_order_relaxed);
            return thunk;
        }
        if (r->hit)
            statCacheHits_.fetch_add(1, std::memory_order_relaxed);
        else
            statBaselineCompiles_.fetch_add(1,
                                            std::memory_order_relaxed);
        statVerifyNs_.fetch_add(r->verifyNs,
                                std::memory_order_relaxed);
        setSlot(defined_idx, r->base);
        states_[defined_idx] = FuncState::Baseline;
        return r->base;
    }

    // Baseline and the prologue counter crossed the threshold:
    // tier up through the optimizer.
    if (tierFailed_[defined_idx]) {
        // Verification is deterministic — don't recompile on every
        // threshold crossing; just keep the prologue cheap.
        counters_[defined_idx] = 0;
        return slots_[defined_idx].load(std::memory_order_acquire);
    }
    uint64_t t0 = nowNs();
    auto r = cache.getFunction(hash_, defined_idx, module_, optCfg_,
                               minMemBytes_);
    statCompileNs_.fetch_add(nowNs() - t0, std::memory_order_relaxed);
    if (!r.isOk()) {
        // The verified baseline stays live; never degrade a working
        // tier because a better one failed to prove.
        SFI_WARN("tier: tier-up for func#%u failed, keeping baseline: "
                 "%s",
                 defined_idx, r.message().c_str());
        tierFailed_[defined_idx] = 1;
        counters_[defined_idx] = 0;
        return slots_[defined_idx].load(std::memory_order_acquire);
    }
    if (r->hit)
        statCacheHits_.fetch_add(1, std::memory_order_relaxed);
    statVerifyNs_.fetch_add(r->verifyNs, std::memory_order_relaxed);
    statTierUps_.fetch_add(1, std::memory_order_relaxed);
    setSlot(defined_idx, r->base);
    states_[defined_idx] = FuncState::Optimized;
    return r->base;
}

}  // namespace sfi::jit
