/**
 * @file
 * Bulk-memory loop idiom recognition — sfikit's stand-in for WAMR's
 * vectorization passes (§4.2).
 *
 * WAMR converts long load sequences and loops into SIMD code, but those
 * passes pattern-match ordinary base+offset memory accesses and do not
 * recognize segment-relative ones; enabling full Segue therefore
 * disables them and regresses benchmarks like `memmove` and `sieve`
 * (Figure 4). sfikit reproduces the mechanism: this pass rewrites
 * canonical byte fill/copy loops into memory.fill/memory.copy (which
 * execute as memset/memmove), and the compiler only runs it when stores
 * use non-segment addressing.
 *
 * Semantics note: like real engines' bulk ops, a rewritten loop that
 * would trap mid-way no longer performs the partial writes preceding
 * the trap; the trap itself occurs under exactly the same conditions.
 */
#ifndef SFIKIT_JIT_VECTORIZE_H_
#define SFIKIT_JIT_VECTORIZE_H_

#include "wasm/module.h"

namespace sfi::jit {

/**
 * Returns a copy of @p fn with every recognized byte fill/copy loop
 * replaced by bulk memory operations. Unrecognized code is untouched.
 */
wasm::Function vectorizeBulkLoops(const wasm::Function& fn);

/** Number of loops the last transformation of @p fn would rewrite
 *  (introspection for tests/benches). */
int countVectorizableLoops(const wasm::Function& fn);

}  // namespace sfi::jit

#endif  // SFIKIT_JIT_VECTORIZE_H_
