/**
 * @file
 * The contract between JIT'd code and the runtime.
 *
 * Compiled code holds a pointer to JitContext in %r14 for its entire
 * execution and reaches runtime state through fixed offsets. Like
 * Wasmtime's VMContext, this layout is an explicit compiler/runtime
 * contract: the static_asserts below keep the two sides in lockstep
 * (§5.1 discusses why such contracts are security-critical).
 */
#ifndef SFIKIT_JIT_CONTEXT_H_
#define SFIKIT_JIT_CONTEXT_H_

#include <cstddef>
#include <cstdint>

namespace sfi::jit {

/** Runtime state visible to JIT'd code through %r14. */
struct JitContext
{
    /** Base of the active linear memory (also mirrored in %r15 / %gs). */
    uint8_t* memBase;                                          // +0
    /** Current memory size in bytes (explicit-bounds-check strategies). */
    uint64_t memSize;                                          // +8
    /** Global epoch counter (incremented by the scheduler). */
    const uint64_t* epochPtr;                                  // +16
    /** Executing past this epoch triggers the epoch callback (§6.4). */
    uint64_t epochDeadline;                                    // +24
    /** Global variables, one 64-bit slot each. */
    uint64_t* globals;                                         // +32
    /** call_indirect: per-table-slot signature ids. */
    const uint64_t* tableTypeIds;                              // +40
    /** call_indirect: per-table-slot native entry points. */
    const uint64_t* tableEntries;                              // +48
    uint64_t tableSize;                                        // +56
    /** Opaque runtime object (rt::Instance) passed to callbacks. */
    void* runtimeData;                                         // +64
    /** Noreturn trap exit: unwinds to the host via siglongjmp. */
    void (*trapFn)(void* runtime_data, uint64_t trap_code);    // +72
    /** memory.grow; returns old page count or u32(-1). */
    uint64_t (*growFn)(void* runtime_data, uint64_t delta);    // +80
    /** Uniform host-call trampoline; traps never return through it. */
    uint64_t (*hostFn)(void* runtime_data, uint64_t import_idx,
                       const uint64_t* args, uint64_t nargs);  // +88
    /** memory.fill(dst, val, n); bounds-checked, traps on OOB. */
    void (*fillFn)(void* runtime_data, uint64_t dst, uint64_t val,
                   uint64_t n);                                // +96
    /** memory.copy(dst, src, n); bounds-checked, traps on OOB. */
    void (*copyFn)(void* runtime_data, uint64_t dst, uint64_t src,
                   uint64_t n);                                // +104
    /** Epoch callback: may yield (fiber switch) and return, or trap. */
    void (*epochFn)(void* runtime_data);                       // +112
    /** Current memory size in Wasm pages (memory.size). */
    uint64_t memPages;                                         // +120
    /** Traps StackExhausted when %rsp sinks below this. */
    uint64_t stackLimit;                                       // +128
    /** Argument staging area for host calls (max 8 slots). */
    uint64_t hostArgs[8];                                      // +136
    /** Base of the module's code region (LFI control-flow masking). */
    uint64_t codeBase;                                         // +200

    // --- tiered execution (CompilerConfig::tieredCalls/tierCounters) ---
    /**
     * Per-defined-function entry slots. Tiered code calls through
     * these instead of rel32: a slot holds the resolver stub until the
     * function first compiles, then the baseline body, then (after
     * hot-count tier-up) the optimized body — always patched with a
     * release store so concurrent callers read either the old or the
     * new pointer, never a torn one.
     */
    const void* const* funcEntries;                            // +208
    /** Per-defined-function call counters (baseline prologues bump). */
    uint64_t* tierCounters;                                    // +216
    /** Calls before a baseline function requests tier-up. */
    uint64_t tierThreshold;                                    // +224
    /**
     * Tier-up/resolve entry: compiles (or looks up) defined function
     * @p defined_idx and returns its new entry address after patching
     * the slot. Called from resolver stubs and baseline prologues.
     */
    const void* (*tierFn)(void* runtime_data,
                          uint64_t defined_idx);               // +232
    /**
     * Interpreter fallback: executes defined function @p defined_idx
     * with marshalled args (interp thunks route here when a function
     * is pinned to the interpreter tier).
     */
    uint64_t (*interpFn)(void* runtime_data, uint64_t defined_idx,
                         const uint64_t* args);                // +240
};

// The compiler emits these offsets into instructions; keep them honest.
static_assert(offsetof(JitContext, memBase) == 0);
static_assert(offsetof(JitContext, memSize) == 8);
static_assert(offsetof(JitContext, epochPtr) == 16);
static_assert(offsetof(JitContext, epochDeadline) == 24);
static_assert(offsetof(JitContext, globals) == 32);
static_assert(offsetof(JitContext, tableTypeIds) == 40);
static_assert(offsetof(JitContext, tableEntries) == 48);
static_assert(offsetof(JitContext, tableSize) == 56);
static_assert(offsetof(JitContext, runtimeData) == 64);
static_assert(offsetof(JitContext, trapFn) == 72);
static_assert(offsetof(JitContext, growFn) == 80);
static_assert(offsetof(JitContext, hostFn) == 88);
static_assert(offsetof(JitContext, fillFn) == 96);
static_assert(offsetof(JitContext, copyFn) == 104);
static_assert(offsetof(JitContext, epochFn) == 112);
static_assert(offsetof(JitContext, memPages) == 120);
static_assert(offsetof(JitContext, stackLimit) == 128);
static_assert(offsetof(JitContext, hostArgs) == 136);
static_assert(offsetof(JitContext, codeBase) == 200);
static_assert(offsetof(JitContext, funcEntries) == 208);
static_assert(offsetof(JitContext, tierCounters) == 216);
static_assert(offsetof(JitContext, tierThreshold) == 224);
static_assert(offsetof(JitContext, tierFn) == 232);
static_assert(offsetof(JitContext, interpFn) == 240);

}  // namespace sfi::jit

#endif  // SFIKIT_JIT_CONTEXT_H_
