#include "jit/vectorize.h"

#include <optional>

namespace sfi::jit {

using wasm::Instr;
using wasm::Op;

namespace {

/** A matched fill loop: fills [d, e) with a byte value. */
struct FillMatch
{
    uint32_t d, e;
    Instr valSrc;   ///< I32Const or LocalGet producing the byte
    size_t length;  ///< instructions consumed
};

/** A matched copy loop: copies [s, s+(e-d)) to [d, e). */
struct CopyMatch
{
    uint32_t d, s, e;
    size_t length;
};

bool
is(const Instr& in, Op op)
{
    return in.op == op;
}

bool
isLocalGet(const Instr& in, uint32_t idx)
{
    return in.op == Op::LocalGet && in.a == idx;
}

/**
 * The canonical byte-fill loop (emitted by kernel helpers):
 *   block loop
 *     local.get d ; local.get e ; i32.ge_u ; br_if 1
 *     local.get d ; <val> ; i32.store8 0
 *     local.get d ; i32.const 1 ; i32.add ; local.set d
 *     br 0
 *   end end
 */
std::optional<FillMatch>
matchFill(const std::vector<Instr>& body, size_t i)
{
    if (i + 16 > body.size())
        return std::nullopt;
    const Instr* p = &body[i];
    if (!is(p[0], Op::Block) || !is(p[1], Op::Loop))
        return std::nullopt;
    if (p[2].op != Op::LocalGet || p[3].op != Op::LocalGet)
        return std::nullopt;
    uint32_t d = p[2].a, e = p[3].a;
    if (d == e)
        return std::nullopt;
    if (!is(p[4], Op::I32GeU) || !is(p[5], Op::BrIf) || p[5].a != 1)
        return std::nullopt;
    if (!isLocalGet(p[6], d))
        return std::nullopt;
    const Instr& val = p[7];
    bool val_ok = val.op == Op::I32Const ||
                  (val.op == Op::LocalGet && val.a != d);
    if (!val_ok)
        return std::nullopt;
    if (!is(p[8], Op::I32Store8) || p[8].imm != 0)
        return std::nullopt;
    if (!isLocalGet(p[9], d) || p[10].op != Op::I32Const ||
        p[10].imm != 1 || !is(p[11], Op::I32Add) ||
        p[12].op != Op::LocalSet || p[12].a != d)
        return std::nullopt;
    if (!is(p[13], Op::Br) || p[13].a != 0 || !is(p[14], Op::End) ||
        !is(p[15], Op::End))
        return std::nullopt;
    return FillMatch{d, e, val, 16};
}

/**
 * The canonical byte-copy loop:
 *   block loop
 *     local.get d ; local.get e ; i32.ge_u ; br_if 1
 *     local.get d ; local.get s ; i32.load8_u 0 ; i32.store8 0
 *     local.get d ; i32.const 1 ; i32.add ; local.set d
 *     local.get s ; i32.const 1 ; i32.add ; local.set s
 *     br 0
 *   end end
 */
std::optional<CopyMatch>
matchCopy(const std::vector<Instr>& body, size_t i)
{
    if (i + 21 > body.size())
        return std::nullopt;
    const Instr* p = &body[i];
    if (!is(p[0], Op::Block) || !is(p[1], Op::Loop))
        return std::nullopt;
    if (p[2].op != Op::LocalGet || p[3].op != Op::LocalGet)
        return std::nullopt;
    uint32_t d = p[2].a, e = p[3].a;
    if (!is(p[4], Op::I32GeU) || !is(p[5], Op::BrIf) || p[5].a != 1)
        return std::nullopt;
    if (!isLocalGet(p[6], d) || p[7].op != Op::LocalGet)
        return std::nullopt;
    uint32_t s = p[7].a;
    if (s == d || e == d || e == s)
        return std::nullopt;
    if (!is(p[8], Op::I32Load8U) || p[8].imm != 0 ||
        !is(p[9], Op::I32Store8) || p[9].imm != 0)
        return std::nullopt;
    if (!isLocalGet(p[10], d) || p[11].op != Op::I32Const ||
        p[11].imm != 1 || !is(p[12], Op::I32Add) ||
        p[13].op != Op::LocalSet || p[13].a != d)
        return std::nullopt;
    if (!isLocalGet(p[14], s) || p[15].op != Op::I32Const ||
        p[15].imm != 1 || !is(p[16], Op::I32Add) ||
        p[17].op != Op::LocalSet || p[17].a != s)
        return std::nullopt;
    if (!is(p[18], Op::Br) || p[18].a != 0 || !is(p[19], Op::End) ||
        !is(p[20], Op::End))
        return std::nullopt;
    return CopyMatch{d, s, e, 21};
}

void
emitFillReplacement(std::vector<Instr>& out, const FillMatch& m)
{
    // if (d < e) { memory.fill(d, val, e - d); d = e; }
    out.push_back({Op::LocalGet, m.d, 0});
    out.push_back({Op::LocalGet, m.e, 0});
    out.push_back({Op::I32LtU, 0, 0});
    out.push_back({Op::If, 0, 0});
    out.push_back({Op::LocalGet, m.d, 0});
    out.push_back(m.valSrc);
    out.push_back({Op::LocalGet, m.e, 0});
    out.push_back({Op::LocalGet, m.d, 0});
    out.push_back({Op::I32Sub, 0, 0});
    out.push_back({Op::MemoryFill, 0, 0});
    out.push_back({Op::LocalGet, m.e, 0});
    out.push_back({Op::LocalSet, m.d, 0});
    out.push_back({Op::End, 0, 0});
}

void
emitCopyReplacement(std::vector<Instr>& out, const CopyMatch& m)
{
    // if (d < e) { memory.copy(d, s, e - d); s += e - d; d = e; }
    out.push_back({Op::LocalGet, m.d, 0});
    out.push_back({Op::LocalGet, m.e, 0});
    out.push_back({Op::I32LtU, 0, 0});
    out.push_back({Op::If, 0, 0});
    out.push_back({Op::LocalGet, m.d, 0});
    out.push_back({Op::LocalGet, m.s, 0});
    out.push_back({Op::LocalGet, m.e, 0});
    out.push_back({Op::LocalGet, m.d, 0});
    out.push_back({Op::I32Sub, 0, 0});
    out.push_back({Op::MemoryCopy, 0, 0});
    out.push_back({Op::LocalGet, m.s, 0});
    out.push_back({Op::LocalGet, m.e, 0});
    out.push_back({Op::LocalGet, m.d, 0});
    out.push_back({Op::I32Sub, 0, 0});
    out.push_back({Op::I32Add, 0, 0});
    out.push_back({Op::LocalSet, m.s, 0});
    out.push_back({Op::LocalGet, m.e, 0});
    out.push_back({Op::LocalSet, m.d, 0});
    out.push_back({Op::End, 0, 0});
}

}  // namespace

wasm::Function
vectorizeBulkLoops(const wasm::Function& fn)
{
    wasm::Function out = fn;
    out.body.clear();
    size_t i = 0;
    while (i < fn.body.size()) {
        if (auto m = matchCopy(fn.body, i)) {
            emitCopyReplacement(out.body, *m);
            i += m->length;
            continue;
        }
        if (auto m = matchFill(fn.body, i)) {
            emitFillReplacement(out.body, *m);
            i += m->length;
            continue;
        }
        out.body.push_back(fn.body[i]);
        i++;
    }
    return out;
}

int
countVectorizableLoops(const wasm::Function& fn)
{
    int count = 0;
    size_t i = 0;
    while (i < fn.body.size()) {
        if (auto m = matchCopy(fn.body, i)) {
            count++;
            i += m->length;
            continue;
        }
        if (auto m = matchFill(fn.body, i)) {
            count++;
            i += m->length;
            continue;
        }
        i++;
    }
    return count;
}

}  // namespace sfi::jit
