/**
 * @file
 * SFI code-generation strategies — the experimental axis of the paper.
 *
 * Every linear-memory access compiles as one of:
 *
 *  BaseReg      classic guard-region SFI: the heap base is pinned in
 *               %r15 and accesses are `mov r, [r15 + idx + disp]`. Burns
 *               a GPR and the memory operand's base slot (§2, §3.1).
 *  Segue        the heap base lives in %gs; accesses are
 *               `mov r, gs:[idx + disp]`. Frees %r15 for allocation and
 *               the base operand slot (§3.1). This corresponds to the
 *               "limited" Segue WAMR ships (§4.2): the register-pressure
 *               and encoding benefits, applied inside a baseline JIT.
 *  SegueLoadsOnly  Segue addressing for loads, BaseReg for stores — the
 *               WAMR tuning knob that sidesteps the vectorizer
 *               interaction (§4.2, §6.2).
 *  BoundsCheck  explicit limit compare + trap before every access, with
 *               base-register addressing: what engines must do for
 *               64-bit memories or tiny guard regions (§6.1).
 *  SegueBounds  explicit bounds checks + %gs addressing: Segue's 25.2%
 *               overhead reduction for bounds-checked engines (§6.1).
 *  Unsandboxed  no SFI at all — raw host addressing. Serves as the
 *               "native execution" baseline the figures normalize to
 *               (our substitution for native clang builds; DESIGN.md §1).
 */
#ifndef SFIKIT_JIT_STRATEGY_H_
#define SFIKIT_JIT_STRATEGY_H_

#include <cstdint>

namespace sfi::jit {

enum class MemStrategy : uint8_t {
    Unsandboxed,
    BaseReg,
    Segue,
    SegueLoadsOnly,
    BoundsCheck,
    SegueBounds,
};

const char* name(MemStrategy s);

/** Control-flow sandboxing, layered on top of a MemStrategy (§4.3). */
enum class CfiMode : uint8_t {
    None,
    /**
     * LFI/NaCl-style: a reserved GPR (%r13) holds the code-region base;
     * returns and indirect calls truncate the target to 32 bits relative
     * to it. Models the x86-64 LFI backend the paper builds (§4.3),
     * including the fact that Segue cannot remove this reserved GPR.
     */
    Lfi,
};

const char* name(CfiMode m);

/** Full compiler configuration. */
struct CompilerConfig
{
    MemStrategy mem = MemStrategy::BaseReg;
    CfiMode cfi = CfiMode::None;
    /**
     * Recognize canonical byte fill/copy loops and rewrite them to bulk
     * memory operations — sfikit's stand-in for WAMR's vectorization
     * passes. The pass only fires when stores use non-segment
     * addressing, reproducing the §4.2 Segue interaction.
     */
    bool vectorizeBulkLoops = true;
    /** Emit epoch-interruption checks at loop headers (§6.4). */
    bool epochChecks = false;
    /**
     * LFI semantics: index registers are untrusted 64-bit values (the
     * input is rewritten native code, not type-checked Wasm), so
     * BaseReg-style accesses need an explicit truncation first — the
     * two-instruction Figure 1b pattern — while Segue collapses both
     * into one instruction via the 0x67 address-size override
     * (Figure 1c). Wasm JITs leave this false: their i32 values are
     * zero-extended by construction.
     */
    bool untrustedIndexRegs = false;
    /**
     * Run the IR-level optimizer (jit/optimizer.h: redundant-guard
     * elimination, address-expression CSE, i32.add-const folding into
     * static offsets) and the assembler peephole before emission.
     * Default on — benches sweep both settings; every optimized module
     * must still pass verify::checkModule.
     */
    bool optimize = true;
    /**
     * Emit the legacy full-save entry stubs: an rbp frame plus an
     * unconditional push/pop of every callee-saved GPR, whether or not
     * the module's code can touch it. Default off — the lean tier trims
     * the save set to the registers the JIT actually allocated (tracked
     * during compilation) plus the pins it must establish. Kept as a
     * knob so bench_transitions can measure the seed trampoline against
     * the contract tier on identical code.
     */
    bool fullSaveEntry = false;
    /**
     * Tiered execution: route every intra-module call through the
     * per-function entry-slot table at ctx->funcEntries instead of a
     * rel32 direct call. Slots start out pointing at resolver stubs
     * (lazy compilation) and are patched atomically on tier-up, so a
     * function emitted under this flag keeps working as its callees
     * move between tiers. Requires CfiMode::None — the slot values are
     * trusted runtime-owned pointers, not sandboxed code addresses, so
     * the LFI mask chain must not truncate them.
     */
    bool tieredCalls = false;
    /**
     * Tiered execution: bump ctx->tierCounters[i] in each function
     * prologue and call ctx->tierFn once the count crosses
     * ctx->tierThreshold (hot-count tier-up). Only meaningful for
     * baseline-tier compiles; the optimized tier leaves it off.
     */
    bool tierCounters = false;

    // --- presets used by the benchmark harnesses ---
    // Designated initializers: adding a config field can't silently
    // shift positional meaning.
    static CompilerConfig
    native()
    {
        return {.mem = MemStrategy::Unsandboxed};
    }
    static CompilerConfig
    wamrBase()
    {
        return {.mem = MemStrategy::BaseReg};
    }
    static CompilerConfig
    wamrSegue()
    {
        return {.mem = MemStrategy::Segue};
    }
    static CompilerConfig
    wamrSegueLoads()
    {
        return {.mem = MemStrategy::SegueLoadsOnly};
    }
    static CompilerConfig
    lfiBase()
    {
        return {.mem = MemStrategy::BaseReg,
                .cfi = CfiMode::Lfi,
                .untrustedIndexRegs = true};
    }
    static CompilerConfig
    lfiSegue()
    {
        return {.mem = MemStrategy::Segue,
                .cfi = CfiMode::Lfi,
                .untrustedIndexRegs = true};
    }

    /** True when loads go through %gs. */
    bool
    segueLoads() const
    {
        return mem == MemStrategy::Segue ||
               mem == MemStrategy::SegueLoadsOnly ||
               mem == MemStrategy::SegueBounds;
    }

    /** True when stores go through %gs. */
    bool
    segueStores() const
    {
        return mem == MemStrategy::Segue ||
               mem == MemStrategy::SegueBounds;
    }

    /** True when %r15 must stay pinned to the heap base. */
    bool
    needsHeapBaseReg() const
    {
        return mem == MemStrategy::Unsandboxed ||
               mem == MemStrategy::BaseReg ||
               mem == MemStrategy::SegueLoadsOnly ||
               mem == MemStrategy::BoundsCheck;
    }

    /** True when the %gs base must be set on entry. */
    bool
    needsGsBase() const
    {
        return segueLoads() || segueStores();
    }

    /** True when explicit limit checks guard every access. */
    bool
    explicitBounds() const
    {
        return mem == MemStrategy::BoundsCheck ||
               mem == MemStrategy::SegueBounds;
    }
};

}  // namespace sfi::jit

#endif  // SFIKIT_JIT_STRATEGY_H_
