#include "seg/seg.h"

#include <asm/prctl.h>
#include <csetjmp>
#include <csignal>
#include <pthread.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "base/cpu.h"
#include "base/logging.h"

namespace sfi::seg {

namespace {

sigjmp_buf g_probe_jmp;

void
probeSigill(int)
{
    siglongjmp(g_probe_jmp, 1);
}

/**
 * CPUID's FSGSBASE bit says the instructions exist, not that the kernel
 * enabled them (CR4.FSGSBASE, Linux >= 5.9). Execute RDGSBASE under a
 * SIGILL handler to find out for sure.
 */
bool
probeFsgsbase()
{
    if (!cpuFeatures().fsgsbase)
        return false;
    struct sigaction sa, old_sa;
    sa.sa_handler = probeSigill;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGILL, &sa, &old_sa);
    bool ok = false;
    if (sigsetjmp(g_probe_jmp, 1) == 0) {
        uint64_t v;
        asm volatile("rdgsbase %0" : "=r"(v));
        (void)v;
        ok = true;
    }
    sigaction(SIGILL, &old_sa, nullptr);
    return ok;
}

void
archPrctlSetGs(uint64_t base)
{
    long rc = syscall(SYS_arch_prctl, ARCH_SET_GS, base);
    SFI_CHECK_MSG(rc == 0, "arch_prctl(ARCH_SET_GS) failed");
}

uint64_t
archPrctlGetGs()
{
    uint64_t base = 0;
    long rc = syscall(SYS_arch_prctl, ARCH_GET_GS, &base);
    SFI_CHECK_MSG(rc == 0, "arch_prctl(ARCH_GET_GS) failed");
    return base;
}

// --- per-thread %gs-base cache ---------------------------------------
//
// Every write routed through this module records the value it wrote;
// reads are then served without touching the hardware, and warm
// re-entries (enterGsBase) skip the write entirely. The sentinel marks
// "unknown" — a kernel-assigned base can be any canonical address, but
// ~0 is non-canonical, so it can never collide with a real base.

constexpr uint64_t kGsUnknown = ~0ull;

thread_local uint64_t tl_cached_gs = kGsUnknown;

/**
 * fork() keeps the %gs base in the child, but only the forking thread
 * survives — conservatively drop the child's cache so the first access
 * re-reads the hardware (the ISSUE-mandated invalidation point; also
 * protects against vfork-style oddities).
 */
void
registerForkInvalidation()
{
    static pthread_once_t once = PTHREAD_ONCE_INIT;
    pthread_once(&once, [] {
        pthread_atfork(nullptr, nullptr,
                       [] { tl_cached_gs = kGsUnknown; });
    });
}

}  // namespace

bool
fsgsbaseUsable()
{
    static const bool usable = probeFsgsbase();
    return usable;
}

GsWriteMode
gsWriteMode()
{
    return fsgsbaseUsable() ? GsWriteMode::Fsgsbase : GsWriteMode::ArchPrctl;
}

void
setGsBase(uint64_t base)
{
    setGsBaseWith(gsWriteMode(), base);
}

void
setGsBaseWith(GsWriteMode mode, uint64_t base)
{
    registerForkInvalidation();
    if (mode == GsWriteMode::Fsgsbase) {
        asm volatile("wrgsbase %0" : : "r"(base));
    } else {
        archPrctlSetGs(base);
    }
    tl_cached_gs = base;
}

uint64_t
getGsBase()
{
    if (tl_cached_gs != kGsUnknown)
        return tl_cached_gs;
    registerForkInvalidation();
    uint64_t v;
    if (fsgsbaseUsable()) {
        asm volatile("rdgsbase %0" : "=r"(v));
    } else {
        v = archPrctlGetGs();
    }
    // A real base equal to the sentinel is impossible (non-canonical),
    // so caching unconditionally is sound.
    tl_cached_gs = v;
    return v;
}

bool
enterGsBase(uint64_t base)
{
    if (tl_cached_gs == base)
        return true;  // warm re-entry: the register already holds it
    setGsBase(base);
    return false;
}

void
invalidateGsBaseCache()
{
    tl_cached_gs = kGsUnknown;
}

bool
gsBaseCacheValid()
{
    return tl_cached_gs != kGsUnknown;
}

}  // namespace sfi::seg
