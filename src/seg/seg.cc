#include "seg/seg.h"

#include <asm/prctl.h>
#include <csetjmp>
#include <csignal>
#include <sys/syscall.h>
#include <unistd.h>

#include "base/cpu.h"
#include "base/logging.h"

namespace sfi::seg {

namespace {

sigjmp_buf g_probe_jmp;

void
probeSigill(int)
{
    siglongjmp(g_probe_jmp, 1);
}

/**
 * CPUID's FSGSBASE bit says the instructions exist, not that the kernel
 * enabled them (CR4.FSGSBASE, Linux >= 5.9). Execute RDGSBASE under a
 * SIGILL handler to find out for sure.
 */
bool
probeFsgsbase()
{
    if (!cpuFeatures().fsgsbase)
        return false;
    struct sigaction sa, old_sa;
    sa.sa_handler = probeSigill;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGILL, &sa, &old_sa);
    bool ok = false;
    if (sigsetjmp(g_probe_jmp, 1) == 0) {
        uint64_t v;
        asm volatile("rdgsbase %0" : "=r"(v));
        (void)v;
        ok = true;
    }
    sigaction(SIGILL, &old_sa, nullptr);
    return ok;
}

void
archPrctlSetGs(uint64_t base)
{
    long rc = syscall(SYS_arch_prctl, ARCH_SET_GS, base);
    SFI_CHECK_MSG(rc == 0, "arch_prctl(ARCH_SET_GS) failed");
}

uint64_t
archPrctlGetGs()
{
    uint64_t base = 0;
    long rc = syscall(SYS_arch_prctl, ARCH_GET_GS, &base);
    SFI_CHECK_MSG(rc == 0, "arch_prctl(ARCH_GET_GS) failed");
    return base;
}

}  // namespace

bool
fsgsbaseUsable()
{
    static const bool usable = probeFsgsbase();
    return usable;
}

GsWriteMode
gsWriteMode()
{
    return fsgsbaseUsable() ? GsWriteMode::Fsgsbase : GsWriteMode::ArchPrctl;
}

void
setGsBase(uint64_t base)
{
    setGsBaseWith(gsWriteMode(), base);
}

void
setGsBaseWith(GsWriteMode mode, uint64_t base)
{
    if (mode == GsWriteMode::Fsgsbase) {
        asm volatile("wrgsbase %0" : : "r"(base));
    } else {
        archPrctlSetGs(base);
    }
}

uint64_t
getGsBase()
{
    if (fsgsbaseUsable()) {
        uint64_t v;
        asm volatile("rdgsbase %0" : "=r"(v));
        return v;
    }
    return archPrctlGetGs();
}

}  // namespace sfi::seg
