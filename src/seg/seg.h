/**
 * @file
 * Segment-base control for Segue (§3.1, §4.1).
 *
 * Segue stores the active sandbox's linear-memory base in %gs and uses
 * segment-relative addressing for all heap accesses. Linux dedicates %fs
 * to TLS, leaving %gs free for SFI. Setting the base uses the userspace
 * WRGSBASE instruction when FSGSBASE is available (IvyBridge, 2011, and
 * later, with kernel support), or falls back to arch_prctl(ARCH_SET_GS) —
 * a full syscall, whose extra transition cost the paper calls out for
 * older-CPU Firefox deployments.
 *
 * Amortization layer (transition tiers): every write made through this
 * module is mirrored into a per-thread software cache of the current
 * %gs base. Warm re-entry into the same sandbox — the common case under
 * the pool's warm-slot affinity — then skips the WRGSBASE/arch_prctl
 * entirely via enterGsBase(), and getGsBase() is a plain load instead
 * of an RDGSBASE (or, pre-FSGSBASE, an ARCH_GET_GS syscall). The cache
 * is invalidated in fork() children and can be invalidated explicitly;
 * it repopulates from the hardware on the next read.
 */
#ifndef SFIKIT_SEG_SEG_H_
#define SFIKIT_SEG_SEG_H_

#include <cstdint>

namespace sfi::seg {

/** How the %gs base is written. */
enum class GsWriteMode : uint8_t {
    Fsgsbase,   ///< Userspace WRGSBASE (fast path).
    ArchPrctl,  ///< arch_prctl(ARCH_SET_GS) syscall (fallback).
};

/**
 * True iff userspace WRGSBASE/RDGSBASE actually work (CPUID advertises
 * FSGSBASE *and* the kernel set CR4.FSGSBASE). Probed once by executing
 * the instruction under a SIGILL guard.
 */
bool fsgsbaseUsable();

/** The write mode the process will use (resolved once). */
GsWriteMode gsWriteMode();

/** Sets the %gs base to @p base using the resolved mode. */
void setGsBase(uint64_t base);

/** Sets the %gs base using a specific mode (benchmarking both paths). */
void setGsBaseWith(GsWriteMode mode, uint64_t base);

/**
 * Reads the current %gs base. Served from the per-thread cache when it
 * is valid; otherwise reads the hardware (RDGSBASE under FSGSBASE,
 * arch_prctl(ARCH_GET_GS) otherwise) and populates the cache.
 */
uint64_t getGsBase();

/**
 * Warm-entry write: sets the %gs base to @p base unless the per-thread
 * cache proves it already holds that value. Returns true when the
 * write was skipped (a cache hit — the amortized-transition fast path).
 */
bool enterGsBase(uint64_t base);

/**
 * Forgets the cached per-thread %gs base; the next getGsBase() or
 * enterGsBase() re-reads/rewrites the hardware. Automatically invoked
 * in the child after fork() (registered via pthread_atfork), and
 * available for tests and for code that changes %gs behind this
 * module's back.
 */
void invalidateGsBaseCache();

/** True when the per-thread cache currently holds a known value. */
bool gsBaseCacheValid();

/**
 * RAII: sets the %gs base for the current scope and restores the previous
 * value on destruction — the pattern Wasm2c's runtime uses on module entry
 * so callers never track the register manually (§4.1).
 */
class ScopedGsBase
{
  public:
    explicit ScopedGsBase(uint64_t base) : saved_(getGsBase())
    {
        setGsBase(base);
    }

    ~ScopedGsBase() { setGsBase(saved_); }

    ScopedGsBase(const ScopedGsBase&) = delete;
    ScopedGsBase& operator=(const ScopedGsBase&) = delete;

  private:
    uint64_t saved_;
};

/**
 * RAII for the amortized tier: enters the sandbox base via the cache
 * (skipping the write on warm re-entry) and deliberately does NOT
 * restore the previous value — the host never addresses through %gs,
 * so the stale base is harmless and the next entry to the same sandbox
 * becomes free. `skipped()` reports whether the write was elided.
 */
class CachedGsBase
{
  public:
    explicit CachedGsBase(uint64_t base) : skipped_(enterGsBase(base)) {}

    bool skipped() const { return skipped_; }

    CachedGsBase(const CachedGsBase&) = delete;
    CachedGsBase& operator=(const CachedGsBase&) = delete;

  private:
    bool skipped_;
};

}  // namespace sfi::seg

#endif  // SFIKIT_SEG_SEG_H_
