/**
 * @file
 * Segment-base control for Segue (§3.1, §4.1).
 *
 * Segue stores the active sandbox's linear-memory base in %gs and uses
 * segment-relative addressing for all heap accesses. Linux dedicates %fs
 * to TLS, leaving %gs free for SFI. Setting the base uses the userspace
 * WRGSBASE instruction when FSGSBASE is available (IvyBridge, 2011, and
 * later, with kernel support), or falls back to arch_prctl(ARCH_SET_GS) —
 * a full syscall, whose extra transition cost the paper calls out for
 * older-CPU Firefox deployments.
 */
#ifndef SFIKIT_SEG_SEG_H_
#define SFIKIT_SEG_SEG_H_

#include <cstdint>

namespace sfi::seg {

/** How the %gs base is written. */
enum class GsWriteMode : uint8_t {
    Fsgsbase,   ///< Userspace WRGSBASE (fast path).
    ArchPrctl,  ///< arch_prctl(ARCH_SET_GS) syscall (fallback).
};

/**
 * True iff userspace WRGSBASE/RDGSBASE actually work (CPUID advertises
 * FSGSBASE *and* the kernel set CR4.FSGSBASE). Probed once by executing
 * the instruction under a SIGILL guard.
 */
bool fsgsbaseUsable();

/** The write mode the process will use (resolved once). */
GsWriteMode gsWriteMode();

/** Sets the %gs base to @p base using the resolved mode. */
void setGsBase(uint64_t base);

/** Sets the %gs base using a specific mode (benchmarking both paths). */
void setGsBaseWith(GsWriteMode mode, uint64_t base);

/** Reads the current %gs base. */
uint64_t getGsBase();

/**
 * RAII: sets the %gs base for the current scope and restores the previous
 * value on destruction — the pattern Wasm2c's runtime uses on module entry
 * so callers never track the register manually (§4.1).
 */
class ScopedGsBase
{
  public:
    explicit ScopedGsBase(uint64_t base) : saved_(getGsBase())
    {
        setGsBase(base);
    }

    ~ScopedGsBase() { setGsBase(saved_); }

    ScopedGsBase(const ScopedGsBase&) = delete;
    ScopedGsBase& operator=(const ScopedGsBase&) = delete;

  private:
    uint64_t saved_;
};

}  // namespace sfi::seg

#endif  // SFIKIT_SEG_SEG_H_
