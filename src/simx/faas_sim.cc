#include "simx/faas_sim.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "base/logging.h"
#include "base/rng.h"
#include "simx/event_queue.h"

namespace sfi::simx {

namespace {

struct Request
{
    int process = 0;
    uint64_t id = 0;
    double remainingComputeNs = 0;
    Time startedAt = 0;
    Time ioReadyAt = 0;
    bool inIo = true;
};

}  // namespace

FaasSimResult
simulateFaas(const FaasSimConfig& cfg)
{
    SFI_CHECK(cfg.numProcesses >= 1);
    const int procs = cfg.colorguard ? 1 : cfg.numProcesses;
    Rng rng(cfg.seed);
    TlbModel tlb(cfg.tlb);

    const Time sim_end = Time(cfg.simSeconds * double(kSec));
    const Time epoch = Time(cfg.epochMs * double(kMs));
    const double io_mean_ns = cfg.ioDelayMeanMs * double(kMs);
    const double compute_mean_ns = cfg.computeMeanUs * double(kUs);

    // Per-process round-robin runnable queues.
    std::vector<std::deque<Request*>> runq(procs);
    std::vector<Request> requests(cfg.concurrentRequests);
    // Requests in IO, tracked as a min-heap-ish sorted structure via the
    // event pattern: we keep a simple vector scan (populations are
    // small enough and this keeps the core loop obvious).
    std::vector<Request*> in_io;

    auto fresh = [&](Request* r, Time now) {
        r->startedAt = now;
        r->inIo = true;
        r->ioReadyAt = now + Time(rng.nextExponential(io_mean_ns));
        r->remainingComputeNs = rng.nextExponential(compute_mean_ns);
        if (r->remainingComputeNs < 1000)
            r->remainingComputeNs = 1000;
        in_io.push_back(r);
    };

    for (int i = 0; i < cfg.concurrentRequests; i++) {
        requests[i].process = i % procs;
        requests[i].id = uint64_t(i);
        fresh(&requests[i], 0);
    }

    FaasSimResult res;
    Time now = 0;
    Time busy_ns = 0;
    double latency_sum_ms = 0;
    int current_proc = -1;  // -1 = idle
    Time proc_ran_since = 0;
    uint64_t next_id = uint64_t(cfg.concurrentRequests);

    // CFS-like quantum for the multiprocess case.
    auto quantum = [&](int runnable_procs) -> Time {
        double q = cfg.schedPeriodMs /
                   std::max(1, runnable_procs) * double(kMs);
        double min_gran = cfg.minGranularityMs * double(kMs);
        return Time(q < min_gran ? min_gran : q);
    };

    auto drainIo = [&] {
        for (size_t i = 0; i < in_io.size();) {
            if (in_io[i]->ioReadyAt <= now) {
                in_io[i]->inIo = false;
                runq[in_io[i]->process].push_back(in_io[i]);
                in_io[i] = in_io.back();
                in_io.pop_back();
            } else {
                i++;
            }
        }
    };

    auto nextIoReady = [&]() -> Time {
        Time t = UINT64_MAX;
        for (Request* r : in_io)
            t = std::min(t, r->ioReadyAt);
        return t;
    };

    auto switchToProcess = [&](int p) {
        if (p == current_proc)
            return;
        if (!cfg.colorguard) {
            // Cross-process switch: kernel + TLB flush + cache re-warm.
            res.osContextSwitches++;
            now += Time(cfg.osSwitchDirectUs * double(kUs)) +
                   Time(cfg.cacheRewarmUs * double(kUs));
            busy_ns += Time(cfg.osSwitchDirectUs * double(kUs));
            tlb.flush();
        } else if (current_proc == -1) {
            // Waking from idle still counts as one kernel switch.
            res.osContextSwitches++;
        }
        current_proc = p;
        proc_ran_since = now;
    };

    while (now < sim_end) {
        drainIo();

        // Find the next process with runnable work, preferring the
        // current one until its quantum expires.
        int runnable_procs = 0;
        for (int p = 0; p < procs; p++)
            runnable_procs += !runq[p].empty();

        if (runnable_procs == 0) {
            // Core idles until the next IO completes.
            Time t = nextIoReady();
            SFI_CHECK(t != UINT64_MAX);
            if (current_proc != -1) {
                if (!cfg.colorguard)
                    res.osContextSwitches++;  // block -> idle
                current_proc = -1;
            }
            now = std::max(now, t);
            continue;
        }

        int p = current_proc;
        bool quantum_expired =
            current_proc != -1 && procs > 1 &&
            now - proc_ran_since >= quantum(runnable_procs);
        if (p == -1 || runq[p].empty() || quantum_expired) {
            // Round-robin to the next runnable process.
            int start = (p == -1 ? 0 : p + 1);
            for (int k = 0; k < procs; k++) {
                int cand = (start + k) % procs;
                if (!runq[cand].empty()) {
                    switchToProcess(cand);
                    break;
                }
            }
            p = current_proc;
        }

        // Run one epoch slice of the front instance (Tokio round-robin).
        Request* r = runq[p].front();
        runq[p].pop_front();

        // Sandbox transition in (gs base + pkru).
        res.sandboxTransitions++;
        now += Time(cfg.transitionNs);
        busy_ns += Time(cfg.transitionNs);

        // Touch the working set through the dTLB.
        double mem_ns = 0;
        for (int pg = 0; pg < cfg.runtimePages; pg++) {
            res.dtlbAccesses++;
            mem_ns += tlb.access(uint64_t(p) * 1000000 + uint64_t(pg));
        }
        for (int pg = 0; pg < cfg.instancePages; pg++) {
            res.dtlbAccesses++;
            mem_ns += tlb.access(0x100000000ull + r->id * 64 +
                                 uint64_t(pg));
        }
        now += Time(mem_ns);
        busy_ns += Time(mem_ns);

        double slice = std::min(double(epoch), r->remainingComputeNs);
        now += Time(slice);
        busy_ns += Time(slice);
        r->remainingComputeNs -= slice;

        if (r->remainingComputeNs <= 0.5) {
            res.completedRequests++;
            latency_sum_ms +=
                double(now - r->startedAt) / double(kMs);
            // Closed loop: a replacement request arrives immediately.
            r->id = next_id++;
            fresh(r, now);
        } else {
            runq[p].push_back(r);  // round-robin within the process
        }
    }

    res.dtlbMisses = tlb.misses();
    res.throughputRps =
        double(res.completedRequests) / cfg.simSeconds;
    res.avgLatencyMs = res.completedRequests
                           ? latency_sum_ms / double(res.completedRequests)
                           : 0;
    res.cpuBusyFraction = double(busy_ns) / double(sim_end);
    return res;
}

}  // namespace sfi::simx
