/**
 * @file
 * Single-core FaaS scaling simulation: ColorGuard (one address space,
 * epoch-scheduled) vs multiprocess scaling (§6.4.3, Figures 6/7).
 *
 * The simulated machine runs a closed-loop population of concurrent
 * requests, each alternating exponential IO waits (mean 5 ms — the
 * paper's Poisson IO model) with epoch-sliced compute. Two scheduling
 * regimes:
 *
 *  - ColorGuard: every instance lives in one process. Switching between
 *    instances costs one sandbox transition (gs base + wrpkru, ~tens of
 *    ns) and never flushes the TLB.
 *  - Multiprocess: instances are spread over N processes. The OS
 *    scheduler (CFS-like: quantum = period/N floored at a minimum
 *    granularity, plus blocking when a process has no runnable
 *    instance) switches processes; each switch pays a direct kernel
 *    cost, a full dTLB flush (modelled per-access afterwards), and a
 *    cache re-warm surcharge for the evicted working set.
 *
 * Cost parameters are documented in FaasSimConfig with their
 * provenance; EXPERIMENTS.md discusses sensitivity.
 */
#ifndef SFIKIT_SIMX_FAAS_SIM_H_
#define SFIKIT_SIMX_FAAS_SIM_H_

#include <cstdint>

#include "simx/tlb.h"

namespace sfi::simx {

struct FaasSimConfig
{
    /** 1..15 processes (Figure 6's x-axis); ignored when colorguard. */
    int numProcesses = 1;
    /** Single-address-space ColorGuard scheduling. */
    bool colorguard = false;

    /** Concurrent in-flight requests (closed loop). */
    int concurrentRequests = 480;
    /** Mean exponential IO wait per request (paper: 5 ms). */
    double ioDelayMeanMs = 5.0;
    /** Mean exponential compute per request. */
    double computeMeanUs = 150.0;
    /** Epoch-interruption period (paper: 1 ms). */
    double epochMs = 1.0;

    /** Sandbox transition cost incl. wrpkru (§6.4.1 measures ~51 ns). */
    double transitionNs = 52.0;
    /** Direct kernel cost of a process context switch. */
    double osSwitchDirectUs = 2.0;
    /**
     * Indirect cost of a cross-process switch: re-warming the evicted
     * working set through the memory hierarchy (LLC/DRAM refill of
     * O(1 MiB) state ~ 100+ us). The dominant term behind Figure 6's
     * gap; see EXPERIMENTS.md for the sensitivity sweep.
     */
    double cacheRewarmUs = 150.0;
    /** CFS-like scheduling period and minimum granularity. */
    double schedPeriodMs = 12.0;
    double minGranularityMs = 1.0;

    /** Pages touched per compute slice. */
    int instancePages = 8;    ///< per-request private state
    int runtimePages = 64;    ///< per-process shared runtime/JIT pages

    /**
     * Modelled as an L2 STLB: big enough that the shared runtime and
     * hot instances stay resident — until a process switch flushes it.
     */
    TlbModel::Config tlb{2048, 8, 4, 5.0};

    double simSeconds = 10.0;
    uint64_t seed = 42;
};

struct FaasSimResult
{
    double throughputRps = 0;
    uint64_t completedRequests = 0;
    /** OS-level process context switches (Figure 7a). */
    uint64_t osContextSwitches = 0;
    /** In-process sandbox transitions. */
    uint64_t sandboxTransitions = 0;
    /** dTLB misses (Figure 7b). */
    uint64_t dtlbMisses = 0;
    uint64_t dtlbAccesses = 0;

    /** dTLB miss rate — the load-independent Figure 7b comparison. */
    double
    dtlbMissRate() const
    {
        return dtlbAccesses ? double(dtlbMisses) / double(dtlbAccesses)
                            : 0;
    }

    /** dTLB misses normalized per completed request. */
    double
    dtlbMissesPerRequest() const
    {
        return completedRequests
                   ? double(dtlbMisses) / double(completedRequests)
                   : 0;
    }
    double avgLatencyMs = 0;
    double cpuBusyFraction = 0;
};

FaasSimResult simulateFaas(const FaasSimConfig& config);

}  // namespace sfi::simx

#endif  // SFIKIT_SIMX_FAAS_SIM_H_
