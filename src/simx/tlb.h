/**
 * @file
 * A set-associative dTLB model with page-walk costs.
 *
 * Used by the FaaS scaling simulation (Figure 7b): OS process switches
 * flush the TLB (CR3 reload without PCID), so multiprocess scaling pays
 * recurring page-walk costs that single-address-space ColorGuard
 * scheduling avoids — plus §8's observation that 5-level paging makes
 * each walk ~25% more expensive.
 */
#ifndef SFIKIT_SIMX_TLB_H_
#define SFIKIT_SIMX_TLB_H_

#include <cstdint>
#include <vector>

namespace sfi::simx {

class TlbModel
{
  public:
    struct Config
    {
        uint32_t entries = 64;  ///< dTLB entries (L1 dTLB-sized)
        uint32_t ways = 4;
        int walkLevels = 4;     ///< 4-level vs 5-level paging (§8)
        double walkCostNsPerLevel = 5.0;
    };

    TlbModel();
    explicit TlbModel(const Config& config);

    /**
     * Simulates a data access to @p page (virtual page number).
     * Returns the access cost in ns (0 on hit) and updates stats.
     */
    double access(uint64_t page);

    /** Full flush (process context switch without PCID). */
    void flush();

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t flushes() const { return flushes_; }
    double missCostNs() const;

  private:
    Config cfg_;
    uint32_t sets_;
    /** entry = page number + 1; 0 = invalid. LRU via per-set ordering. */
    std::vector<std::vector<uint64_t>> sets_data_;
    uint64_t hits_ = 0, misses_ = 0, flushes_ = 0;
};

}  // namespace sfi::simx

#endif  // SFIKIT_SIMX_TLB_H_
