#include "simx/admission_sim.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "base/logging.h"
#include "base/rng.h"

namespace sfi::simx {
namespace {

/** One queued admission. */
struct Item
{
    uint64_t id;
    uint64_t arrivalNs;
    /** Start of the sojourn clock (arrival, or admission time under
     *  Backpressure). */
    uint64_t sojournStartNs;
};

struct Shard
{
    std::deque<Item> queue;
    /** Servers homed here that are currently in service. */
    int busy = 0;
    /** Servers homed here, total. */
    int capacity = 0;
};

/** An in-flight request: (completion time, home shard of its server,
 *  sojourn start). Min-heap on completion time; ties by id order. */
struct InFlight
{
    uint64_t doneNs;
    uint64_t id;
    int serverShard;
    uint64_t sojournStartNs;

    bool
    operator>(const InFlight& o) const
    {
        return doneNs != o.doneNs ? doneNs > o.doneNs : id > o.id;
    }
};

/** The degradation ladder of mpk::KeyRing, with one knob per rung. */
struct KeyModel
{
    int space = 0;  ///< 0 = disabled
    int freeKeys = 0;
    int retired = 0;
    int live = 0;
    uint64_t recycles = 0;
    uint64_t shares = 0;

    /** Returns the stall (ns) the acquiring request pays. */
    uint64_t
    acquire(double stall_ns)
    {
        if (space == 0)
            return 0;
        if (freeKeys > 0) {
            freeKeys--;
            live++;
            return 0;
        }
        if (retired > 0) {
            // Recycle epoch: quiesce, re-tag, batch-refill.
            recycles++;
            freeKeys += retired;
            retired = 0;
            freeKeys--;
            live++;
            return uint64_t(stall_ns);
        }
        // Every key live: share one (spatial striping still holds).
        shares++;
        live++;
        return 0;
    }

    void
    release()
    {
        if (space == 0)
            return;
        live--;
        // A released lease retires its key only when it was the last
        // holder; with shares in play approximate by retiring while
        // holders fit in the space.
        if (live < space)
            retired++;
    }
};

}  // namespace

AdmissionSimResult
simulateAdmission(const AdmissionSimConfig& config,
                  const std::vector<uint64_t>& arrival_ns)
{
    AdmissionSimResult r;
    const int num_shards = std::max(config.shards, 1);
    const int servers = std::max(config.servers, 1);
    const size_t bound = std::max<uint32_t>(config.queueDepth, 1);
    const bool bounded = config.policy != AdmissionPolicy::None;

    std::vector<Shard> shards(static_cast<size_t>(num_shards));
    for (int i = 0; i < num_shards; i++)
        shards[size_t(i)].capacity =
            servers / num_shards + (i < servers % num_shards ? 1 : 0);

    std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
        inflight;
    Rng rng(config.seed);
    KeyModel keys;
    keys.space = config.keySpace;
    keys.freeKeys = config.keySpace;

    size_t next = 0;        // arrival cursor
    size_t rr = 0;          // round-robin shard assignment
    uint64_t last_done = 0; // last completion timestamp

    // Dispatch: idle servers drain their own shard's queue, then (work
    // stealing) the oldest admission across sibling shards — mirroring
    // claimForService in the host.
    auto dispatch = [&](uint64_t now) {
        for (int s = 0; s < num_shards; s++) {
            Shard& home = shards[size_t(s)];
            while (home.busy < home.capacity) {
                Item it;
                bool stolen = false;
                if (!home.queue.empty()) {
                    it = home.queue.front();
                    home.queue.pop_front();
                } else if (config.workStealing) {
                    // Steal the globally oldest queued admission.
                    int victim = -1;
                    for (int v = 0; v < num_shards; v++) {
                        if (v == s || shards[size_t(v)].queue.empty())
                            continue;
                        if (victim < 0 ||
                            shards[size_t(v)].queue.front().id <
                                shards[size_t(victim)].queue.front().id)
                            victim = v;
                    }
                    if (victim < 0)
                        break;
                    it = shards[size_t(victim)].queue.front();
                    shards[size_t(victim)].queue.pop_front();
                    stolen = true;
                } else {
                    break;
                }
                if (stolen)
                    r.stolen++;
                home.busy++;
                uint64_t stall = keys.acquire(config.recycleStallNs);
                uint64_t svc = uint64_t(
                    rng.nextExponential(config.serviceMeanNs));
                inflight.push(InFlight{now + stall + svc, it.id, s,
                                       it.sojournStartNs});
            }
        }
    };

    auto track_depth = [&](const Shard& sh) {
        r.maxDepth = std::max<uint64_t>(r.maxDepth, sh.queue.size());
    };

    // Admit one arrival at time `now`, applying the overflow policy.
    // Returns false when the arrival must wait upstream (Backpressure).
    auto admit = [&](uint64_t id, uint64_t now, uint64_t arrival) {
        Shard& sh = shards[rr++ % size_t(num_shards)];
        if (bounded && sh.queue.size() >= bound) {
            r.overloadArrivals++;
            switch (config.policy) {
            case AdmissionPolicy::Reject:
                r.rejected++;
                return true;
            case AdmissionPolicy::Shed:
                sh.queue.pop_front();
                r.shed++;
                sh.queue.push_back(Item{id, arrival, arrival});
                r.admitted++;
                track_depth(sh);
                return true;
            case AdmissionPolicy::Backpressure:
                return false;
            case AdmissionPolicy::None:
                break;
            }
        }
        uint64_t sojourn_start =
            config.policy == AdmissionPolicy::Backpressure ? now : arrival;
        r.admissionDelayNs.add(now - arrival);
        sh.queue.push_back(Item{id, arrival, sojourn_start});
        r.admitted++;
        track_depth(sh);
        return true;
    };

    // Upstream FIFO of arrivals Backpressure has not yet admitted.
    std::deque<std::pair<uint64_t, uint64_t>> upstream;  // (id, arrival)

    auto pump_upstream = [&](uint64_t now) {
        while (!upstream.empty()) {
            // Re-check space: admit() consumes it round-robin.
            bool placed = false;
            for (int s = 0; s < num_shards && !placed; s++) {
                Shard& sh = shards[rr % size_t(num_shards)];
                if (sh.queue.size() < bound) {
                    auto [id, arr] = upstream.front();
                    upstream.pop_front();
                    admit(id, now, arr);
                    placed = true;
                } else {
                    rr++;
                }
            }
            if (!placed)
                break;
        }
    };

    while (next < arrival_ns.size() || !inflight.empty()) {
        uint64_t next_arrival =
            next < arrival_ns.size() ? arrival_ns[next] : UINT64_MAX;
        uint64_t next_done =
            !inflight.empty() ? inflight.top().doneNs : UINT64_MAX;

        if (next_arrival <= next_done) {
            uint64_t now = next_arrival;
            uint64_t id = next++;
            r.arrivals++;
            if (!admit(id, now, now))
                upstream.emplace_back(id, now);
            dispatch(now);
        } else {
            InFlight f = inflight.top();
            inflight.pop();
            uint64_t now = f.doneNs;
            last_done = now;
            shards[size_t(f.serverShard)].busy--;
            keys.release();
            r.completed++;
            r.sojournNs.add(now - f.sojournStartNs);
            pump_upstream(now);
            dispatch(now);
        }
    }

    r.keyRecycles = keys.recycles;
    r.keyShares = keys.shares;
    r.elapsedNs = double(last_done);
    r.throughputRps =
        last_done > 0 ? double(r.completed) / (double(last_done) / 1e9) : 0;

    // Conservation: every arrival is exactly one of
    // completed / rejected / shed.
    SFI_CHECK(r.completed + r.rejected + r.shed == r.arrivals);
    return r;
}

}  // namespace sfi::simx
