#include "simx/tlb.h"

#include <algorithm>

#include "base/logging.h"
#include "base/units.h"

namespace sfi::simx {

TlbModel::TlbModel() : TlbModel(Config()) {}

TlbModel::TlbModel(const Config& config) : cfg_(config)
{
    SFI_CHECK(cfg_.ways > 0 && cfg_.entries >= cfg_.ways);
    sets_ = cfg_.entries / cfg_.ways;
    SFI_CHECK(isPow2(sets_));
    sets_data_.assign(sets_, {});
}

double
TlbModel::missCostNs() const
{
    return cfg_.walkLevels * cfg_.walkCostNsPerLevel;
}

double
TlbModel::access(uint64_t page)
{
    auto& set = sets_data_[page & (sets_ - 1)];
    uint64_t tagged = page + 1;
    auto it = std::find(set.begin(), set.end(), tagged);
    if (it != set.end()) {
        // Move to MRU position (front).
        set.erase(it);
        set.insert(set.begin(), tagged);
        hits_++;
        return 0.0;
    }
    misses_++;
    set.insert(set.begin(), tagged);
    if (set.size() > cfg_.ways)
        set.pop_back();
    return missCostNs();
}

void
TlbModel::flush()
{
    for (auto& set : sets_data_)
        set.clear();
    flushes_++;
}

}  // namespace sfi::simx
