/**
 * @file
 * Discrete-event model of the FaaS host's admission layer: a c-server
 * queueing system with per-shard bounded admission queues, the three
 * overflow policies (Reject / Shed / Backpressure), work stealing, and
 * a coarse model of ColorGuard key leasing/recycling.
 *
 * The model consumes the *same* arrival trace the real host precomputes
 * (faas::LoadGen::schedule offsets), so a (seed, rate, process) triple
 * names one workload for both systems. That makes the sim
 * cross-validatable: run the real scheduler and this model on the same
 * trace and the conservation counters (admitted / rejected / shed /
 * completed) and degradation shape must agree — drift in either
 * direction flags a modeling bug or a scheduler regression
 * (tests/simx/admission_sim_test.cc does exactly this).
 *
 * A "server" is one request slot of the real host (maxConcurrent), not
 * a CPU: during a request's IO waits the slot stays occupied while the
 * worker thread serves other slots, so slot residence time — not CPU
 * time — is the service time of the queueing system. Calibrate
 * serviceMeanNs from the real host's measured latencyServiceNs mean.
 */
#ifndef SFIKIT_SIMX_ADMISSION_SIM_H_
#define SFIKIT_SIMX_ADMISSION_SIM_H_

#include <cstdint>
#include <vector>

#include "base/stats.h"

namespace sfi::simx {

/** Mirrors faas::AdmissionPolicy (simx must not depend on faas). */
enum class AdmissionPolicy : uint8_t
{
    None,
    Reject,
    Shed,
    Backpressure,
};

struct AdmissionSimConfig
{
    /** Request slots (the real host's maxConcurrent), all shards. */
    int servers = 64;
    /** Worker shards, each with its own bounded admission queue. */
    int shards = 1;
    /** Per-shard queue bound (ignored under None, where the queue is
     *  the unbounded arrival backlog itself). */
    uint32_t queueDepth = 64;
    AdmissionPolicy policy = AdmissionPolicy::None;

    /** Mean exponential slot-residence time per request (ns). */
    double serviceMeanNs = 5e6;
    /** Idle servers take the oldest admission from sibling shards. */
    bool workStealing = true;

    /**
     * ColorGuard key model: usable protection keys (15 for MPK), or 0
     * to disable. Each in-service request holds a key lease; releases
     * retire the key; an acquire that finds the free list empty
     * recycles every retired key in one epoch (keyRecycles++, the
     * acquiring request stalled by recycleStallNs) or, when every key
     * is live, shares one (keyShares++) — the same degradation ladder
     * as mpk::KeyRing.
     */
    int keySpace = 0;
    double recycleStallNs = 20'000;

    uint64_t seed = 42;
};

struct AdmissionSimResult
{
    uint64_t arrivals = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t shed = 0;
    uint64_t completed = 0;
    /** Admissions served by a non-home shard's server. */
    uint64_t stolen = 0;
    /** Arrivals that found every shard queue full. */
    uint64_t overloadArrivals = 0;
    /** High-water admission-queue depth over all shards. */
    uint64_t maxDepth = 0;

    uint64_t keyRecycles = 0;
    uint64_t keyShares = 0;

    /** Sojourn (policy-defined start -> completion), ns. Under
     *  Backpressure the clock starts at admission, as in the host. */
    LogHistogram sojournNs;
    /** Arrival -> admission wait, ns (Backpressure's upstream queue). */
    LogHistogram admissionDelayNs;

    double elapsedNs = 0;
    double throughputRps = 0;
};

/**
 * Runs the model over @p arrival_ns (absolute ns offsets, sorted
 * non-decreasing — faas::LoadGen::schedule output). Deterministic for a
 * given (config, trace).
 */
AdmissionSimResult simulateAdmission(const AdmissionSimConfig& config,
                                     const std::vector<uint64_t>& arrival_ns);

}  // namespace sfi::simx

#endif  // SFIKIT_SIMX_ADMISSION_SIM_H_
