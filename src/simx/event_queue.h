/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * deterministic tie-breaking (insertion order).
 */
#ifndef SFIKIT_SIMX_EVENT_QUEUE_H_
#define SFIKIT_SIMX_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/logging.h"

namespace sfi::simx {

/** Simulated time in nanoseconds. */
using Time = uint64_t;

inline constexpr Time kUs = 1000;
inline constexpr Time kMs = 1000 * kUs;
inline constexpr Time kSec = 1000 * kMs;

/** A deterministic discrete-event queue. */
class EventQueue
{
  public:
    /** Schedules @p fn at absolute time @p at (>= now). */
    void
    schedule(Time at, std::function<void()> fn)
    {
        SFI_CHECK_MSG(at >= now_, "scheduling into the past");
        heap_.push(Entry{at, seq_++, std::move(fn)});
    }

    void
    scheduleAfter(Time delay, std::function<void()> fn)
    {
        schedule(now_ + delay, std::move(fn));
    }

    /** Runs events until the queue drains or time reaches @p until. */
    void
    runUntil(Time until)
    {
        while (!heap_.empty() && heap_.top().at <= until) {
            Entry e = heap_.top();
            heap_.pop();
            now_ = e.at;
            e.fn();
        }
        if (now_ < until)
            now_ = until;
    }

    Time now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    size_t pending() const { return heap_.size(); }

  private:
    struct Entry
    {
        Time at;
        uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Entry& o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Time now_ = 0;
    uint64_t seq_ = 0;
};

}  // namespace sfi::simx

#endif  // SFIKIT_SIMX_EVENT_QUEUE_H_
