/**
 * @file
 * expat_lite: a from-scratch, non-validating XML pull parser that runs
 * entirely inside a sandbox heap through an access policy — the
 * stand-in for Firefox's Wasm-sandboxed libexpat (§6.1).
 *
 * Supports the subset SVG documents exercise: elements, attributes,
 * self-closing tags, character data, comments, CDATA sections, XML
 * declarations/processing instructions, and the five predefined
 * entities. The parser's working state (element-name stack) also lives
 * in the sandbox heap, as it would in the real sandboxed library.
 */
#ifndef SFIKIT_W2C_EXPAT_LITE_H_
#define SFIKIT_W2C_EXPAT_LITE_H_

#include <cstdint>
#include <string>

#include "w2c/policy.h"

namespace sfi::w2c {

/** Aggregated parse results (what the host would collect via events). */
struct XmlStats
{
    bool wellFormed = false;
    uint32_t elements = 0;
    uint32_t attributes = 0;
    uint32_t textBytes = 0;
    uint32_t maxDepth = 0;
    uint32_t entities = 0;
    /** Order-sensitive hash over names/values — the differential check. */
    uint64_t checksum = 0;
};

/**
 * Parses the document at [doc, doc+len) in the sandbox heap. Uses
 * [scratch, scratch+64KiB) for the element stack.
 */
template <typename P>
XmlStats parseXml(const P& m, uint32_t doc, uint32_t len,
                  uint32_t scratch);

/** Host-side helper: a deterministic SVG-toolbar-like document
 *  (@p icons icon groups, concatenated @p repeat times, §6.1). */
std::string makeSvgDocument(int icons, int repeat);

}  // namespace sfi::w2c

#endif  // SFIKIT_W2C_EXPAT_LITE_H_
