/**
 * @file
 * Sandbox heap management for the wasm2c-style path: a guard-protected
 * linear memory plus policy construction and the per-entry segment-base
 * switch (§4.1's "set the segment base on function entry").
 */
#ifndef SFIKIT_W2C_HEAP_H_
#define SFIKIT_W2C_HEAP_H_

#include <memory>

#include "base/result.h"
#include "runtime/memory.h"
#include "seg/seg.h"
#include "w2c/policy.h"

namespace sfi::w2c {

/** A linear memory usable through any access policy. */
class SandboxHeap
{
  public:
    /**
     * Creates a heap with @p committed_bytes of read-write memory.
     * Reserves the full 4 GiB + guard for guard-based policies.
     */
    static Result<SandboxHeap> create(uint64_t committed_bytes);

    uint8_t* base() const { return memory_.base(); }
    uint64_t size() const { return memory_.byteSize(); }

    /** Builds a policy bound to this heap. */
    template <typename P>
    P
    policy() const
    {
        P p;
        p.base = memory_.base();
        p.size = memory_.byteSize();
        return p;
    }

    /**
     * Enters the sandbox for policy P: sets %gs to the heap base when P
     * addresses through the segment. The returned guard restores the
     * previous base — wasm2c's module-entry discipline.
     */
    template <typename P>
    std::unique_ptr<seg::ScopedGsBase>
    enter() const
    {
        if constexpr (P::kUsesGs) {
            return std::make_unique<seg::ScopedGsBase>(
                reinterpret_cast<uint64_t>(memory_.base()));
        } else {
            return nullptr;
        }
    }

    /**
     * Amortized entry (the lean transition tier): goes through the
     * per-thread %gs cache, so re-entering the same heap — the common
     * per-glyph / per-chunk harness pattern — skips the segment-base
     * write entirely, and nothing is restored on exit (the host never
     * addresses through %gs). Use enter() when the previous base must
     * be reinstated.
     */
    template <typename P>
    void
    enterCached() const
    {
        if constexpr (P::kUsesGs) {
            seg::CachedGsBase guard(
                reinterpret_cast<uint64_t>(memory_.base()));
        }
    }

    rt::LinearMemory& memory() { return memory_; }

  private:
    rt::LinearMemory memory_;
};

}  // namespace sfi::w2c

#endif  // SFIKIT_W2C_HEAP_H_
