#include "w2c/heap.h"

#include <cstdlib>

#include "base/units.h"

namespace sfi::w2c {

namespace {
void (*g_bounds_handler)() = nullptr;
}  // namespace

void
boundsTrap()
{
    if (g_bounds_handler != nullptr)
        g_bounds_handler();  // expected to longjmp
    SFI_FATAL("w2c bounds check failed");
}

void
setBoundsTrapHandler(void (*handler)())
{
    g_bounds_handler = handler;
}

Result<SandboxHeap>
SandboxHeap::create(uint64_t committed_bytes)
{
    rt::LinearMemory::Config cfg;
    uint32_t pages = static_cast<uint32_t>(
        alignUp(committed_bytes, kWasmPageSize) / kWasmPageSize);
    cfg.minPages = pages;
    cfg.maxPages = pages;
    cfg.guardBytes = 4 * kGiB;
    cfg.reserveFull = true;
    auto mem = rt::LinearMemory::create(cfg);
    if (!mem)
        return Result<SandboxHeap>::error(mem.message());
    SandboxHeap heap;
    heap.memory_ = std::move(*mem);
    return heap;
}

}  // namespace sfi::w2c
