/**
 * @file
 * graphite_lite: a from-scratch scanline glyph rasterizer running inside
 * a sandbox heap — the stand-in for Firefox's Wasm-sandboxed libgraphite
 * font engine (§6.1).
 *
 * A synthetic font stores per-glyph outlines as quadratic-Bezier
 * contours in 26.6 fixed point. Rendering flattens curves into an edge
 * list (in sandbox scratch memory), sorts edges, and fills scanlines by
 * the nonzero winding rule into a coverage bitmap (also in the heap).
 * Firefox re-enters the sandbox per glyph, so the harness sets the
 * segment base once per renderGlyph call — capturing the transition
 * cost the paper measures.
 */
#ifndef SFIKIT_W2C_GRAPHITE_LITE_H_
#define SFIKIT_W2C_GRAPHITE_LITE_H_

#include <cstdint>

#include "w2c/policy.h"

namespace sfi::w2c {

/** Number of glyphs in the synthetic font. */
inline constexpr uint32_t kFontGlyphs = 96;  // printable ASCII

/**
 * Host-side: writes the synthetic font tables at @p font_off in the raw
 * heap. Returns the table size in bytes.
 */
uint32_t buildSyntheticFont(uint8_t* heap_base, uint32_t font_off);

/**
 * Rasterizes glyph @p glyph_id at @p size_px into a size_px x size_px
 * coverage bitmap at @p bitmap_off. @p scratch is edge-list workspace
 * (>= 256 KiB). Returns a coverage checksum.
 */
template <typename P>
uint64_t renderGlyph(const P& m, uint32_t font_off, uint32_t glyph_id,
                     uint32_t size_px, uint32_t bitmap_off,
                     uint32_t scratch);

}  // namespace sfi::w2c

#endif  // SFIKIT_W2C_GRAPHITE_LITE_H_
