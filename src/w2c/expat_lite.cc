#include "w2c/expat_lite.h"

#include <cstdio>

namespace sfi::w2c {

namespace {

bool
isNameStart(uint8_t c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
}

bool
isNameChar(uint8_t c)
{
    return isNameStart(c) || (c >= '0' && c <= '9') || c == '-' ||
           c == '.';
}

bool
isSpace(uint8_t c)
{
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

template <typename P>
XmlStats
parseXml(const P& m, uint32_t doc, uint32_t len, uint32_t scratch)
{
    XmlStats st;
    uint32_t pos = 0;
    // Element stack in the heap: entries are (nameHash u32, nameLen u32).
    uint32_t depth = 0;
    const uint32_t kMaxDepth = 4096;

    // always_inline on every helper: an outlined lambda body would take
    // its closure in %rdi, hiding the policy object's provenance from
    // the static object verifier; inlined, every access traces to `m`.
    auto peek = [&](uint32_t at) __attribute__((always_inline)) -> uint8_t {
        return at < len ? m.template loadAt<uint8_t>(doc, at) : 0;
    };
    auto mix = [&](uint64_t v) {
        st.checksum = st.checksum * 1099511628211ull + v;
    };

    // Scans a Name at pos; returns its hash and advances pos.
    auto scanName = [&](uint32_t* hash)
        __attribute__((always_inline)) -> bool {
        if (!isNameStart(peek(pos)))
            return false;
        uint32_t h = 2166136261u;
        while (pos < len && isNameChar(peek(pos))) {
            h = (h ^ peek(pos)) * 16777619u;
            pos++;
        }
        *hash = h;
        return true;
    };

    auto skipSpace = [&]() __attribute__((always_inline)) {
        while (pos < len && isSpace(peek(pos)))
            pos++;
    };

    // Decodes text content up to the next '<'; counts entities.
    auto scanText = [&]() __attribute__((always_inline)) {
        while (pos < len && peek(pos) != '<') {
            uint8_t c = peek(pos);
            if (c == '&') {
                // &lt; &gt; &amp; &apos; &quot; and numeric &#NN;.
                uint32_t start = pos + 1;
                uint32_t end = start;
                while (end < len && end - start < 8 && peek(end) != ';')
                    end++;
                if (end >= len || peek(end) != ';')
                    return false;
                uint32_t h = 0;
                for (uint32_t i = start; i < end; i++)
                    h = h * 31 + peek(i);
                mix(h);
                st.entities++;
                pos = end + 1;
            } else {
                st.textBytes++;
                pos++;
            }
        }
        return true;
    };

    while (pos < len) {
        if (peek(pos) != '<') {
            if (!scanText())
                return st;
            continue;
        }
        pos++;  // consume '<'
        uint8_t c = peek(pos);

        if (c == '?') {
            // <?xml ... ?> or processing instruction.
            pos++;
            while (pos + 1 < len &&
                   !(peek(pos) == '?' && peek(pos + 1) == '>')) {
                pos++;
            }
            if (pos + 1 >= len)
                return st;
            pos += 2;
            continue;
        }
        if (c == '!') {
            pos++;
            if (peek(pos) == '-' && peek(pos + 1) == '-') {
                pos += 2;  // comment
                while (pos + 2 < len &&
                       !(peek(pos) == '-' && peek(pos + 1) == '-' &&
                         peek(pos + 2) == '>')) {
                    pos++;
                }
                if (pos + 2 >= len)
                    return st;
                pos += 3;
                continue;
            }
            // <![CDATA[ ... ]]>
            const char* cdata = "[CDATA[";
            bool is_cdata = true;
            for (int i = 0; i < 7; i++) {
                if (peek(pos + uint32_t(i)) != uint8_t(cdata[i]))
                    is_cdata = false;
            }
            if (is_cdata) {
                pos += 7;
                while (pos + 2 < len &&
                       !(peek(pos) == ']' && peek(pos + 1) == ']' &&
                         peek(pos + 2) == '>')) {
                    st.textBytes++;
                    pos++;
                }
                if (pos + 2 >= len)
                    return st;
                pos += 3;
                continue;
            }
            // DOCTYPE etc.: skip to '>'.
            while (pos < len && peek(pos) != '>')
                pos++;
            pos++;
            continue;
        }
        if (c == '/') {
            // Closing tag: must match the top of the stack.
            pos++;
            uint32_t h;
            if (!scanName(&h) || depth == 0)
                return st;
            uint32_t expect = m.template loadAt<uint32_t>(
                scratch, depth - 1);
            if (expect != h)
                return st;  // mismatched tag
            depth--;
            skipSpace();
            if (peek(pos) != '>')
                return st;
            pos++;
            mix(h ^ 0x5a5a);
            continue;
        }

        // Opening tag.
        uint32_t h;
        if (!scanName(&h))
            return st;
        st.elements++;
        mix(h);

        // Attributes.
        while (true) {
            skipSpace();
            uint8_t n = peek(pos);
            if (n == '>' || n == '/' || pos >= len)
                break;
            uint32_t ah;
            if (!scanName(&ah))
                return st;
            skipSpace();
            if (peek(pos) != '=')
                return st;
            pos++;
            skipSpace();
            uint8_t quote = peek(pos);
            if (quote != '"' && quote != '\'')
                return st;
            pos++;
            uint32_t vh = 2166136261u;
            while (pos < len && peek(pos) != quote) {
                vh = (vh ^ peek(pos)) * 16777619u;
                pos++;
            }
            if (pos >= len)
                return st;
            pos++;  // closing quote
            st.attributes++;
            mix((uint64_t(ah) << 32) | vh);
        }

        if (peek(pos) == '/') {
            pos++;
            if (peek(pos) != '>')
                return st;
            pos++;
            mix(h ^ 0x5a5a);  // implicit close
            continue;
        }
        if (peek(pos) != '>')
            return st;
        pos++;
        if (depth >= kMaxDepth)
            return st;
        m.template storeAt<uint32_t>(scratch, depth, h);
        depth++;
        if (depth > st.maxDepth)
            st.maxDepth = depth;
    }

    st.wellFormed = (depth == 0);
    return st;
}

std::string
makeSvgDocument(int icons, int repeat)
{
    std::string icon_block;
    icon_block += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
    icon_block += "<svg xmlns=\"http://www.w3.org/2000/svg\" "
                  "width=\"1024\" height=\"32\">\n";
    icon_block += "<!-- toolbar icon strip -->\n";
    for (int i = 0; i < icons; i++) {
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "<g id=\"icon%d\" transform=\"translate(%d,0)\">"
            "<rect x=\"1\" y=\"1\" width=\"30\" height=\"30\" "
            "rx=\"%d\" fill=\"#4a90d9\" opacity=\"0.%02d\"/>"
            "<path d=\"M%d %d L%d %d Q%d %d %d %d Z\" "
            "stroke=\"#222\" stroke-width=\"2\" fill=\"none\"/>"
            "<text x=\"16\" y=\"28\" font-size=\"6\">ic&amp;n "
            "&#37;d</text>"
            "</g>\n",
            i, i * 32, (i % 7) + 1, (i % 90) + 10, (i * 3) % 20 + 4,
            (i * 5) % 20 + 4, (i * 7) % 20 + 8, (i * 11) % 20 + 8,
            16, 16, (i * 13) % 24 + 4, (i * 17) % 24 + 4);
        icon_block += buf;
    }
    icon_block += "</svg>\n";

    std::string doc;
    for (int r = 0; r < repeat; r++)
        doc += icon_block;
    return doc;
}

// Explicit instantiations for every policy.
template XmlStats parseXml<NativePolicy>(const NativePolicy&, uint32_t,
                                         uint32_t, uint32_t);
template XmlStats parseXml<BaseAddPolicy>(const BaseAddPolicy&, uint32_t,
                                          uint32_t, uint32_t);
template XmlStats parseXml<SeguePolicy>(const SeguePolicy&, uint32_t,
                                        uint32_t, uint32_t);
template XmlStats parseXml<BoundsPolicy>(const BoundsPolicy&, uint32_t,
                                         uint32_t, uint32_t);
template XmlStats parseXml<SegueBoundsPolicy>(const SegueBoundsPolicy&,
                                              uint32_t, uint32_t,
                                              uint32_t);

}  // namespace sfi::w2c
