/**
 * @file
 * wasm2c-style compile-time SFI: heap-access policies (§4.1).
 *
 * wasm2c transpiles Wasm to C in which every memory access is a
 * (heap base + u32 offset) computation; the host C compiler then
 * optimizes the result. sfikit reproduces that pipeline by writing the
 * workloads once against a *policy* template parameter that decides how
 * a u32 offset turns into a machine access:
 *
 *   NativePolicy       native-width (64-bit) index arithmetic folded
 *                      into addressing modes — the "native execution"
 *                      baseline of Figure 3.
 *   BaseAddPolicy      classic wasm2c SFI: 32-bit offset arithmetic
 *                      materialized, then added to a 64-bit base — the
 *                      two-instruction Figure 1b pattern.
 *   SeguePolicy        the base lives in %gs; a single gs-relative
 *                      instruction performs the access (Figure 1c).
 *   BoundsPolicy       explicit limit check before each access — what
 *                      engines emit for 64-bit memories (§6.1).
 *   SegueBoundsPolicy  bounds check + gs-relative access.
 *
 * All SFI policies use u32 offsets into a 4 GiB-reserved linear memory
 * with trailing guard pages, so stray accesses fault exactly as in
 * production Wasm engines.
 *
 * Verifiability-constrained codegen: the SFI accessors pin the address
 * formation the host compiler may use, so the static object verifier
 * (verify/objcheck.h) can prove the emitted code rather than trust it —
 * the same discipline NaCl and Lucet applied to their emitters, moved
 * to the wasm2c boundary:
 *
 *  - gs accesses take the *whole* effective address in one register
 *    whose value is a zero-extended u32 ("r" operand, not "m"), so the
 *    verifier's proof obligation is `reg < 2^32` against the
 *    4 GiB + 4 GiB guard reservation; free-form [base+index*scale]
 *    folding into the gs operand would require re-deriving GCC's
 *    value-range analysis to bound it.
 *  - plain-pointer policies (BaseAdd/Bounds) pass the u32 offset
 *    through an empty asm barrier, which (a) materializes it in a
 *    32-bit register the verifier can see is zero-extended and (b)
 *    keeps GCC from re-associating `base + u32(a + i*s)` into
 *    `base + a + i*s` over 64 bits — correct only under a no-overflow
 *    argument the object code no longer carries.
 *
 * The cost is at most one lea per access (the address is computed
 * anyway; it just can't merge into the accessing instruction), measured
 * in EXPERIMENTS.md alongside the verified-kernel matrix. NativePolicy
 * is deliberately unconstrained: it is the native baseline and the
 * verifier's single explicit exemption.
 */
#ifndef SFIKIT_W2C_POLICY_H_
#define SFIKIT_W2C_POLICY_H_

#include <cstdint>
#include <cstring>

#include "base/logging.h"

namespace sfi::w2c {

/** Called by bounds-checking policies on a failed check. Noreturn;
 *  defaults to abort, replaceable for tests. */
[[noreturn]] void boundsTrap();

/** Hook used by tests to intercept bounds traps (longjmp target). */
void setBoundsTrapHandler(void (*handler)());

/** Native baseline: pointer-width arithmetic, direct addressing. */
struct NativePolicy
{
    static constexpr const char* kName = "native";
    static constexpr bool kUsesGs = false;

    uint8_t* base = nullptr;
    uint64_t size = 0;

    using Index = size_t;

    template <typename T>
    T
    load(Index off) const
    {
        T v;
        std::memcpy(&v, base + off, sizeof v);
        return v;
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        std::memcpy(base + off, &v, sizeof v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        return load<T>(array + idx * sizeof(T));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        store<T>(array + idx * sizeof(T), v);
    }
};

namespace detail {

/**
 * Materializes a u32 offset in a register the optimizer treats as
 * opaque: the verifier then sees a 32-bit definition (hence a provably
 * zero-extended index) feeding the access, and GCC cannot re-associate
 * the wrapped u32 arithmetic into 64-bit addressing forms.
 */
inline uint32_t
pinOffset(uint32_t off)
{
    asm("" : "+r"(off));
    return off;
}

// The shadow "m" operands below are lvalues at raw u32 addresses; GCC's
// array-bounds analysis flags constant-folded low addresses even though
// the asm templates never reference them (they only carry load/store
// dependence, replacing a far costlier "memory" clobber).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"

/**
 * gs-relative load: the effective address arrives fully computed in one
 * register, zero-extended from u32 (see the file comment — this is the
 * verifiable shape; addressing through an "m" operand would let GCC
 * fold arbitrary modes). The unreferenced "m" input only tells the
 * scheduler which location is read.
 */
template <typename T>
inline T
gsLoad(uint32_t off)
{
    T v;
    // Pin before widening: without the barrier GCC strength-reduces the
    // zext into a 64-bit loop counter (`add $4,%rax` feeding %gs:(%rax))
    // whose u32 range only *its* value-range analysis knows. The pin
    // keeps a 32-bit definition of the offset in the object code.
    uint64_t ea = pinOffset(off);  // zero-extension visible in the code
    if constexpr (sizeof(T) == 8 && __is_same(T, double)) {
        asm("movsd %%gs:(%1), %0"
            : "=x"(v)
            : "r"(ea), "m"(*reinterpret_cast<const T*>(ea)));
    } else {
        asm("mov %%gs:(%1), %0"
            : "=r"(v)
            : "r"(ea), "m"(*reinterpret_cast<const T*>(ea)));
    }
    return v;
}

template <typename T>
inline void
gsStore(uint32_t off, T v)
{
    // The unreferenced "=m" output expresses the written location, so
    // dependence against gsLoad orders correctly without a "memory"
    // clobber (which would be an optimization barrier the plain-pointer
    // policies don't pay).
    uint64_t ea = pinOffset(off);  // see gsLoad: keeps the u32 def
    if constexpr (sizeof(T) == 8 && __is_same(T, double)) {
        asm("movsd %2, %%gs:(%1)"
            : "=m"(*reinterpret_cast<T*>(ea))
            : "r"(ea), "x"(v));
    } else {
        asm("mov %2, %%gs:(%1)"
            : "=m"(*reinterpret_cast<T*>(ea))
            : "r"(ea), "r"(v));
    }
}

#pragma GCC diagnostic pop

}  // namespace detail

/** Classic wasm2c: u32 offsets, explicit 64-bit base addition. */
struct BaseAddPolicy
{
    static constexpr const char* kName = "wasm2c";
    static constexpr bool kUsesGs = false;

    uint8_t* base = nullptr;
    uint64_t size = 0;

    using Index = uint32_t;

    template <typename T>
    T
    load(Index off) const
    {
        T v;
        // The u32 offset is zero-extended and added to the 64-bit base:
        // the compiler must materialize the 32-bit offset computation
        // before the access (Figure 1b). pinOffset keeps that shape in
        // the object code — the verifier proves [base + zext(u32)*1].
        std::memcpy(&v, base + uint64_t(detail::pinOffset(off)),
                    sizeof v);
        return v;
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        std::memcpy(base + uint64_t(detail::pinOffset(off)), &v,
                    sizeof v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        return load<T>(Index(array + idx * sizeof(T)));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        store<T>(Index(array + idx * sizeof(T)), v);
    }
};


/**
 * Segue: %gs holds the heap base (set by the harness via
 * seg::ScopedGsBase before entering the sandbox); one instruction per
 * access.
 */
struct SeguePolicy
{
    static constexpr const char* kName = "wasm2c+segue";
    static constexpr bool kUsesGs = true;

    uint8_t* base = nullptr;  ///< kept for checksum verification only
    uint64_t size = 0;

    using Index = uint32_t;

    template <typename T>
    T
    load(Index off) const
    {
        return detail::gsLoad<T>(off);
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        detail::gsStore<T>(off, v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        // Wrapping u32 effective-address arithmetic: wasm2c semantics,
        // and the verifiable shape — the gs access receives one
        // zero-extended u32 register, so a stray index wraps inside the
        // reservation instead of escaping past the guard.
        return detail::gsLoad<T>(Index(array + idx * sizeof(T)));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        detail::gsStore<T>(Index(array + idx * sizeof(T)), v);
    }
};

/** Explicit bounds checks + base addition (no guard reliance). */
struct BoundsPolicy
{
    static constexpr const char* kName = "wasm2c+bounds";
    static constexpr bool kUsesGs = false;

    uint8_t* base = nullptr;
    uint64_t size = 0;

    using Index = uint32_t;

    template <typename T>
    T
    load(Index off) const
    {
        // Pin first, then check: the dominating compare and the access
        // then share one registered offset value the verifier can tie
        // together (w2c.bounds.dominate).
        off = detail::pinOffset(off);
        if (uint64_t(off) + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        T v;
        std::memcpy(&v, base + uint64_t(off), sizeof v);
        return v;
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        off = detail::pinOffset(off);
        if (uint64_t(off) + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        std::memcpy(base + uint64_t(off), &v, sizeof v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        return load<T>(Index(array + idx * sizeof(T)));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        store<T>(Index(array + idx * sizeof(T)), v);
    }
};

/** Bounds checks + gs-relative access (§6.1's 25.2% case). */
struct SegueBoundsPolicy
{
    static constexpr const char* kName = "wasm2c+bounds+segue";
    static constexpr bool kUsesGs = true;

    uint8_t* base = nullptr;
    uint64_t size = 0;

    using Index = uint32_t;

    template <typename T>
    T
    load(Index off) const
    {
        // Pin first (as BoundsPolicy does) so the dominating compare
        // and the gs access consume the same materialized u32: without
        // it GCC proves the check against *its* value-range analysis
        // and emits 32-bit index forms the verifier cannot tie to the
        // access. The second pin inside gsLoad is the identity on the
        // already-pinned register and emits nothing.
        off = detail::pinOffset(off);
        if (uint64_t(off) + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        return detail::gsLoad<T>(off);
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        off = detail::pinOffset(off);
        if (uint64_t(off) + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        detail::gsStore<T>(off, v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        // Wrapping u32 address like SeguePolicy::loadAt; the check then
        // bounds the exact value the gs access consumes.
        return load<T>(Index(array + idx * sizeof(T)));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        store<T>(Index(array + idx * sizeof(T)), v);
    }
};

}  // namespace sfi::w2c

#endif  // SFIKIT_W2C_POLICY_H_
