/**
 * @file
 * wasm2c-style compile-time SFI: heap-access policies (§4.1).
 *
 * wasm2c transpiles Wasm to C in which every memory access is a
 * (heap base + u32 offset) computation; the host C compiler then
 * optimizes the result. sfikit reproduces that pipeline by writing the
 * workloads once against a *policy* template parameter that decides how
 * a u32 offset turns into a machine access:
 *
 *   NativePolicy       native-width (64-bit) index arithmetic folded
 *                      into addressing modes — the "native execution"
 *                      baseline of Figure 3.
 *   BaseAddPolicy      classic wasm2c SFI: 32-bit offset arithmetic
 *                      materialized, then added to a 64-bit base — the
 *                      two-instruction Figure 1b pattern.
 *   SeguePolicy        the base lives in %gs; a single gs-relative
 *                      instruction performs the access with the full
 *                      addressing mode folded (Figure 1c). Implemented
 *                      with inline asm "m" operands so GCC still
 *                      chooses [base + index*scale + disp] forms.
 *   BoundsPolicy       explicit limit check before each access — what
 *                      engines emit for 64-bit memories (§6.1).
 *   SegueBoundsPolicy  bounds check + gs-relative access.
 *
 * All SFI policies use u32 offsets into a 4 GiB-reserved linear memory
 * with trailing guard pages, so stray accesses fault exactly as in
 * production Wasm engines.
 */
#ifndef SFIKIT_W2C_POLICY_H_
#define SFIKIT_W2C_POLICY_H_

#include <cstdint>
#include <cstring>

#include "base/logging.h"

namespace sfi::w2c {

/** Called by bounds-checking policies on a failed check. Noreturn;
 *  defaults to abort, replaceable for tests. */
[[noreturn]] void boundsTrap();

/** Hook used by tests to intercept bounds traps (longjmp target). */
void setBoundsTrapHandler(void (*handler)());

/** Native baseline: pointer-width arithmetic, direct addressing. */
struct NativePolicy
{
    static constexpr const char* kName = "native";
    static constexpr bool kUsesGs = false;

    uint8_t* base = nullptr;
    uint64_t size = 0;

    using Index = size_t;

    template <typename T>
    T
    load(Index off) const
    {
        T v;
        std::memcpy(&v, base + off, sizeof v);
        return v;
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        std::memcpy(base + off, &v, sizeof v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        return load<T>(array + idx * sizeof(T));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        store<T>(array + idx * sizeof(T), v);
    }
};

/** Classic wasm2c: u32 offsets, explicit 64-bit base addition. */
struct BaseAddPolicy
{
    static constexpr const char* kName = "wasm2c";
    static constexpr bool kUsesGs = false;

    uint8_t* base = nullptr;
    uint64_t size = 0;

    using Index = uint32_t;

    template <typename T>
    T
    load(Index off) const
    {
        T v;
        // The u32 offset is zero-extended and added to the 64-bit base:
        // the compiler must materialize the 32-bit offset computation
        // before the access (Figure 1b).
        std::memcpy(&v, base + uint64_t(off), sizeof v);
        return v;
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        std::memcpy(base + uint64_t(off), &v, sizeof v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        return load<T>(Index(array + idx * sizeof(T)));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        store<T>(Index(array + idx * sizeof(T)), v);
    }
};

namespace detail {

// The "m" operands below are lvalues at raw u32 addresses; GCC's
// array-bounds analysis flags constant-folded low addresses even though
// the asm only uses the *address* (relative to %gs).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"

/** gs-relative load of any scalar type, with full mode folding. */
template <typename T>
inline T
gsLoad(uint64_t ea)
{
    T v;
    if constexpr (sizeof(T) == 8 && __is_same(T, double)) {
        asm("movsd %%gs:%1, %0"
            : "=x"(v)
            : "m"(*reinterpret_cast<const T*>(ea)));
    } else {
        asm("mov %%gs:%1, %0"
            : "=r"(v)
            : "m"(*reinterpret_cast<const T*>(ea)));
    }
    return v;
}

template <typename T>
inline void
gsStore(uint64_t ea, T v)
{
    // The "=m" output expresses the written location; GCC's dependence
    // analysis orders these against the gsLoad "m" inputs without a
    // full "memory" clobber (which would be an optimization barrier the
    // plain-pointer policies don't pay).
    if constexpr (sizeof(T) == 8 && __is_same(T, double)) {
        asm("movsd %1, %%gs:%0"
            : "=m"(*reinterpret_cast<T*>(ea))
            : "x"(v));
    } else {
        asm("mov %1, %%gs:%0"
            : "=m"(*reinterpret_cast<T*>(ea))
            : "r"(v));
    }
}

#pragma GCC diagnostic pop

}  // namespace detail

/**
 * Segue: %gs holds the heap base (set by the harness via
 * seg::ScopedGsBase before entering the sandbox); one instruction per
 * access.
 */
struct SeguePolicy
{
    static constexpr const char* kName = "wasm2c+segue";
    static constexpr bool kUsesGs = true;

    uint8_t* base = nullptr;  ///< kept for checksum verification only
    uint64_t size = 0;

    using Index = uint32_t;

    template <typename T>
    T
    load(Index off) const
    {
        return detail::gsLoad<T>(uint64_t(off));
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        detail::gsStore<T>(uint64_t(off), v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        // 64-bit effective-address arithmetic is safe here (both values
        // are clean u32), and it lets the compiler fold the whole
        // [base + index*scale] form into the gs access.
        return detail::gsLoad<T>(uint64_t(array) +
                                 uint64_t(idx) * sizeof(T));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        detail::gsStore<T>(uint64_t(array) + uint64_t(idx) * sizeof(T),
                           v);
    }
};

/** Explicit bounds checks + base addition (no guard reliance). */
struct BoundsPolicy
{
    static constexpr const char* kName = "wasm2c+bounds";
    static constexpr bool kUsesGs = false;

    uint8_t* base = nullptr;
    uint64_t size = 0;

    using Index = uint32_t;

    template <typename T>
    T
    load(Index off) const
    {
        if (uint64_t(off) + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        T v;
        std::memcpy(&v, base + uint64_t(off), sizeof v);
        return v;
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        if (uint64_t(off) + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        std::memcpy(base + uint64_t(off), &v, sizeof v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        return load<T>(Index(array + idx * sizeof(T)));
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        store<T>(Index(array + idx * sizeof(T)), v);
    }
};

/** Bounds checks + gs-relative access (§6.1's 25.2% case). */
struct SegueBoundsPolicy
{
    static constexpr const char* kName = "wasm2c+bounds+segue";
    static constexpr bool kUsesGs = true;

    uint8_t* base = nullptr;
    uint64_t size = 0;

    using Index = uint32_t;

    template <typename T>
    T
    load(Index off) const
    {
        if (uint64_t(off) + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        return detail::gsLoad<T>(uint64_t(off));
    }

    template <typename T>
    void
    store(Index off, T v) const
    {
        if (uint64_t(off) + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        detail::gsStore<T>(uint64_t(off), v);
    }

    template <typename T>
    T
    loadAt(Index array, Index idx) const
    {
        uint64_t ea = uint64_t(array) + uint64_t(idx) * sizeof(T);
        if (ea + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        return detail::gsLoad<T>(ea);
    }

    template <typename T>
    void
    storeAt(Index array, Index idx, T v) const
    {
        uint64_t ea = uint64_t(array) + uint64_t(idx) * sizeof(T);
        if (ea + sizeof(T) > size) [[unlikely]]
            boundsTrap();
        detail::gsStore<T>(ea, v);
    }
};

}  // namespace sfi::w2c

#endif  // SFIKIT_W2C_POLICY_H_
