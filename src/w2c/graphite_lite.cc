#include "w2c/graphite_lite.h"

#include <cstring>

namespace sfi::w2c {

namespace {

// Font table layout (all u32, 26.6 fixed point coordinates):
//   header: [numGlyphs][glyphOffsets[numGlyphs]]
//   glyph:  [numContours][perContour: numPoints, then points]
//   point:  x(u32, 26.6 signed-as-bits), y, onCurve flag
//
// Contours are generated as rounded star/loop shapes varying per glyph,
// in a 64x64 em box (26.6: 0..4096).

struct Pt
{
    int32_t x, y;
    bool on;
};

uint32_t
putU32(uint8_t* base, uint32_t off, uint32_t v)
{
    std::memcpy(base + off, &v, 4);
    return off + 4;
}

}  // namespace

uint32_t
buildSyntheticFont(uint8_t* heap_base, uint32_t font_off)
{
    // First pass into a local buffer per glyph, then emit.
    uint32_t off = font_off;
    off = putU32(heap_base, off, kFontGlyphs);
    uint32_t offsets_at = off;
    off += 4 * kFontGlyphs;  // patched below

    for (uint32_t g = 0; g < kFontGlyphs; g++) {
        putU32(heap_base, offsets_at + 4 * g, off - font_off);
        uint32_t contours = 1 + (g % 3);
        off = putU32(heap_base, off, contours);
        uint32_t seed = g * 2654435761u + 12345;
        for (uint32_t c = 0; c < contours; c++) {
            uint32_t points = 6 + ((g + c) % 6) * 2;
            off = putU32(heap_base, off, points);
            // A star-ish loop: alternate on-curve ring points and
            // off-curve control points at varying radius.
            int32_t cx = 2048, cy = 2048;
            int32_t r_base = 600 + int32_t((seed >> (c * 4)) % 900);
            for (uint32_t p = 0; p < points; p++) {
                // Fixed-point sin/cos via a coarse table walk.
                static const int32_t kCos[16] = {
                    64, 59, 45, 24, 0, -24, -45, -59,
                    -64, -59, -45, -24, 0, 24, 45, 59};
                static const int32_t kSin[16] = {
                    0, 24, 45, 59, 64, 59, 45, 24,
                    0, -24, -45, -59, -64, -59, -45, -24};
                uint32_t ang = (p * 16) / points;
                int32_t r = r_base +
                            ((p & 1) ? int32_t((seed >> 8) % 500)
                                     : -int32_t((seed >> 16) % 300));
                int32_t x = cx + (r * kCos[ang & 15]) / 64;
                int32_t y = cy + (r * kSin[ang & 15]) / 64;
                off = putU32(heap_base, off, uint32_t(x));
                off = putU32(heap_base, off, uint32_t(y));
                off = putU32(heap_base, off, (p & 1) ? 0 : 1);
            }
        }
    }
    return off - font_off;
}

template <typename P>
uint64_t
renderGlyph(const P& m, uint32_t font_off, uint32_t glyph_id,
            uint32_t size_px, uint32_t bitmap_off, uint32_t scratch)
{
    glyph_id %= m.template loadAt<uint32_t>(font_off, 0);
    uint32_t glyph_rel =
        m.template loadAt<uint32_t>(font_off + 4, glyph_id);
    uint32_t gp = font_off + glyph_rel;

    // Edge list in scratch: each edge is 4 i32: x0,y0,x1,y1 in pixel
    // 26.6 coordinates (y0 < y1 guaranteed by insertion).
    uint32_t edges = 0;
    const uint32_t edge_words = 4;
    auto addEdge = [&](int32_t x0, int32_t y0, int32_t x1, int32_t y1) {
        if (y0 == y1)
            return;
        // Record winding direction in the low bit of a flags word —
        // pack dir into x-order: store as-is; filler uses sign.
        m.template storeAt<int32_t>(scratch, edges * edge_words + 0, x0);
        m.template storeAt<int32_t>(scratch, edges * edge_words + 1, y0);
        m.template storeAt<int32_t>(scratch, edges * edge_words + 2, x1);
        m.template storeAt<int32_t>(scratch, edges * edge_words + 3, y1);
        edges++;
    };

    // Flatten: quadratic segments split into 8 lines.
    uint32_t num_contours = m.template loadAt<uint32_t>(gp, 0);
    uint32_t pos = gp + 4;
    int32_t scale_num = int32_t(size_px) * 64;  // em 4096 -> px<<6

    for (uint32_t c = 0; c < num_contours; c++) {
        uint32_t points = m.template loadAt<uint32_t>(pos, 0);
        pos += 4;
        uint32_t pts_at = pos;
        pos += points * 12;

        auto getPt = [&](uint32_t i) {
            i %= points;
            int32_t ex = int32_t(
                m.template loadAt<uint32_t>(pts_at, i * 3 + 0));
            int32_t ey = int32_t(
                m.template loadAt<uint32_t>(pts_at, i * 3 + 1));
            bool on =
                m.template loadAt<uint32_t>(pts_at, i * 3 + 2) != 0;
            // Scale from em (0..4096) to pixel 26.6.
            return Pt{int32_t(int64_t(ex) * scale_num / 4096),
                      int32_t(int64_t(ey) * scale_num / 4096), on};
        };

        Pt start = getPt(0);
        Pt prev = start;
        for (uint32_t i = 1; i <= points; i++) {
            Pt cur = getPt(i);
            if (cur.on || i == points) {
                addEdge(prev.x, prev.y, cur.x, cur.y);
                prev = cur;
            } else {
                // Off-curve control: quadratic to the next on point.
                Pt next = getPt(i + 1);
                Pt end = next.on
                             ? next
                             : Pt{(cur.x + next.x) / 2,
                                  (cur.y + next.y) / 2, true};
                // Flatten into 8 segments.
                int32_t px0 = prev.x, py0 = prev.y;
                for (int s = 1; s <= 8; s++) {
                    int32_t t = s * 8;  // 0..64
                    int32_t mt = 64 - t;
                    int64_t bx = (int64_t(prev.x) * mt * mt +
                                  2ll * cur.x * mt * t +
                                  int64_t(end.x) * t * t) >>
                                 12;
                    int64_t by = (int64_t(prev.y) * mt * mt +
                                  2ll * cur.y * mt * t +
                                  int64_t(end.y) * t * t) >>
                                 12;
                    addEdge(px0, py0, int32_t(bx), int32_t(by));
                    px0 = int32_t(bx);
                    py0 = int32_t(by);
                }
                prev = end;
                if (next.on)
                    i++;  // consumed the next point
            }
        }
        addEdge(prev.x, prev.y, start.x, start.y);
    }

    // Clear the bitmap.
    for (uint32_t i = 0; i < size_px * size_px; i++)
        m.template storeAt<uint8_t>(bitmap_off, i, 0);

    // Scanline fill: for each pixel row, collect x crossings with
    // winding, sort (insertion into scratch tail), fill spans.
    uint32_t xs = scratch + edges * edge_words * 4 + 64;
    for (uint32_t row = 0; row < size_px; row++) {
        int32_t sy = int32_t(row) * 64 + 32;  // sample mid-row
        uint32_t nx = 0;
        for (uint32_t e = 0; e < edges; e++) {
            int32_t x0 =
                m.template loadAt<int32_t>(scratch, e * edge_words + 0);
            int32_t y0 =
                m.template loadAt<int32_t>(scratch, e * edge_words + 1);
            int32_t x1 =
                m.template loadAt<int32_t>(scratch, e * edge_words + 2);
            int32_t y1 =
                m.template loadAt<int32_t>(scratch, e * edge_words + 3);
            int32_t w = 1;
            if (y0 > y1) {
                int32_t t = y0;
                y0 = y1;
                y1 = t;
                t = x0;
                x0 = x1;
                x1 = t;
                w = -1;
            }
            if (sy < y0 || sy >= y1)
                continue;
            int32_t x = x0 + int32_t(int64_t(x1 - x0) * (sy - y0) /
                                     (y1 - y0));
            uint32_t packed = (uint32_t(x + 0x100000) << 1) |
                              (w > 0 ? 1u : 0u);
            // Insertion sort by x.
            uint32_t j = nx;
            while (j > 0 &&
                   m.template loadAt<uint32_t>(xs, j - 1) > packed) {
                m.template storeAt<uint32_t>(
                    xs, j, m.template loadAt<uint32_t>(xs, j - 1));
                j--;
            }
            m.template storeAt<uint32_t>(xs, j, packed);
            nx++;
        }
        // Nonzero winding fill.
        int32_t winding = 0;
        uint32_t span_start = 0;
        for (uint32_t k = 0; k < nx; k++) {
            uint32_t packed = m.template loadAt<uint32_t>(xs, k);
            int32_t x = int32_t(packed >> 1) - 0x100000;
            int32_t dir = (packed & 1) ? 1 : -1;
            int32_t prev_w = winding;
            winding += dir;
            uint32_t px = uint32_t(x < 0 ? 0 : x) / 64;
            if (px > size_px)
                px = size_px;
            if (prev_w == 0 && winding != 0) {
                span_start = px;
            } else if (prev_w != 0 && winding == 0) {
                for (uint32_t fill = span_start;
                     fill < px && fill < size_px; fill++) {
                    m.template storeAt<uint8_t>(
                        bitmap_off, row * size_px + fill, 255);
                }
            }
        }
    }

    // Coverage checksum.
    uint64_t checksum = 0;
    for (uint32_t i = 0; i < size_px * size_px; i++) {
        checksum = checksum * 131 +
                   m.template loadAt<uint8_t>(bitmap_off, i);
    }
    return checksum;
}

#define SFIKIT_INSTANTIATE_RG(P)                                       \
    template uint64_t renderGlyph<P>(const P&, uint32_t, uint32_t,     \
                                     uint32_t, uint32_t, uint32_t);

SFIKIT_INSTANTIATE_RG(NativePolicy)
SFIKIT_INSTANTIATE_RG(BaseAddPolicy)
SFIKIT_INSTANTIATE_RG(SeguePolicy)
SFIKIT_INSTANTIATE_RG(BoundsPolicy)
SFIKIT_INSTANTIATE_RG(SegueBoundsPolicy)

#undef SFIKIT_INSTANTIATE_RG

}  // namespace sfi::w2c
