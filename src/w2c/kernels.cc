#include "w2c/kernels.h"

#include "base/units.h"

namespace sfi::w2c {

namespace {

/** Deterministic 32-bit generator used to synthesize kernel inputs. */
struct X32
{
    uint32_t s;
    explicit X32(uint32_t seed) : s(seed ? seed : 1) {}
    uint32_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 17;
        s ^= s << 5;
        return s;
    }
};

}  // namespace

uint64_t
kernelHeapBytes(uint32_t scale)
{
    // The largest consumer is the stencil (9 f64 fields, two copies).
    uint64_t cells = uint64_t(scale) * scale;
    return alignUp(64 * kMiB + cells * 9 * 8 * 2, kWasmPageSize);
}

// --------------------------------------------------------------------
// 401.bzip2 analog: byte-stream compression passes (RLE + move-to-front
// + histogram entropy estimate) over generated blocks.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernCompress(const P& m, uint32_t scale)
{
    const uint32_t block = 64 * 1024;
    const uint32_t in = 0, rle = block * 2, mtf = block * 4,
                   table = block * 6, hist = table + 256;
    uint64_t checksum = 0;
    X32 rng(0xb21b2);

    for (uint32_t b = 0; b < scale; b++) {
        // Generate a compressible block: runs + noise.
        uint32_t pos = 0;
        while (pos < block) {
            uint32_t r = rng.next();
            uint32_t run = 1 + ((r >> 8) & 0x1f);
            uint8_t byte = uint8_t(r & 0x3f);
            for (uint32_t k = 0; k < run && pos < block; k++, pos++)
                m.template storeAt<uint8_t>(in, pos, byte);
        }

        // Pass 1: run-length encode.
        uint32_t out = 0;
        uint32_t i = 0;
        while (i < block) {
            uint8_t c = m.template loadAt<uint8_t>(in, i);
            uint32_t run = 1;
            while (i + run < block && run < 255 &&
                   m.template loadAt<uint8_t>(in, i + run) == c) {
                run++;
            }
            m.template storeAt<uint8_t>(rle, out++, c);
            m.template storeAt<uint8_t>(rle, out++, uint8_t(run));
            i += run;
        }
        uint32_t rle_len = out;

        // Pass 2: move-to-front over the RLE stream.
        for (uint32_t t = 0; t < 256; t++)
            m.template storeAt<uint8_t>(table, t, uint8_t(t));
        for (uint32_t t = 0; t < 256; t++)
            m.template storeAt<uint32_t>(hist, t, 0);
        for (uint32_t j = 0; j < rle_len; j++) {
            uint8_t c = m.template loadAt<uint8_t>(rle, j);
            uint32_t rank = 0;
            while (m.template loadAt<uint8_t>(table, rank) != c)
                rank++;
            for (uint32_t k = rank; k > 0; k--) {
                m.template storeAt<uint8_t>(
                    table, k, m.template loadAt<uint8_t>(table, k - 1));
            }
            m.template storeAt<uint8_t>(table, 0, c);
            m.template storeAt<uint8_t>(mtf, j, uint8_t(rank));
            m.template storeAt<uint32_t>(
                hist, rank,
                m.template loadAt<uint32_t>(hist, rank) + 1);
        }

        // Pass 3: entropy-ish cost from the histogram.
        uint64_t cost = 0;
        for (uint32_t t = 0; t < 256; t++) {
            uint32_t n = m.template loadAt<uint32_t>(hist, t);
            uint32_t bits = 1;
            uint32_t v = t + 1;
            while (v >>= 1)
                bits++;
            cost += uint64_t(n) * bits;
        }
        checksum = checksum * 31 + cost + rle_len;
    }
    return checksum;
}

// --------------------------------------------------------------------
// 429.mcf analog: sparse min-cost-flow-ish relaxation — adjacency-list
// pointer chasing with cache-hostile access order.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernMincost(const P& m, uint32_t scale)
{
    const uint32_t V = 4096 * (1 + scale / 4);
    const uint32_t E = V * 4;
    // Layout: head[V], dst[E], next[E], cost[E], dist[V]
    const uint32_t head = 0;
    const uint32_t dst = head + V * 4;
    const uint32_t nxt = dst + E * 4;
    const uint32_t cst = nxt + E * 4;
    const uint32_t dist = cst + E * 4;

    X32 rng(0x3cf);
    for (uint32_t v = 0; v < V; v++)
        m.template storeAt<uint32_t>(head, v, 0xffffffffu);
    for (uint32_t e = 0; e < E; e++) {
        uint32_t from = rng.next() % V;
        uint32_t to = rng.next() % V;
        m.template storeAt<uint32_t>(dst, e, to);
        m.template storeAt<uint32_t>(cst, e, 1 + (rng.next() & 0xff));
        m.template storeAt<uint32_t>(
            nxt, e, m.template loadAt<uint32_t>(head, from));
        m.template storeAt<uint32_t>(head, from, e);
    }
    const uint32_t kInf = 0x3fffffff;
    for (uint32_t v = 0; v < V; v++)
        m.template storeAt<uint32_t>(dist, v, v == 0 ? 0 : kInf);

    // Relaxation sweeps (Bellman-Ford flavoured).
    uint32_t rounds = 6 + scale;
    for (uint32_t r = 0; r < rounds; r++) {
        uint32_t changed = 0;
        for (uint32_t v = 0; v < V; v++) {
            uint32_t dv = m.template loadAt<uint32_t>(dist, v);
            if (dv >= kInf)
                continue;
            uint32_t e = m.template loadAt<uint32_t>(head, v);
            while (e != 0xffffffffu) {
                uint32_t to = m.template loadAt<uint32_t>(dst, e);
                uint32_t c = m.template loadAt<uint32_t>(cst, e);
                uint32_t nd = dv + c;
                if (nd < m.template loadAt<uint32_t>(dist, to)) {
                    m.template storeAt<uint32_t>(dist, to, nd);
                    changed++;
                }
                e = m.template loadAt<uint32_t>(nxt, e);
            }
        }
        if (changed == 0)
            break;
    }

    uint64_t checksum = 0;
    for (uint32_t v = 0; v < V; v++)
        checksum += m.template loadAt<uint32_t>(dist, v) % kInf;
    return checksum;
}

// --------------------------------------------------------------------
// 433.milc analog: sweeps of 2x2 complex-matrix multiplies over a
// lattice of f64 data.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernLattice(const P& m, uint32_t scale)
{
    const uint32_t sites = 4096 * (1 + scale / 2);
    const uint32_t doubles_per_site = 8;  // 2x2 complex
    const uint32_t lat = 0;

    X32 rng(0x111c);
    for (uint32_t i = 0; i < sites * doubles_per_site; i++) {
        double v = (double(rng.next() & 0xffff) - 32768.0) / 65536.0;
        m.template storeAt<double>(lat, i, v);
    }

    double traceSum = 0;
    uint32_t sweeps = 2 + scale / 2;
    for (uint32_t s = 0; s < sweeps; s++) {
        for (uint32_t i = 0; i + 1 < sites; i++) {
            uint32_t a = i * doubles_per_site;
            uint32_t b = (i + 1) * doubles_per_site;
            // C = A*B for 2x2 complex matrices laid out
            // [re00 im00 re01 im01 re10 im10 re11 im11].
            double c[8];
            for (uint32_t r = 0; r < 2; r++) {
                for (uint32_t cc = 0; cc < 2; cc++) {
                    double re = 0, im = 0;
                    for (uint32_t k = 0; k < 2; k++) {
                        double ar = m.template loadAt<double>(
                            lat, a + (r * 2 + k) * 2);
                        double ai = m.template loadAt<double>(
                            lat, a + (r * 2 + k) * 2 + 1);
                        double br = m.template loadAt<double>(
                            lat, b + (k * 2 + cc) * 2);
                        double bi = m.template loadAt<double>(
                            lat, b + (k * 2 + cc) * 2 + 1);
                        re += ar * br - ai * bi;
                        im += ar * bi + ai * br;
                    }
                    c[(r * 2 + cc) * 2] = re;
                    c[(r * 2 + cc) * 2 + 1] = im;
                }
            }
            // Renormalize to keep values bounded, write back to A.
            for (uint32_t k = 0; k < 8; k++)
                m.template storeAt<double>(lat, a + k, c[k] * 0.5);
            traceSum += c[0] + c[6];
        }
    }
    return uint64_t(int64_t(traceSum * 1e6));
}

// --------------------------------------------------------------------
// 444.namd analog: cutoff pair forces over particle arrays.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernNbody(const P& m, uint32_t scale)
{
    const uint32_t N = 2048 * (1 + scale / 2);
    const uint32_t window = 64;
    // SoA: x y z fx fy fz, each N doubles.
    const uint32_t X = 0, Y = X + N * 8, Z = Y + N * 8, FX = Z + N * 8,
                   FY = FX + N * 8, FZ = FY + N * 8;

    X32 rng(0xa4d);
    for (uint32_t i = 0; i < N; i++) {
        m.template storeAt<double>(X, i,
                                   double(rng.next() & 0x3ff) / 16.0);
        m.template storeAt<double>(Y, i,
                                   double(rng.next() & 0x3ff) / 16.0);
        m.template storeAt<double>(Z, i,
                                   double(rng.next() & 0x3ff) / 16.0);
        m.template storeAt<double>(FX, i, 0.0);
        m.template storeAt<double>(FY, i, 0.0);
        m.template storeAt<double>(FZ, i, 0.0);
    }

    const double cutoff2 = 36.0;
    for (uint32_t i = 0; i < N; i++) {
        double xi = m.template loadAt<double>(X, i);
        double yi = m.template loadAt<double>(Y, i);
        double zi = m.template loadAt<double>(Z, i);
        double fx = 0, fy = 0, fz = 0;
        uint32_t jend = i + window < N ? i + window : N;
        for (uint32_t j = i + 1; j < jend; j++) {
            double dx = xi - m.template loadAt<double>(X, j);
            double dy = yi - m.template loadAt<double>(Y, j);
            double dz = zi - m.template loadAt<double>(Z, j);
            double r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < cutoff2 && r2 > 1e-9) {
                double inv = 1.0 / r2;
                double s = inv * inv - 0.01 * inv;
                fx += dx * s;
                fy += dy * s;
                fz += dz * s;
            }
        }
        m.template storeAt<double>(
            FX, i, m.template loadAt<double>(FX, i) + fx);
        m.template storeAt<double>(
            FY, i, m.template loadAt<double>(FY, i) + fy);
        m.template storeAt<double>(
            FZ, i, m.template loadAt<double>(FZ, i) + fz);
    }

    double total = 0;
    for (uint32_t i = 0; i < N; i++) {
        total += m.template loadAt<double>(FX, i) +
                 m.template loadAt<double>(FY, i) +
                 m.template loadAt<double>(FZ, i);
    }
    return uint64_t(int64_t(total * 1e3));
}

// --------------------------------------------------------------------
// 445.gobmk analog: board scans, group flood fills, pattern counting.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernGotactics(const P& m, uint32_t scale)
{
    const uint32_t W = 19, H = 19, B = W * H;
    const uint32_t board = 0, mark = B, stack = 2 * B;

    uint64_t checksum = 0;
    X32 rng(0x60b);
    uint32_t positions = 200 * scale;
    for (uint32_t g = 0; g < positions; g++) {
        for (uint32_t i = 0; i < B; i++)
            m.template storeAt<uint8_t>(board, i,
                                        uint8_t(rng.next() % 3));
        // Liberties of every group by flood fill.
        for (uint32_t i = 0; i < B; i++)
            m.template storeAt<uint8_t>(mark, i, 0);
        uint32_t total_libs = 0;
        for (uint32_t s = 0; s < B; s++) {
            uint8_t color = m.template loadAt<uint8_t>(board, s);
            if (color == 0 || m.template loadAt<uint8_t>(mark, s))
                continue;
            uint32_t sp = 0;
            m.template storeAt<uint32_t>(stack, sp++, s);
            m.template storeAt<uint8_t>(mark, s, 1);
            uint32_t libs = 0;
            while (sp > 0) {
                uint32_t p = m.template loadAt<uint32_t>(stack, --sp);
                uint32_t x = p % W, y = p / W;
                const int32_t dx[4] = {1, -1, 0, 0};
                const int32_t dy[4] = {0, 0, 1, -1};
                for (int d = 0; d < 4; d++) {
                    int32_t nx = int32_t(x) + dx[d];
                    int32_t ny = int32_t(y) + dy[d];
                    if (nx < 0 || ny < 0 || nx >= int32_t(W) ||
                        ny >= int32_t(H)) {
                        continue;
                    }
                    uint32_t np = uint32_t(ny) * W + uint32_t(nx);
                    uint8_t nc = m.template loadAt<uint8_t>(board, np);
                    if (nc == 0) {
                        libs++;
                    } else if (nc == color &&
                               !m.template loadAt<uint8_t>(mark, np)) {
                        m.template storeAt<uint8_t>(mark, np, 1);
                        m.template storeAt<uint32_t>(stack, sp++, np);
                    }
                }
            }
            total_libs += libs;
        }
        // 3x3 pattern census (diagonal cross shapes).
        uint32_t patterns = 0;
        for (uint32_t y = 1; y + 1 < H; y++) {
            for (uint32_t x = 1; x + 1 < W; x++) {
                uint8_t c =
                    m.template loadAt<uint8_t>(board, y * W + x);
                if (c == 0)
                    continue;
                uint8_t a = m.template loadAt<uint8_t>(
                    board, (y - 1) * W + (x - 1));
                uint8_t b = m.template loadAt<uint8_t>(
                    board, (y - 1) * W + (x + 1));
                uint8_t d = m.template loadAt<uint8_t>(
                    board, (y + 1) * W + (x - 1));
                uint8_t e = m.template loadAt<uint8_t>(
                    board, (y + 1) * W + (x + 1));
                if (a == c && b == c && d == c && e == c)
                    patterns++;
            }
        }
        checksum = checksum * 131 + total_libs * 7 + patterns;
    }
    return checksum;
}

// --------------------------------------------------------------------
// 458.sjeng analog: alpha-beta negamax over a synthetic game with a
// transposition table in linear memory.
// --------------------------------------------------------------------
namespace {

template <typename P>
int32_t
negamax(const P& m, uint32_t tt, uint64_t state, uint32_t depth,
        int32_t alpha, int32_t beta)
{
    if (depth == 0) {
        // Leaf evaluation: mix the state.
        uint64_t h = state * 0x9e3779b97f4a7c15ull;
        h ^= h >> 29;
        return int32_t(h & 0xfff) - 2048;
    }
    // Transposition probe (32K entries of {key32, value32}).
    uint32_t slot = uint32_t(state >> 17) & 0x7fff;
    uint32_t key = uint32_t(state) ^ depth;
    if (m.template loadAt<uint32_t>(tt, slot * 2) == key)
        return int32_t(m.template loadAt<uint32_t>(tt, slot * 2 + 1));

    int32_t best = -0x40000000;
    const uint32_t branching = 6;
    for (uint32_t mv = 0; mv < branching; mv++) {
        uint64_t child = state * 6364136223846793005ull + mv * 2654435761u + 1;
        int32_t score =
            -negamax(m, tt, child, depth - 1, -beta, -alpha);
        if (score > best)
            best = score;
        if (best > alpha)
            alpha = best;
        if (alpha >= beta)
            break;
    }
    m.template storeAt<uint32_t>(tt, slot * 2, key);
    m.template storeAt<uint32_t>(tt, slot * 2 + 1, uint32_t(best));
    return best;
}

}  // namespace

template <typename P>
__attribute__((noinline)) uint64_t
kernMinimax(const P& m, uint32_t scale)
{
    const uint32_t tt = 0;
    for (uint32_t i = 0; i < 0x8000 * 2; i++)
        m.template storeAt<uint32_t>(tt, i, 0);
    uint64_t checksum = 0;
    uint32_t depth = 6 + (scale > 4 ? 2 : scale / 2);
    for (uint32_t game = 0; game < 4 + scale; game++) {
        int32_t v = negamax(m, tt, 0xabcdef12u + game * 7919, depth,
                            -0x40000000, 0x40000000);
        checksum = checksum * 1000003 + uint32_t(v);
    }
    return checksum;
}

// --------------------------------------------------------------------
// 462.libquantum analog: strided bit-level gate application over a
// quantum-register-like array.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernQsim(const P& m, uint32_t scale)
{
    const uint32_t qubits = 18;
    const uint32_t states = 1u << qubits;  // 256K entries
    const uint32_t reg = 0;

    for (uint32_t i = 0; i < states; i++)
        m.template storeAt<uint32_t>(reg, i, i * 2654435761u);

    uint64_t checksum = 0;
    uint32_t gates = 16 * scale;
    X32 rng(0x9517);
    for (uint32_t g = 0; g < gates; g++) {
        uint32_t target = rng.next() % qubits;
        uint32_t stride = 1u << target;
        switch (rng.next() % 3) {
          case 0:
            // "X": swap amplitude pairs differing in the target bit.
            for (uint32_t i = 0; i < states; i++) {
                if ((i & stride) == 0) {
                    uint32_t a =
                        m.template loadAt<uint32_t>(reg, i);
                    uint32_t b = m.template loadAt<uint32_t>(
                        reg, i | stride);
                    m.template storeAt<uint32_t>(reg, i, b);
                    m.template storeAt<uint32_t>(reg, i | stride, a);
                }
            }
            break;
          case 1:
            // "Phase": twiddle amplitudes with the bit set.
            for (uint32_t i = 0; i < states; i++) {
                if (i & stride) {
                    uint32_t v = m.template loadAt<uint32_t>(reg, i);
                    m.template storeAt<uint32_t>(
                        reg, i, (v << 1) | (v >> 31));
                }
            }
            break;
          default: {
            // "CNOT" with control = next qubit.
            uint32_t control = 1u << ((target + 1) % qubits);
            for (uint32_t i = 0; i < states; i++) {
                if ((i & control) && (i & stride) == 0) {
                    uint32_t a = m.template loadAt<uint32_t>(reg, i);
                    uint32_t b = m.template loadAt<uint32_t>(
                        reg, i | stride);
                    m.template storeAt<uint32_t>(reg, i, a ^ b);
                    m.template storeAt<uint32_t>(reg, i | stride,
                                                 b ^ (a >> 3));
                }
            }
            break;
          }
        }
    }
    for (uint32_t i = 0; i < states; i += 97)
        checksum += m.template loadAt<uint32_t>(reg, i);
    return checksum;
}

// --------------------------------------------------------------------
// 464.h264ref analog: SAD motion search + 4x4 transform/quantization.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernBlockcodec(const P& m, uint32_t scale)
{
    const uint32_t W = 320, H = 192;
    const uint32_t ref = 0, cur = W * H;

    X32 rng(0x264);
    for (uint32_t i = 0; i < W * H; i++) {
        uint8_t v = uint8_t((i % 255) ^ (rng.next() & 0x0f));
        m.template storeAt<uint8_t>(ref, i, v);
        m.template storeAt<uint8_t>(cur, i,
                                    uint8_t(v + ((rng.next() & 7) - 3)));
    }

    uint64_t checksum = 0;
    uint32_t frames = scale;
    for (uint32_t f = 0; f < frames; f++) {
        for (uint32_t by = 8; by + 24 < H; by += 16) {
            for (uint32_t bx = 8; bx + 24 < W; bx += 16) {
                // Motion search: +-4 window, full 16x16 SAD.
                uint32_t best_sad = 0xffffffff;
                int32_t best_dx = 0, best_dy = 0;
                for (int32_t dy = -4; dy <= 4; dy += 2) {
                    for (int32_t dx = -4; dx <= 4; dx += 2) {
                        uint32_t sad = 0;
                        for (uint32_t y = 0; y < 16; y++) {
                            for (uint32_t x = 0; x < 16; x++) {
                                uint32_t cp = (by + y) * W + bx + x;
                                uint32_t rp =
                                    uint32_t(int32_t(by + y) + dy) * W +
                                    uint32_t(int32_t(bx + x) + dx);
                                int32_t d =
                                    int32_t(m.template loadAt<uint8_t>(
                                        cur, cp)) -
                                    int32_t(m.template loadAt<uint8_t>(
                                        ref, rp));
                                sad += uint32_t(d < 0 ? -d : d);
                            }
                        }
                        if (sad < best_sad) {
                            best_sad = sad;
                            best_dx = dx;
                            best_dy = dy;
                        }
                    }
                }
                // 4x4 integer transform + quantization of the residual.
                uint32_t energy = 0;
                for (uint32_t sy = 0; sy < 16; sy += 4) {
                    for (uint32_t sx = 0; sx < 16; sx += 4) {
                        int32_t blk[16];
                        for (uint32_t y = 0; y < 4; y++) {
                            for (uint32_t x = 0; x < 4; x++) {
                                uint32_t cp =
                                    (by + sy + y) * W + bx + sx + x;
                                uint32_t rp =
                                    uint32_t(int32_t(by + sy + y) +
                                             best_dy) *
                                        W +
                                    uint32_t(int32_t(bx + sx + x) +
                                             best_dx);
                                blk[y * 4 + x] =
                                    int32_t(m.template loadAt<uint8_t>(
                                        cur, cp)) -
                                    int32_t(m.template loadAt<uint8_t>(
                                        ref, rp));
                            }
                        }
                        // Hadamard-ish butterfly rows then columns.
                        for (uint32_t y = 0; y < 4; y++) {
                            int32_t a = blk[y * 4] + blk[y * 4 + 3];
                            int32_t b = blk[y * 4 + 1] + blk[y * 4 + 2];
                            int32_t c = blk[y * 4 + 1] - blk[y * 4 + 2];
                            int32_t d = blk[y * 4] - blk[y * 4 + 3];
                            blk[y * 4] = a + b;
                            blk[y * 4 + 1] = c + d;
                            blk[y * 4 + 2] = a - b;
                            blk[y * 4 + 3] = d - c;
                        }
                        for (uint32_t x = 0; x < 4; x++) {
                            int32_t a = blk[x] + blk[12 + x];
                            int32_t b = blk[4 + x] + blk[8 + x];
                            int32_t c = blk[4 + x] - blk[8 + x];
                            int32_t d = blk[x] - blk[12 + x];
                            blk[x] = (a + b) >> 2;
                            blk[4 + x] = (c + d) >> 2;
                            blk[8 + x] = (a - b) >> 2;
                            blk[12 + x] = (d - c) >> 2;
                        }
                        for (int k = 0; k < 16; k++)
                            energy += uint32_t(blk[k] * blk[k]);
                    }
                }
                checksum = checksum * 31 + best_sad + energy +
                           uint32_t(best_dx + 8) * 17 +
                           uint32_t(best_dy + 8);
            }
        }
    }
    return checksum;
}

// --------------------------------------------------------------------
// 470.lbm analog: 9-direction streaming stencil over an f64 grid.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernStencil(const P& m, uint32_t scale)
{
    const uint32_t W = 128, H = 128;
    const uint32_t Q = 9;
    const uint32_t cells = W * H;
    const uint32_t f0 = 0, f1 = cells * Q * 8;

    X32 rng(0x1b3);
    for (uint32_t i = 0; i < cells * Q; i++) {
        m.template storeAt<double>(
            f0, i, 0.1 + double(rng.next() & 0xff) / 2560.0);
    }

    static const int32_t cx[9] = {0, 1, 0, -1, 0, 1, -1, -1, 1};
    static const int32_t cy[9] = {0, 0, 1, 0, -1, 1, 1, -1, -1};
    static const double w[9] = {4.0 / 9, 1.0 / 9, 1.0 / 9, 1.0 / 9,
                                1.0 / 9, 1.0 / 36, 1.0 / 36, 1.0 / 36,
                                1.0 / 36};

    uint32_t steps = 4 * scale;
    uint32_t src = f0, dst = f1;
    for (uint32_t t = 0; t < steps; t++) {
        for (uint32_t y = 0; y < H; y++) {
            for (uint32_t x = 0; x < W; x++) {
                uint32_t c = y * W + x;
                // Collide: relax toward the weighted mean.
                double rho = 0;
                for (uint32_t q = 0; q < Q; q++)
                    rho += m.template loadAt<double>(src, c * Q + q);
                for (uint32_t q = 0; q < Q; q++) {
                    double fq =
                        m.template loadAt<double>(src, c * Q + q);
                    double feq = w[q] * rho;
                    double post = fq + 0.6 * (feq - fq);
                    // Stream to the neighbour (periodic wrap).
                    uint32_t nx = uint32_t((int32_t(x) + cx[q] +
                                            int32_t(W))) %
                                  W;
                    uint32_t ny = uint32_t((int32_t(y) + cy[q] +
                                            int32_t(H))) %
                                  H;
                    m.template storeAt<double>(
                        dst, (ny * W + nx) * Q + q, post);
                }
            }
        }
        uint32_t tmp = src;
        src = dst;
        dst = tmp;
    }

    double mass = 0;
    for (uint32_t i = 0; i < cells * Q; i += 7)
        mass += m.template loadAt<double>(src, i);
    return uint64_t(int64_t(mass * 1e6));
}

// --------------------------------------------------------------------
// 473.astar analog: grid A* with a binary heap in linear memory. The
// tight heap-sift inner loop is the Segue code-size outlier candidate.
// --------------------------------------------------------------------
template <typename P>
__attribute__((noinline)) uint64_t
kernAstar(const P& m, uint32_t scale)
{
    const uint32_t W = 256, H = 256, cells = W * H;
    const uint32_t grid = 0;             // u8 walls
    const uint32_t gcost = cells;        // u32 g
    const uint32_t heap = gcost + cells * 4;  // u64 entries {f<<32|pos}
    const uint32_t closed = heap + cells * 8;

    X32 rng(0xa57a);
    for (uint32_t i = 0; i < cells; i++)
        m.template storeAt<uint8_t>(grid, i,
                                    uint8_t((rng.next() & 7) == 0));

    uint64_t checksum = 0;
    uint32_t queries = 4 * scale;
    for (uint32_t q = 0; q < queries; q++) {
        uint32_t start = (rng.next() % cells) & ~1u;
        uint32_t goal = (rng.next() % cells) | 1u;
        m.template storeAt<uint8_t>(grid, start, 0);
        m.template storeAt<uint8_t>(grid, goal, 0);
        for (uint32_t i = 0; i < cells; i++) {
            m.template storeAt<uint32_t>(gcost, i, 0xffffffffu);
            m.template storeAt<uint8_t>(closed, i, 0);
        }
        uint32_t hn = 0;  // heap size
        // always_inline: an outlined lambda body would take its closure
        // in %rdi, hiding the policy object's provenance from the
        // static object verifier; inlined, every access traces to `m`.
        auto hpush = [&](uint32_t f,
                         uint32_t pos) __attribute__((always_inline)) {
            uint32_t i = hn++;
            m.template storeAt<uint64_t>(heap, i,
                                         (uint64_t(f) << 32) | pos);
            while (i > 0) {
                uint32_t parent = (i - 1) / 2;
                uint64_t pi =
                    m.template loadAt<uint64_t>(heap, parent);
                uint64_t ci = m.template loadAt<uint64_t>(heap, i);
                if (pi <= ci)
                    break;
                m.template storeAt<uint64_t>(heap, parent, ci);
                m.template storeAt<uint64_t>(heap, i, pi);
                i = parent;
            }
        };
        auto hpop = [&]() __attribute__((always_inline)) {
            uint64_t top = m.template loadAt<uint64_t>(heap, 0);
            uint64_t last = m.template loadAt<uint64_t>(heap, --hn);
            m.template storeAt<uint64_t>(heap, 0, last);
            uint32_t i = 0;
            while (true) {
                uint32_t l = 2 * i + 1, r = 2 * i + 2, s = i;
                uint64_t si = m.template loadAt<uint64_t>(heap, s);
                if (l < hn &&
                    m.template loadAt<uint64_t>(heap, l) < si) {
                    s = l;
                    si = m.template loadAt<uint64_t>(heap, l);
                }
                if (r < hn &&
                    m.template loadAt<uint64_t>(heap, r) < si) {
                    s = r;
                }
                if (s == i)
                    break;
                uint64_t a = m.template loadAt<uint64_t>(heap, i);
                uint64_t b = m.template loadAt<uint64_t>(heap, s);
                m.template storeAt<uint64_t>(heap, i, b);
                m.template storeAt<uint64_t>(heap, s, a);
                i = s;
            }
            return top;
        };
        auto heuristic = [&](uint32_t pos) {
            int32_t dx = int32_t(pos % W) - int32_t(goal % W);
            int32_t dy = int32_t(pos / W) - int32_t(goal / W);
            return uint32_t((dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy));
        };

        m.template storeAt<uint32_t>(gcost, start, 0);
        hpush(heuristic(start), start);
        uint32_t path_cost = 0;
        uint32_t expanded = 0;
        while (hn > 0 && expanded < 60000) {
            uint64_t top = hpop();
            uint32_t pos = uint32_t(top);
            if (pos == goal) {
                path_cost = m.template loadAt<uint32_t>(gcost, pos);
                break;
            }
            if (m.template loadAt<uint8_t>(closed, pos))
                continue;
            m.template storeAt<uint8_t>(closed, pos, 1);
            expanded++;
            uint32_t g = m.template loadAt<uint32_t>(gcost, pos);
            const int32_t dx[4] = {1, -1, 0, 0};
            const int32_t dy[4] = {0, 0, 1, -1};
            for (int d = 0; d < 4; d++) {
                int32_t nx = int32_t(pos % W) + dx[d];
                int32_t ny = int32_t(pos / W) + dy[d];
                if (nx < 0 || ny < 0 || nx >= int32_t(W) ||
                    ny >= int32_t(H)) {
                    continue;
                }
                uint32_t np = uint32_t(ny) * W + uint32_t(nx);
                if (m.template loadAt<uint8_t>(grid, np))
                    continue;
                uint32_t ng = g + 1;
                if (ng < m.template loadAt<uint32_t>(gcost, np)) {
                    m.template storeAt<uint32_t>(gcost, np, ng);
                    hpush(ng + heuristic(np), np);
                }
            }
        }
        checksum = checksum * 2654435761u + path_cost + expanded;
    }
    return checksum;
}

// --------------------------------------------------------------------
// Explicit instantiations: one copy of every kernel per policy, so the
// symbol table exposes per-policy code sizes (Table 2).
// --------------------------------------------------------------------
#define SFIKIT_INSTANTIATE(P)                                          \
    template uint64_t kernCompress<P>(const P&, uint32_t);             \
    template uint64_t kernMincost<P>(const P&, uint32_t);              \
    template uint64_t kernLattice<P>(const P&, uint32_t);              \
    template uint64_t kernNbody<P>(const P&, uint32_t);                \
    template uint64_t kernGotactics<P>(const P&, uint32_t);            \
    template uint64_t kernMinimax<P>(const P&, uint32_t);              \
    template uint64_t kernQsim<P>(const P&, uint32_t);                 \
    template uint64_t kernBlockcodec<P>(const P&, uint32_t);           \
    template uint64_t kernStencil<P>(const P&, uint32_t);              \
    template uint64_t kernAstar<P>(const P&, uint32_t);

SFIKIT_INSTANTIATE(NativePolicy)
SFIKIT_INSTANTIATE(BaseAddPolicy)
SFIKIT_INSTANTIATE(SeguePolicy)
SFIKIT_INSTANTIATE(BoundsPolicy)
SFIKIT_INSTANTIATE(SegueBoundsPolicy)

#undef SFIKIT_INSTANTIATE

}  // namespace sfi::w2c
