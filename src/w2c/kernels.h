/**
 * @file
 * The SPEC-CPU-2006-like workload suite for the wasm2c-style SFI path
 * (Figure 3, Table 2, and the bounds-check variant of §6.1).
 *
 * SPEC itself is not redistributable, so each kernel is a from-scratch
 * program with the same computational character as its namesake (see
 * DESIGN.md §5 for the mapping). Every kernel:
 *  - builds its input deterministically inside the sandbox heap,
 *  - performs all data accesses through the policy template parameter,
 *  - returns a checksum that must be identical under every policy
 *    (verified by tests — the cross-policy differential check).
 *
 * Definitions are explicitly instantiated (kernels.cc) for each policy
 * and marked noinline, so per-policy code size is measurable from the
 * ELF symbol table (Table 2) and benchmark timing is honest.
 */
#ifndef SFIKIT_W2C_KERNELS_H_
#define SFIKIT_W2C_KERNELS_H_

#include <cstdint>

#include "w2c/policy.h"

namespace sfi::w2c {

// Each kernel: (policy, scale) -> checksum. Scale ~ problem size; the
// required heap size is kernelHeapBytes(scale).

template <typename P> uint64_t kernCompress(const P& m, uint32_t scale);
template <typename P> uint64_t kernMincost(const P& m, uint32_t scale);
template <typename P> uint64_t kernLattice(const P& m, uint32_t scale);
template <typename P> uint64_t kernNbody(const P& m, uint32_t scale);
template <typename P> uint64_t kernGotactics(const P& m, uint32_t scale);
template <typename P> uint64_t kernMinimax(const P& m, uint32_t scale);
template <typename P> uint64_t kernQsim(const P& m, uint32_t scale);
template <typename P> uint64_t kernBlockcodec(const P& m, uint32_t scale);
template <typename P> uint64_t kernStencil(const P& m, uint32_t scale);
template <typename P> uint64_t kernAstar(const P& m, uint32_t scale);

/** Heap bytes every kernel fits in at @p scale. */
uint64_t kernelHeapBytes(uint32_t scale);

/** Registry for harnesses: name + function pointer per policy. */
template <typename P>
struct KernelEntry
{
    const char* name;        ///< SPEC-2006 benchmark it mirrors
    const char* ours;        ///< sfikit kernel name
    uint64_t (*fn)(const P&, uint32_t);
};

template <typename P>
inline const KernelEntry<P> kKernels[] = {
    {"401.bzip2", "compress", &kernCompress<P>},
    {"429.mcf", "mincost", &kernMincost<P>},
    {"433.milc", "lattice", &kernLattice<P>},
    {"444.namd", "nbody", &kernNbody<P>},
    {"445.gobmk", "gotactics", &kernGotactics<P>},
    {"458.sjeng", "minimax", &kernMinimax<P>},
    {"462.libquantum", "qsim", &kernQsim<P>},
    {"464.h264ref", "blockcodec", &kernBlockcodec<P>},
    {"470.lbm", "stencil", &kernStencil<P>},
    {"473.astar", "astar", &kernAstar<P>},
};

inline constexpr int kNumKernels = 10;

}  // namespace sfi::w2c

#endif  // SFIKIT_W2C_KERNELS_H_
