#include "mpk/mte.h"

#include <cstring>

#include "base/logging.h"
#include "base/units.h"

namespace sfi::mpk {

MteEmu::MteEmu(uint64_t bytes)
{
    SFI_CHECK_MSG(isAligned(bytes, kMteGranule),
                  "MTE region must be granule aligned");
    tags_.assign(bytes / kMteGranule, 0);
}

void
MteEmu::setTagRangeUser(uint64_t offset, uint64_t len, uint8_t tag)
{
    SFI_CHECK(isAligned(offset, kMteGranule) && isAligned(len, kMteGranule));
    uint64_t g = offset / kMteGranule;
    uint64_t end = g + len / kMteGranule;
    // ST2G: two granules per instruction. The serializing dependency
    // chain models the tag-memory write latency that makes user-level
    // striping ~27x slower than untagged initialization (§7
    // Observation 1): ~16 dependent multiplies ~= 50 cycles per ST2G.
    uint64_t chain = 1;
    while (g < end) {
        tags_.at(g) = tag & 0xf;
        if (g + 1 < end)
            tags_.at(g + 1) = tag & 0xf;
        for (int c = 0; c < 16; c++)
            asm volatile("imulq %0, %0" : "+r"(chain));
        g += 2;
    }
}

void
MteEmu::setTagRangeBulk(uint64_t offset, uint64_t len, uint8_t tag)
{
    SFI_CHECK(isAligned(offset, kMteGranule) && isAligned(len, kMteGranule));
    std::memset(tags_.data() + offset / kMteGranule, tag & 0xf,
                len / kMteGranule);
}

uint8_t
MteEmu::tagAt(uint64_t offset) const
{
    return tags_.at(offset / kMteGranule);
}

bool
MteEmu::checkAccess(uint8_t pointer_tag, uint64_t offset, uint64_t len) const
{
    if (len == 0)
        return true;
    uint64_t first = offset / kMteGranule;
    uint64_t last = (offset + len - 1) / kMteGranule;
    for (uint64_t g = first; g <= last; g++) {
        if (g >= tags_.size() || tags_[g] != (pointer_tag & 0xf))
            return false;
    }
    return true;
}

uint64_t
MteEmu::decommit(uint64_t offset, uint64_t len, bool preserve_tags)
{
    SFI_CHECK(isAligned(offset, kMteGranule) && isAligned(len, kMteGranule));
    if (preserve_tags)
        return 0;
    uint64_t first = offset / kMteGranule;
    uint64_t count = len / kMteGranule;
    // Linux clears tags on MADV_DONTNEED; model the kernel's tag-zeroing
    // walk (this is what slows teardown in Observation 2).
    uint64_t chain = 1;
    for (uint64_t g = first; g < first + count; g += 2) {
        tags_.at(g) = 0;
        if (g + 1 < first + count)
            tags_.at(g + 1) = 0;
        for (int c = 0; c < 12; c++)
            asm volatile("imulq %0, %0" : "+r"(chain));
    }
    return count;
}

}  // namespace sfi::mpk
