/**
 * @file
 * Emulated ARMv9 MTE as a first-class ColorGuard backend (§7, CAGE).
 *
 * ColorGuard's layout/striping logic only needs a "color" abstraction —
 * assign a color to a slot's pages, switch the thread's active color at
 * sandbox transitions, ask whether an access is legal. MPK realizes the
 * color as a PTE protection key; MTE realizes it as the 4-bit allocation
 * tag of each 16-byte granule plus the pointer's top-nibble logical tag.
 * This backend maps the existing mpk::System interface onto MTE
 * semantics so every consumer (pool, runtime, scheduler, interpreter
 * access hook) runs unchanged on either backend:
 *
 *  - allocKey()      -> allocate a tag nibble 1..15 (tag 0 = untagged
 *                       runtime memory, the analogue of pkey 0).
 *  - protectRange()  -> mprotect() the pages *and* tag the granules.
 *  - writePkru()     -> derive the thread's *active pointer tag* from the
 *                       Pkru image: allowOnly(k) means "this thread's
 *                       sandbox pointers carry tag k"; allowAll means
 *                       host mode (tag checks suppressed, like PSTATE.TCO
 *                       during trusted runtime execution). There is no
 *                       PKRU register to write, which is why MTE
 *                       transitions are modeled as free — the tag rides
 *                       in the pointer.
 *  - checkAccess()   -> page access check plus granule-tag match: a
 *                       sandbox thread with active tag k may touch
 *                       granules tagged k (its slot) or 0 (shared
 *                       runtime pages).
 *
 * The two MTE cost asymmetries the paper measures (§7) surface through
 * the same interface: Observation 1 (slow userspace ST2G tagging) as an
 * optional modeled cost on protectRange, and Observation 2 (madvise
 * discards tags) via tagsSurviveDecommit() == false + onDecommit()
 * clearing tags, which makes the pool re-tag recycled slots.
 */
#ifndef SFIKIT_MPK_MTE_BACKEND_H_
#define SFIKIT_MPK_MTE_BACKEND_H_

#include <cstdint>
#include <memory>

#include "mpk/mpk.h"

namespace sfi::mpk {

struct MteBackendOptions {
    /**
     * Model the userspace ST2G path on protectRange (two granules per
     * serialized instruction, Observation 1). Off by default so
     * functional tests run fast; the §7 bench turns it on.
     */
    bool modelUserTagCost = false;
    /**
     * Tags survive decommit (the madvise tag-preserving flag the paper
     * proposes). Off = current Linux semantics, Observation 2.
     */
    bool preserveTagsOnDecommit = false;
};

class MteSystem : public System
{
  public:
    explicit MteSystem(const MteBackendOptions& options);
    ~MteSystem() override;

    const char* name() const override { return "emulated-mte"; }
    bool enforcesInHardware() const override { return false; }

    Result<Pkey> allocKey() override;
    Status freeKey(Pkey key) override;
    Status protectRange(void* addr, uint64_t len, PageAccess access,
                        Pkey key) override;
    void writePkru(Pkru pkru) override;
    Pkru readPkru() const override;
    bool checkAccess(const void* addr, bool is_write) const override;
    Pkey keyOf(const void* addr) const override;

    bool tagsSurviveDecommit() const override;
    void onDecommit(void* addr, uint64_t len) override;

    /**
     * Test hook: overwrite the tag of the single granule containing
     * @p addr (as a corrupted or stale tag would), without touching page
     * protection. Negative fixtures use this to prove mis-tagged
     * granules are caught.
     */
    void poisonGranule(void* addr, uint8_t tag);

    struct Stats {
        uint64_t granulesTagged = 0;     ///< granules written by protectRange
        uint64_t granulesDiscarded = 0;  ///< tags lost to decommit
        uint64_t decommits = 0;          ///< onDecommit notifications
        uint64_t tagChecks = 0;          ///< checkAccess probes
    };
    Stats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Emulated-MTE backend behind the common System interface. */
std::unique_ptr<MteSystem> makeMteBackend(const MteBackendOptions& options = {});

}  // namespace sfi::mpk

#endif  // SFIKIT_MPK_MTE_BACKEND_H_
