/**
 * @file
 * Generation-counted protection-key allocator with batched recycling.
 *
 * ColorGuard has 15 usable colors (§3.2); without reuse that hard-bounds
 * the number of concurrently-live sandboxes per striping domain. The
 * KeyRing removes the bound by recycling keys in batches:
 *
 *   1. Released keys are *retired*, not freed: the pages they color may
 *      still be reachable through a stale PKRU on some thread.
 *   2. When the free list runs dry, the allocating thread opens a
 *      *recycle epoch*: it bumps the global epoch counter and waits for
 *      every registered participant (worker thread) to fence — i.e. to
 *      declare "my PKRU no longer grants any retired key" by storing the
 *      current epoch into its participant slot. This is the PKRU fence of
 *      the quiesce→fence→re-tag→reissue sequence.
 *   3. Only after the fence do the retag callbacks run (re-coloring the
 *      retired cohort's pages), the per-key generation counters bump, and
 *      the whole retired cohort moves to the free list at once.
 *
 * Ordering argument (also in DESIGN.md): re-tagging before the fence
 * would let a thread that is still *inside* a departed sandbox — PKRU =
 * allowOnly(k) — read or write pages that have just been re-colored k for
 * a *new* tenant: cross-sandbox aliasing. The fence makes that
 * impossible, and the generation counter makes stale Lease handles
 * detectable after the fact.
 *
 * When every key is live (nothing retired, nothing free) the ring falls
 * back to *sharing*: two sandboxes on one color, exactly the spatial
 * reuse striping already performs, avoiding the caller's neighbor colors
 * so the adjacent-slots-differ contract holds.
 *
 * Fault points (see base/fault.h): "keyring.alloc" fails a key
 * allocation, "keyring.quiesce" simulates a quiesce timeout.
 */
#ifndef SFIKIT_MPK_KEYRING_H_
#define SFIKIT_MPK_KEYRING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/result.h"
#include "mpk/mpk.h"

namespace sfi::mpk {

/** A key grant tied to the recycle generation it was issued under. */
struct Lease {
    Pkey key = 0;
    uint64_t generation = 0;

    bool valid() const { return key != 0; }
};

/** Re-colors a retired key's pages; runs after the PKRU fence. */
using RetagFn = std::function<void()>;

class KeyRing
{
  public:
    struct Options {
        /** Backend that owns the raw keys. Required. */
        System* system = nullptr;
        /** Give up on a quiesce after this long and degrade to sharing. */
        uint64_t quiesceTimeoutNs = 2'000'000'000;
        /** Polling interval while waiting for participant fences. */
        uint64_t quiescePollNs = 5'000;
    };

    struct Stats {
        uint64_t keyRecycles = 0;      ///< recycle epochs completed
        uint64_t keysRecycled = 0;     ///< keys moved retired -> free
        uint64_t recycleStallNs = 0;   ///< time spent waiting on fences
        uint64_t keyShares = 0;        ///< leases served by sharing
        uint64_t quiesceTimeouts = 0;  ///< epochs abandoned on timeout
        uint64_t allocFailures = 0;    ///< backend/injected alloc failures
        uint64_t staleReleases = 0;    ///< releases with an old generation
        uint64_t liveKeys = 0;         ///< keys with a live lease
        uint64_t retiredKeys = 0;      ///< keys awaiting recycle
        uint64_t freeKeys = 0;         ///< keys ready to issue
    };

    /**
     * A thread that may hold sandbox PKRU values. Workers register once
     * and call fence() at every point where their PKRU grants no retired
     * key — host idle loops, post-request cleanup, fiber park sites.
     */
    class Participant
    {
      public:
        /** Declare "my PKRU grants no retired key as of now". Lock-free. */
        void
        fence()
        {
            fenced_.store(ring_->epoch_.load(std::memory_order_acquire),
                          std::memory_order_release);
        }

      private:
        friend class KeyRing;
        explicit Participant(KeyRing* ring) : ring_(ring) {}

        KeyRing* ring_;
        std::atomic<uint64_t> fenced_{0};
        std::atomic<bool> active_{true};
    };

    explicit KeyRing(const Options& options);
    ~KeyRing();

    KeyRing(const KeyRing&) = delete;
    KeyRing& operator=(const KeyRing&) = delete;

    /**
     * Registers the calling thread as a fence participant. The returned
     * pointer stays valid for the ring's lifetime; call
     * unregisterParticipant when the thread exits so quiesces stop
     * waiting on it.
     */
    Participant* registerParticipant();
    void unregisterParticipant(Participant* p);

    /**
     * Issues a key lease. @p self (may be null for single-threaded use)
     * is fenced on entry so the caller never blocks its own quiesce.
     * @p avoid_mask bit k set means "do not issue key k" — callers pass
     * their neighbor slots' colors to keep the striping contract.
     *
     * May open a recycle epoch (blocking until quiesce) when the free
     * list is dry; degrades to sharing a live key on exhaustion or
     * quiesce timeout.
     */
    Result<Lease> acquire(Participant* self, uint16_t avoid_mask = 0);

    /**
     * Returns a lease. The last release of a key retires it; @p retag
     * (may be empty) is deferred until after that key's next post-fence
     * recycle, and is dropped if the lease generation is stale.
     */
    void release(const Lease& lease, RetagFn retag = nullptr);

    /** Current generation of @p key (0 if never issued). */
    uint64_t generationOf(Pkey key) const;

    /** True if @p lease is from the current generation of its key. */
    bool isCurrent(const Lease& lease) const;

    Stats stats() const;

    System* system() const { return system_; }

  private:
    struct KeyState;
    struct Core;

    bool waitQuiesce(uint64_t target, Participant* self, uint64_t* stall_ns);

    System* system_;
    Options options_;
    std::atomic<uint64_t> epoch_{1};
    std::unique_ptr<Core> core_;
};

}  // namespace sfi::mpk

#endif  // SFIKIT_MPK_KEYRING_H_
