#include "mpk/mte_backend.h"

#include <sys/mman.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>

#include "base/logging.h"
#include "base/units.h"
#include "mpk/colormap.h"
#include "mpk/mte.h"

namespace sfi::mpk {

struct MteSystem::Impl {
    MteBackendOptions options;
    KeyPool tags;      // tag nibbles 1..15, same space as pkeys
    ColorMap granules; // addr range -> (tag, page access)
    uint64_t id;       // thread-local Pkru map key (see EmulatedMpk)

    std::mutex statsMu;
    Stats stats;  // tagChecks tracked separately (hot path, lock-free)
    std::atomic<uint64_t> tagChecks{0};

    Pkru&
    tlPkru() const
    {
        static thread_local std::map<uint64_t, Pkru> map;
        return map[id];
    }

    static uint64_t
    nextId()
    {
        static std::atomic<uint64_t> next{1u << 20};  // disjoint from MPK ids
        return next.fetch_add(1, std::memory_order_relaxed);
    }
};

MteSystem::MteSystem(const MteBackendOptions& options)
    : impl_(std::make_unique<Impl>())
{
    impl_->options = options;
    impl_->id = Impl::nextId();
}

MteSystem::~MteSystem() = default;

Result<Pkey>
MteSystem::allocKey()
{
    return impl_->tags.alloc();
}

Status
MteSystem::freeKey(Pkey key)
{
    return impl_->tags.free(key);
}

Status
MteSystem::protectRange(void* addr, uint64_t len, PageAccess access,
                        Pkey key)
{
    if (key < 0 || key >= kNumKeys)
        return Status::error("bad mte tag");
    uint64_t start = reinterpret_cast<uint64_t>(addr);
    if (!isAligned(start, kOsPageSize) || !isAligned(len, kOsPageSize))
        return Status::error("mte protect range not page aligned");
    if (mprotect(addr, len, protFlags(access)) != 0) {
        return Status::error(std::string("mprotect: ") +
                             std::strerror(errno));
    }
    if (impl_->options.modelUserTagCost) {
        // Userspace ST2G path: two granules per serialized instruction
        // (§7 Observation 1) — same cost shape MteEmu::setTagRangeUser
        // models, without a second tag array to keep coherent.
        uint64_t chain = 1;
        for (uint64_t done = 0; done < len; done += 2 * kMteGranule) {
            for (int c = 0; c < 16; c++)
                asm volatile("imulq %0, %0" : "+r"(chain));
        }
    }
    impl_->granules.set(start, start + len, key, access);
    std::lock_guard<std::mutex> lock(impl_->statsMu);
    impl_->stats.granulesTagged += len / kMteGranule;
    return Status::ok();
}

void
MteSystem::writePkru(Pkru pkru)
{
    // MTE has no PKRU: the sandbox color rides in the pointer's top
    // nibble, so a transition just starts using differently-tagged
    // pointers. We keep the Pkru *image* per thread to derive the active
    // tag for the probe API, but model zero switch cost — this is the
    // transition-cost advantage MTE has over WRPKRU.
    impl_->tlPkru() = pkru;
}

Pkru
MteSystem::readPkru() const
{
    return impl_->tlPkru();
}

bool
MteSystem::checkAccess(const void* addr, bool is_write) const
{
    impl_->tagChecks.fetch_add(1, std::memory_order_relaxed);
    auto r = impl_->granules.lookup(reinterpret_cast<uint64_t>(addr));
    if (!accessAllows(r.access, is_write))
        return false;
    Pkru pkru = impl_->tlPkru();
    if (pkru == Pkru::allowAll()) {
        // Host mode: trusted runtime accesses run tag-check-free
        // (PSTATE.TCO / untagged host mapping).
        return true;
    }
    // Sandbox mode: the pointer carries the single enabled tag. Accesses
    // hit granules of that tag (the slot) or tag 0 (shared runtime pages
    // reached through untagged pointers) — the analogue of pkey 0.
    if (r.key == 0)
        return true;
    return pkru.canAccess(r.key);
}

Pkey
MteSystem::keyOf(const void* addr) const
{
    return impl_->granules.lookup(reinterpret_cast<uint64_t>(addr)).key;
}

bool
MteSystem::tagsSurviveDecommit() const
{
    return impl_->options.preserveTagsOnDecommit;
}

void
MteSystem::onDecommit(void* addr, uint64_t len)
{
    std::lock_guard<std::mutex> lock(impl_->statsMu);
    impl_->stats.decommits++;
    if (impl_->options.preserveTagsOnDecommit)
        return;
    // madvise(MADV_DONTNEED) drops the physical granules and their tags
    // (§7 Observation 2): the range reverts to tag 0. Page access is
    // unchanged — the mapping itself survives.
    uint64_t start = reinterpret_cast<uint64_t>(addr);
    uint64_t end = start + len;
    auto r = impl_->granules.lookup(start);
    impl_->granules.set(start, end, 0,
                        r.end != 0 ? r.access : PageAccess::ReadWrite);
    impl_->stats.granulesDiscarded += len / kMteGranule;
}

void
MteSystem::poisonGranule(void* addr, uint8_t tag)
{
    uint64_t start = reinterpret_cast<uint64_t>(addr) & ~(kMteGranule - 1);
    auto r = impl_->granules.lookup(start);
    impl_->granules.set(start, start + kMteGranule, Pkey(tag & 0xf),
                        r.end != 0 ? r.access : PageAccess::ReadWrite);
}

MteSystem::Stats
MteSystem::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->statsMu);
    Stats s = impl_->stats;
    s.tagChecks = impl_->tagChecks.load(std::memory_order_relaxed);
    return s;
}

std::unique_ptr<MteSystem>
makeMteBackend(const MteBackendOptions& options)
{
    return std::make_unique<MteSystem>(options);
}

}  // namespace sfi::mpk
