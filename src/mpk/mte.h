/**
 * @file
 * ARMv9 MTE (Memory Tagging Extension) emulation for the §7 study.
 *
 * MTE tags 16-byte granules; a pointer's top nibble (bits 63..60) must
 * match the granule tag or the access traps. The paper prototypes
 * ColorGuard-MTE on a Pixel 8 and reports two cost problems:
 *
 *  Observation 1 — userspace tagging writes at most two granules per
 *  instruction (ST2G), so striping a linear memory is slow: 40 × 64 KiB
 *  memories go from 79 µs to 2,182 µs per instance to initialize.
 *
 *  Observation 2 — madvise(MADV_DONTNEED) discards tags (unlike MPK,
 *  whose PTE colors survive), so recycling a slot pays re-tagging *and*
 *  slower teardown: 29 µs → 377 µs per instance.
 *
 * This emulator keeps a side array of 4-bit tags, mimics the 2-granules-
 * per-instruction user path vs. a kernel-style bulk path, and lets
 * decommit either discard tags (current Linux semantics) or preserve them
 * (the madvise-flag fix the paper proposes).
 */
#ifndef SFIKIT_MPK_MTE_H_
#define SFIKIT_MPK_MTE_H_

#include <cstdint>
#include <vector>

namespace sfi::mpk {

/** Bytes covered by one MTE tag. */
inline constexpr uint64_t kMteGranule = 16;

/** Tag-memory emulation for one contiguous region. */
class MteEmu
{
  public:
    /** Emulates tag storage for a region of @p bytes (granule-aligned). */
    explicit MteEmu(uint64_t bytes);

    /**
     * Tag [offset, offset+len) with @p tag through the userspace path:
     * two granules per (emulated) ST2G instruction, with a serializing
     * dependency per instruction, reproducing Observation 1's cost shape.
     */
    void setTagRangeUser(uint64_t offset, uint64_t len, uint8_t tag);

    /** Kernel-style bulk tagging (what OS bulk-tag support would give). */
    void setTagRangeBulk(uint64_t offset, uint64_t len, uint8_t tag);

    /** Tag of the granule containing @p offset. */
    uint8_t tagAt(uint64_t offset) const;

    /**
     * Would a load/store through @p tagged_ptr_nibble at [offset,
     * offset+len) be permitted? Checks every covered granule.
     */
    bool checkAccess(uint8_t pointer_tag, uint64_t offset,
                     uint64_t len) const;

    /**
     * Emulates madvise(MADV_DONTNEED) over the region.
     * @param preserve_tags false = current Linux behaviour (tags reset to
     *        0, Observation 2); true = the proposed tag-invariant flag.
     * Returns the number of granules whose tags were cleared.
     */
    uint64_t decommit(uint64_t offset, uint64_t len, bool preserve_tags);

    uint64_t granules() const { return tags_.size(); }

  private:
    std::vector<uint8_t> tags_;
};

}  // namespace sfi::mpk

#endif  // SFIKIT_MPK_MTE_H_
