#include "mpk/keyring.h"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "base/cpu.h"
#include "base/fault.h"
#include "base/logging.h"

namespace sfi::mpk {

namespace {

void
sleepNs(uint64_t ns)
{
    struct timespec ts;
    ts.tv_sec = ns / 1'000'000'000ull;
    ts.tv_nsec = long(ns % 1'000'000'000ull);
    nanosleep(&ts, nullptr);
}

}  // namespace

struct KeyRing::KeyState {
    Pkey key = 0;
    uint64_t generation = 1;
    uint64_t liveCount = 0;  // outstanding leases (>1 only when sharing)
    bool retired = false;
    uint64_t retiredAtEpoch = 0;  // epoch_ when the key retired
    std::vector<RetagFn> retags;  // run post-fence, before reissue
};

struct KeyRing::Core {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::vector<KeyState> keys;   // every key ever allocated from system
    std::vector<size_t> freeIdx;  // indices into keys, ready to issue
    bool recycleInProgress = false;
    bool systemExhausted = false;
    Stats stats;

    std::mutex participantsMu;
    std::deque<std::unique_ptr<Participant>> participants;
};

KeyRing::KeyRing(const Options& options)
    : system_(options.system), options_(options),
      core_(std::make_unique<Core>())
{
    SFI_CHECK_MSG(system_ != nullptr, "KeyRing requires a backend system");
}

KeyRing::~KeyRing()
{
    std::lock_guard<std::mutex> lock(core_->mu);
    for (KeyState& ks : core_->keys) {
        system_->freeKey(ks.key);
    }
}

KeyRing::Participant*
KeyRing::registerParticipant()
{
    auto p = std::unique_ptr<Participant>(new Participant(this));
    // Born fenced: a fresh thread cannot hold a stale sandbox PKRU, so it
    // must not stall a quiesce that opened before it registered.
    p->fenced_.store(epoch_.load(std::memory_order_acquire),
                     std::memory_order_release);
    Participant* raw = p.get();
    std::lock_guard<std::mutex> lock(core_->participantsMu);
    core_->participants.push_back(std::move(p));
    return raw;
}

void
KeyRing::unregisterParticipant(Participant* p)
{
    if (p == nullptr) {
        return;
    }
    // Keep the slot (quiescers may hold a snapshot); just stop waiting
    // on it.
    p->active_.store(false, std::memory_order_release);
}

bool
KeyRing::waitQuiesce(uint64_t target, Participant* self, uint64_t* stall_ns)
{
    if (fault::fire("keyring.quiesce")) {
        return false;  // caller counts the timeout under its lock
    }
    if (self != nullptr) {
        self->fence();
    }
    uint64_t start = monotonicNs();
    for (;;) {
        bool allFenced = true;
        {
            std::lock_guard<std::mutex> lock(core_->participantsMu);
            for (const auto& p : core_->participants) {
                if (!p->active_.load(std::memory_order_acquire)) {
                    continue;
                }
                if (p->fenced_.load(std::memory_order_acquire) < target) {
                    allFenced = false;
                    break;
                }
            }
        }
        uint64_t elapsed = monotonicNs() - start;
        if (allFenced) {
            *stall_ns += elapsed;
            return true;
        }
        if (elapsed > options_.quiesceTimeoutNs) {
            *stall_ns += elapsed;
            return false;
        }
        sleepNs(options_.quiescePollNs);
    }
}

Result<Lease>
KeyRing::acquire(Participant* self, uint16_t avoid_mask)
{
    if (self != nullptr) {
        // Never let our own stale fence block the quiesce we may be
        // about to open (or one another thread already opened).
        self->fence();
    }
    Core& c = *core_;
    std::unique_lock<std::mutex> lock(c.mu);
    for (;;) {
        // 1. Free list, respecting the neighbor-color avoid mask.
        for (size_t i = 0; i < c.freeIdx.size(); i++) {
            KeyState& ks = c.keys[c.freeIdx[i]];
            if (avoid_mask & (1u << ks.key)) {
                continue;
            }
            c.freeIdx.erase(c.freeIdx.begin() + long(i));
            ks.liveCount = 1;
            c.stats.liveKeys++;
            c.stats.freeKeys--;
            return Lease{ks.key, ks.generation};
        }

        // 2. Grow from the backend while it still has raw keys. An
        //    injected allocation failure is transient: count it and
        //    degrade through recycling/sharing this round (the same
        //    ladder exhaustion uses) instead of wedging the caller.
        if (!c.systemExhausted) {
            if (fault::fire("keyring.alloc")) {
                c.stats.allocFailures++;
            } else {
                Result<Pkey> raw = system_->allocKey();
                if (raw.isOk()) {
                    KeyState ks;
                    ks.key = raw.value();
                    c.keys.push_back(std::move(ks));
                    c.freeIdx.push_back(c.keys.size() - 1);
                    c.stats.freeKeys++;
                    continue;
                }
                c.systemExhausted = true;
            }
        }

        // 3. Recycle the retired cohort: quiesce -> fence -> retag ->
        //    reissue. Done by whichever acquirer hits the dry free list
        //    first; others fence and wait so they cannot stall it.
        bool haveRetired = std::any_of(
            c.keys.begin(), c.keys.end(),
            [](const KeyState& ks) { return ks.retired; });
        if (haveRetired && !c.recycleInProgress) {
            c.recycleInProgress = true;
            uint64_t target =
                epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
            lock.unlock();
            uint64_t stallNs = 0;
            bool quiesced = waitQuiesce(target, self, &stallNs);
            lock.lock();
            c.stats.recycleStallNs += stallNs;
            c.recycleInProgress = false;
            if (quiesced) {
                uint64_t recycled = 0;
                for (size_t i = 0; i < c.keys.size(); i++) {
                    KeyState& ks = c.keys[i];
                    // A key retired after this epoch opened has not been
                    // fenced against; it waits for the next epoch.
                    if (!ks.retired || ks.retiredAtEpoch >= target) {
                        continue;
                    }
                    for (RetagFn& fn : ks.retags) {
                        if (fn) {
                            fn();
                        }
                    }
                    ks.retags.clear();
                    ks.retired = false;
                    ks.generation++;
                    c.freeIdx.push_back(i);
                    recycled++;
                }
                c.stats.keyRecycles++;
                c.stats.keysRecycled += recycled;
                c.stats.retiredKeys -= recycled;
                c.stats.freeKeys += recycled;
            } else {
                c.stats.quiesceTimeouts++;
            }
            c.cv.notify_all();
            if (quiesced) {
                continue;  // free list refilled; take step 1
            }
            // Quiesce failed: fall through to sharing rather than wedge.
        } else if (c.recycleInProgress) {
            if (self != nullptr) {
                self->fence();
            }
            c.cv.wait_for(lock, std::chrono::microseconds(50));
            continue;
        }

        // 4. Exhausted (or quiesce timed out): share a live key. This is
        //    the same spatial reuse striping performs — two tenants on
        //    one color — constrained by the caller's neighbor mask.
        KeyState* best = nullptr;
        for (KeyState& ks : c.keys) {
            if (ks.retired || ks.liveCount == 0) {
                continue;
            }
            if (avoid_mask & (1u << ks.key)) {
                continue;
            }
            if (best == nullptr || ks.liveCount < best->liveCount) {
                best = &ks;
            }
        }
        if (best == nullptr) {
            return Result<Lease>::error(
                "keyring: no key satisfies the neighbor-color constraint");
        }
        best->liveCount++;
        c.stats.keyShares++;
        return Lease{best->key, best->generation};
    }
}

void
KeyRing::release(const Lease& lease, RetagFn retag)
{
    if (!lease.valid()) {
        return;
    }
    Core& c = *core_;
    std::lock_guard<std::mutex> lock(c.mu);
    for (KeyState& ks : c.keys) {
        if (ks.key != lease.key) {
            continue;
        }
        if (ks.generation != lease.generation) {
            // Lease outlived a recycle of its key: the pages were already
            // re-tagged by the recycle pass, nothing left to do.
            c.stats.staleReleases++;
            return;
        }
        SFI_CHECK_MSG(ks.liveCount > 0, "release of key %d with no lease",
                      lease.key);
        ks.liveCount--;
        if (retag) {
            ks.retags.push_back(std::move(retag));
        }
        if (ks.liveCount == 0) {
            ks.retired = true;
            ks.retiredAtEpoch = epoch_.load(std::memory_order_acquire);
            c.stats.liveKeys--;
            c.stats.retiredKeys++;
        }
        return;
    }
    SFI_PANIC("release of unknown key %d", lease.key);
}

uint64_t
KeyRing::generationOf(Pkey key) const
{
    std::lock_guard<std::mutex> lock(core_->mu);
    for (const KeyState& ks : core_->keys) {
        if (ks.key == key) {
            return ks.generation;
        }
    }
    return 0;
}

bool
KeyRing::isCurrent(const Lease& lease) const
{
    return lease.valid() && generationOf(lease.key) == lease.generation;
}

KeyRing::Stats
KeyRing::stats() const
{
    std::lock_guard<std::mutex> lock(core_->mu);
    return core_->stats;
}

}  // namespace sfi::mpk
