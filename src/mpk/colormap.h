/**
 * @file
 * Bookkeeping shared by the protection-key backends (internal header).
 *
 * Every backend — hardware MPK, emulated MPK, mprotect fallback, and the
 * emulated MTE backend — needs the same three pieces: an interval map
 * from address range to (color/tag, page access), a small allocator over
 * the 15 usable colors, and a way to model fixed instruction latencies.
 * MTE reuses the interval map at granule granularity (its "color" is the
 * 4-bit allocation tag), which is precisely why the pool's striping logic
 * can be backend-agnostic.
 */
#ifndef SFIKIT_MPK_COLORMAP_H_
#define SFIKIT_MPK_COLORMAP_H_

#include <map>
#include <mutex>

#include "base/os_mem.h"
#include "base/result.h"
#include "mpk/mpk.h"

namespace sfi::mpk {

/** ~3-cycle dependent multiplies to model a fixed instruction latency. */
inline void
latencyChain(int cycles)
{
    uint64_t x = 3;
    for (int i = 0; i < cycles / 3; i++)
        asm volatile("imulq %0, %0" : "+r"(x));
}

/** Colored range bookkeeping shared by every backend: addr -> (end, key). */
class ColorMap
{
  public:
    struct Range
    {
        uint64_t end;
        Pkey key;
        PageAccess access;
    };

    void
    set(uint64_t start, uint64_t end, Pkey key, PageAccess access)
    {
        std::lock_guard<std::mutex> lock(mu_);
        // Split any interval overlapping [start, end).
        auto it = ranges_.lower_bound(start);
        if (it != ranges_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > start) {
                Range tail = prev->second;
                uint64_t tail_end = tail.end;
                prev->second.end = start;
                if (tail_end > end)
                    ranges_[end] = {tail_end, tail.key, tail.access};
            }
        }
        while (it != ranges_.end() && it->first < end) {
            Range cur = it->second;
            uint64_t cur_start = it->first;
            it = ranges_.erase(it);
            (void)cur_start;
            if (cur.end > end)
                ranges_[end] = cur;
        }
        ranges_[start] = {end, key, access};
    }

    /** Key + access of the range containing @p addr; key 0 if uncolored. */
    Range
    lookup(uint64_t addr) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = ranges_.upper_bound(addr);
        if (it != ranges_.begin()) {
            auto prev = std::prev(it);
            if (prev->second.end > addr)
                return prev->second;
        }
        return {0, 0, PageAccess::ReadWrite};
    }

    template <typename Fn>
    void
    forEach(Fn&& fn) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [start, r] : ranges_)
            fn(start, r);
    }

  private:
    mutable std::mutex mu_;
    std::map<uint64_t, Range> ranges_;
};

/** Key-allocation bitmap shared by every backend (thread-safe). */
class KeyPool
{
  public:
    Result<Pkey>
    alloc()
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (Pkey k = 1; k < kNumKeys; k++) {
            if (!(used_ & (1u << k))) {
                used_ |= 1u << k;
                return k;
            }
        }
        return Result<Pkey>::error("protection keys exhausted (15 in use)");
    }

    Status
    free(Pkey key)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (key <= 0 || key >= kNumKeys || !(used_ & (1u << key)))
            return Status::error("freeing unallocated key");
        used_ &= ~(1u << key);
        return Status::ok();
    }

  private:
    std::mutex mu_;
    uint32_t used_ = 0;
};

inline bool
accessAllows(PageAccess access, bool is_write)
{
    switch (access) {
      case PageAccess::None: return false;
      case PageAccess::ReadOnly: return !is_write;
      default: return true;
    }
}

int protFlags(PageAccess access);

}  // namespace sfi::mpk

#endif  // SFIKIT_MPK_COLORMAP_H_
