#include "mpk/mpk.h"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>

#include "base/cpu.h"
#include "base/logging.h"
#include "base/units.h"
#include "mpk/colormap.h"

namespace sfi::mpk {

int
protFlags(PageAccess access)
{
    switch (access) {
      case PageAccess::None: return PROT_NONE;
      case PageAccess::ReadOnly: return PROT_READ;
      case PageAccess::ReadWrite: return PROT_READ | PROT_WRITE;
      case PageAccess::ReadExec: return PROT_READ | PROT_EXEC;
      case PageAccess::ReadWriteExec:
        return PROT_READ | PROT_WRITE | PROT_EXEC;
    }
    return PROT_NONE;
}

namespace {

/**
 * Real MPK. PKRU is genuinely per-thread in hardware; bookkeeping mirrors
 * the kernel's view so checkAccess() can answer without faulting.
 */
class HardwareMpk : public System
{
  public:
    const char* name() const override { return "hardware-mpk"; }
    bool enforcesInHardware() const override { return true; }

    Result<Pkey>
    allocKey() override
    {
        long k = syscall(SYS_pkey_alloc, 0, 0);
        if (k < 0) {
            return Result<Pkey>::error(std::string("pkey_alloc: ") +
                                       std::strerror(errno));
        }
        return static_cast<Pkey>(k);
    }

    Status
    freeKey(Pkey key) override
    {
        if (syscall(SYS_pkey_free, key) != 0) {
            return Status::error(std::string("pkey_free: ") +
                                 std::strerror(errno));
        }
        return Status::ok();
    }

    Status
    protectRange(void* addr, uint64_t len, PageAccess access,
                 Pkey key) override
    {
        if (syscall(SYS_pkey_mprotect, addr, len, protFlags(access), key) !=
            0) {
            return Status::error(std::string("pkey_mprotect: ") +
                                 std::strerror(errno));
        }
        colors_.set(reinterpret_cast<uint64_t>(addr),
                    reinterpret_cast<uint64_t>(addr) + len, key, access);
        return Status::ok();
    }

    void
    writePkru(Pkru pkru) override
    {
        uint32_t v = pkru.bits();
        asm volatile("wrpkru" : : "a"(v), "c"(0), "d"(0));
    }

    Pkru
    readPkru() const override
    {
        uint32_t v;
        asm volatile("rdpkru" : "=a"(v) : "c"(0) : "rdx");
        return Pkru(v);
    }

    bool
    checkAccess(const void* addr, bool is_write) const override
    {
        auto r = colors_.lookup(reinterpret_cast<uint64_t>(addr));
        if (!accessAllows(r.access, is_write))
            return false;
        Pkru pkru = readPkru();
        return is_write ? pkru.canWrite(r.key) : pkru.canAccess(r.key);
    }

    Pkey
    keyOf(const void* addr) const override
    {
        return colors_.lookup(reinterpret_cast<uint64_t>(addr)).key;
    }

  private:
    ColorMap colors_;
};

/**
 * Emulated MPK: full bookkeeping, no hardware traps. The PKRU is
 * per-(instance, thread), mirroring hardware where PKRU is a per-thread
 * register — concurrent FaaS workers each hold their own sandbox color
 * without racing on a shared register image.
 */
class EmulatedMpk : public System
{
  public:
    explicit EmulatedMpk(int modeled_wrpkru_cycles)
        : modeledCycles_(modeled_wrpkru_cycles)
    {
    }

    const char* name() const override { return "emulated-mpk"; }
    bool enforcesInHardware() const override { return false; }

    Result<Pkey> allocKey() override { return keys_.alloc(); }
    Status freeKey(Pkey key) override { return keys_.free(key); }

    Status
    protectRange(void* addr, uint64_t len, PageAccess access,
                 Pkey key) override
    {
        if (key < 0 || key >= kNumKeys)
            return Status::error("bad pkey");
        uint64_t start = reinterpret_cast<uint64_t>(addr);
        if (!isAligned(start, kOsPageSize) || !isAligned(len, kOsPageSize))
            return Status::error("pkey_mprotect range not page aligned");
        // The real syscall also applies the page protection.
        if (mprotect(addr, len, protFlags(access)) != 0) {
            return Status::error(std::string("mprotect: ") +
                                 std::strerror(errno));
        }
        colors_.set(start, start + len, key, access);
        return Status::ok();
    }

    void
    writePkru(Pkru pkru) override
    {
        tlPkru() = pkru;
        if (modeledCycles_ > 0)
            latencyChain(modeledCycles_);
    }

    Pkru readPkru() const override { return tlPkru(); }

    bool
    checkAccess(const void* addr, bool is_write) const override
    {
        auto r = colors_.lookup(reinterpret_cast<uint64_t>(addr));
        if (!accessAllows(r.access, is_write))
            return false;
        Pkru pkru = tlPkru();
        return is_write ? pkru.canWrite(r.key) : pkru.canAccess(r.key);
    }

    Pkey
    keyOf(const void* addr) const override
    {
        return colors_.lookup(reinterpret_cast<uint64_t>(addr)).key;
    }

  private:
    /**
     * This thread's PKRU image for this system (default allowAll).
     * Keyed by a monotonically-unique system id — never the address —
     * so a recycled allocation cannot inherit a stale register image,
     * and no destructor has to touch the thread_local map (which may
     * already be gone during static teardown).
     */
    Pkru&
    tlPkru() const
    {
        static thread_local std::map<uint64_t, Pkru> map;
        return map[id_];
    }

    static uint64_t
    nextId()
    {
        static std::atomic<uint64_t> next{0};
        return next.fetch_add(1, std::memory_order_relaxed);
    }

    KeyPool keys_;
    ColorMap colors_;
    uint64_t id_ = nextId();
    int modeledCycles_;
};

/**
 * Enforcing fallback: every PKRU write is realized by re-mprotecting all
 * colored ranges. Orders of magnitude slower than WRPKRU — exactly the
 * cost ColorGuard exists to avoid — but gives hardware-grade enforcement
 * on machines without PKU, so tests can validate trapping behaviour.
 */
class MprotectMpk : public System
{
  public:
    const char* name() const override { return "mprotect-mpk"; }
    bool enforcesInHardware() const override { return true; }

    Result<Pkey> allocKey() override { return keys_.alloc(); }
    Status freeKey(Pkey key) override { return keys_.free(key); }

    Status
    protectRange(void* addr, uint64_t len, PageAccess access,
                 Pkey key) override
    {
        if (key < 0 || key >= kNumKeys)
            return Status::error("bad pkey");
        uint64_t start = reinterpret_cast<uint64_t>(addr);
        colors_.set(start, start + len, key, access);
        return applyOne(start, len, key, access);
    }

    void
    writePkru(Pkru pkru) override
    {
        pkru_ = pkru;
        colors_.forEach([&](uint64_t start, const ColorMap::Range& r) {
            applyOne(start, r.end - start, r.key, r.access);
        });
    }

    Pkru readPkru() const override { return pkru_; }

    bool
    checkAccess(const void* addr, bool is_write) const override
    {
        auto r = colors_.lookup(reinterpret_cast<uint64_t>(addr));
        if (!accessAllows(r.access, is_write))
            return false;
        return is_write ? pkru_.canWrite(r.key) : pkru_.canAccess(r.key);
    }

    Pkey
    keyOf(const void* addr) const override
    {
        return colors_.lookup(reinterpret_cast<uint64_t>(addr)).key;
    }

  private:
    Status
    applyOne(uint64_t start, uint64_t len, Pkey key, PageAccess access)
    {
        PageAccess effective = access;
        if (!pkru_.canAccess(key)) {
            effective = PageAccess::None;
        } else if (!pkru_.canWrite(key) && access == PageAccess::ReadWrite) {
            effective = PageAccess::ReadOnly;
        }
        if (mprotect(reinterpret_cast<void*>(start), len,
                     protFlags(effective)) != 0) {
            return Status::error(std::string("mprotect: ") +
                                 std::strerror(errno));
        }
        return Status::ok();
    }

    KeyPool keys_;
    ColorMap colors_;
    Pkru pkru_ = Pkru::allowAll();
};

}  // namespace

bool
hardwareAvailable()
{
    return cpuFeatures().ospke;
}

Result<std::unique_ptr<System>>
makeHardware()
{
    if (!hardwareAvailable()) {
        return Result<std::unique_ptr<System>>::error(
            "CPU/OS does not support MPK (no OSPKE)");
    }
    return std::unique_ptr<System>(new HardwareMpk());
}

std::unique_ptr<System>
makeEmulated(int modeled_wrpkru_cycles)
{
    return std::make_unique<EmulatedMpk>(modeled_wrpkru_cycles);
}

std::unique_ptr<System>
makeMprotect()
{
    return std::make_unique<MprotectMpk>();
}

System&
defaultSystem()
{
    static std::unique_ptr<System> system = [] {
        if (hardwareAvailable()) {
            SFI_INFORM("mpk: using hardware MPK backend");
            return std::move(makeHardware().value());
        }
        SFI_INFORM("mpk: no PKU on this CPU; using emulated MPK backend");
        return makeEmulated();
    }();
    return *system;
}

}  // namespace sfi::mpk
