/**
 * @file
 * Memory Protection Key (MPK) backends for ColorGuard (§3.2, §5.1).
 *
 * ColorGuard assigns each sandbox slot a 4-bit color (protection key) in
 * its page-table entries and flips the PKRU register on sandbox
 * transitions so a thread can only touch the active slot's color. The
 * layout/striping logic is backend-independent; this module abstracts the
 * enforcement mechanism:
 *
 *  - HardwareMpk:  real pkey_alloc / pkey_mprotect / WRPKRU. Selected when
 *                  the CPU reports OSPKE.
 *  - EmulatedMpk:  keeps the per-page key assignment in an interval map
 *                  and the PKRU in a thread-local; access legality is
 *                  checked by the interpreter and by an explicit probe
 *                  API. WRPKRU cost is modelled with a ~44-cycle dependency
 *                  chain (the paper measures ≈44 cycles, §6.4.1) so
 *                  transition-sensitive macrobenchmarks behave as they
 *                  would on real MPK hardware.
 *  - MprotectMpk:  enforcing fallback that realizes PKRU writes as
 *                  mprotect() flips — the "prohibitively expensive page
 *                  permission" alternative §8 cites; kept as a correctness
 *                  oracle for tests.
 */
#ifndef SFIKIT_MPK_MPK_H_
#define SFIKIT_MPK_MPK_H_

#include <cstdint>
#include <memory>

#include "base/os_mem.h"
#include "base/result.h"

namespace sfi::mpk {

/** Number of protection keys the ISA provides (key 0 = default color). */
inline constexpr int kNumKeys = 16;

/** Keys usable for sandbox stripes (all but the default key 0). */
inline constexpr int kNumSandboxKeys = kNumKeys - 1;

using Pkey = int;

/**
 * Value of the PKRU register: 2 bits per key — AD (access disable) and
 * WD (write disable).
 */
class Pkru
{
  public:
    constexpr Pkru() = default;
    constexpr explicit Pkru(uint32_t bits) : bits_(bits) {}

    /** Everything accessible (all AD/WD clear). */
    static constexpr Pkru allowAll() { return Pkru(0); }

    /**
     * Host default during sandbox execution: only key 0 (runtime memory)
     * and @p key (the active stripe) accessible; every other color
     * access-disabled. This is the value ColorGuard writes when entering
     * a sandbox.
     */
    static constexpr Pkru
    allowOnly(Pkey key)
    {
        uint32_t bits = 0;
        for (int k = 1; k < kNumKeys; k++) {
            if (k != key)
                bits |= 0b11u << (2 * k);
        }
        return Pkru(bits);
    }

    constexpr bool
    canAccess(Pkey key) const
    {
        return (bits_ & (0b01u << (2 * key))) == 0;
    }

    constexpr bool
    canWrite(Pkey key) const
    {
        return canAccess(key) && (bits_ & (0b10u << (2 * key))) == 0;
    }

    constexpr uint32_t bits() const { return bits_; }
    constexpr bool operator==(const Pkru&) const = default;

  private:
    uint32_t bits_ = 0;
};

/** Abstract protection-key system. */
class System
{
  public:
    virtual ~System() = default;

    virtual const char* name() const = 0;

    /** True if out-of-color accesses trap in hardware. */
    virtual bool enforcesInHardware() const = 0;

    /** Allocate a key (1..15). Fails when the key space is exhausted. */
    virtual Result<Pkey> allocKey() = 0;

    virtual Status freeKey(Pkey key) = 0;

    /** pkey_mprotect(): set protection + color on a page range. */
    virtual Status protectRange(void* addr, uint64_t len, PageAccess access,
                                Pkey key) = 0;

    /** Write the PKRU (WRPKRU or emulation). */
    virtual void writePkru(Pkru pkru) = 0;

    virtual Pkru readPkru() const = 0;

    /**
     * Would an access at @p addr be permitted under the current PKRU and
     * color assignment? Hardware backends answer via bookkeeping as well
     * so the probe never faults.
     */
    virtual bool checkAccess(const void* addr, bool is_write) const = 0;

    /** The color assigned to the page containing @p addr (0 if none). */
    virtual Pkey keyOf(const void* addr) const = 0;

    /**
     * Does the color assignment survive the backing pages being
     * decommitted? MPK colors live in the PTE, which madvise(DONTNEED)
     * leaves intact, so the answer is yes for every MPK backend. MTE tags
     * live in the physical granules and are dropped with them (paper §7,
     * Observation 2), so the MTE backend answers no and the pool re-tags
     * on the next allocation of a decommitted slot.
     */
    virtual bool tagsSurviveDecommit() const { return true; }

    /**
     * Notification that [addr, addr+len) was decommitted. Backends whose
     * tags do not survive decommit drop their tag bookkeeping here so the
     * probe API agrees with what hardware would do.
     */
    virtual void onDecommit(void* addr, uint64_t len)
    {
        (void)addr;
        (void)len;
    }
};

/** True if the CPU+OS support real MPK (CPUID OSPKE). */
bool hardwareAvailable();

/** Hardware-backed system; Result error when OSPKE is unavailable. */
Result<std::unique_ptr<System>> makeHardware();

/**
 * Emulated system.
 * @param modeled_wrpkru_cycles dependency-chain length added to each
 *        writePkru() to model the hardware WRPKRU cost; 0 disables.
 */
std::unique_ptr<System> makeEmulated(int modeled_wrpkru_cycles = 44);

/** Enforcing mprotect()-based fallback (slow; tests only). */
std::unique_ptr<System> makeMprotect();

/**
 * Process-wide default: hardware when available, otherwise emulated.
 * The choice is logged once.
 */
System& defaultSystem();

}  // namespace sfi::mpk

#endif  // SFIKIT_MPK_MPK_H_
