#include "perflab/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "base/cpu.h"

namespace sfi::perflab {

// ------------------------------------------------------ EnvFingerprint

namespace {

std::string
cpuModelName()
{
    std::FILE* f = std::fopen("/proc/cpuinfo", "r");
    if (f == nullptr)
        return "";
    char line[512];
    std::string model;
    while (std::fgets(line, sizeof line, f) != nullptr) {
        if (std::strncmp(line, "model name", 10) == 0) {
            const char* colon = std::strchr(line, ':');
            if (colon != nullptr) {
                model = colon + 1;
                while (!model.empty() &&
                       (model.front() == ' ' || model.front() == '\t'))
                    model.erase(model.begin());
                while (!model.empty() &&
                       (model.back() == '\n' || model.back() == ' '))
                    model.pop_back();
            }
            break;
        }
    }
    std::fclose(f);
    return model;
}

}  // namespace

EnvFingerprint
EnvFingerprint::current()
{
    EnvFingerprint env;
    env.cpu = cpuModelName();
    env.hwThreads = int(std::thread::hardware_concurrency());
    const CpuFeatures& feat = cpuFeatures();
    env.fsgsbase = feat.fsgsbase;
    env.pku = feat.pku;
    env.ospke = feat.ospke;
    return env;
}

bool
EnvFingerprint::compatibleWith(const EnvFingerprint& other) const
{
    return cpu == other.cpu && hwThreads == other.hwThreads &&
           fsgsbase == other.fsgsbase && pku == other.pku &&
           ospke == other.ospke;
}

Json
EnvFingerprint::toJson() const
{
    Json j = Json::object();
    j.set("cpu", Json::string(cpu));
    j.set("hw_threads", Json::number(hwThreads));
    j.set("fsgsbase", Json::boolean(fsgsbase));
    j.set("pku", Json::boolean(pku));
    j.set("ospke", Json::boolean(ospke));
    j.set("commit", Json::string(commit));
    return j;
}

Result<EnvFingerprint>
EnvFingerprint::fromJson(const Json& j)
{
    if (!j.isObject())
        return Result<EnvFingerprint>::error("env: not an object");
    EnvFingerprint env;
    if (const Json* v = j.find("cpu"); v != nullptr && v->isString())
        env.cpu = v->asString();
    if (const Json* v = j.find("hw_threads");
        v != nullptr && v->isNumber())
        env.hwThreads = int(v->asNumber());
    if (const Json* v = j.find("fsgsbase"); v != nullptr && v->isBool())
        env.fsgsbase = v->asBool();
    if (const Json* v = j.find("pku"); v != nullptr && v->isBool())
        env.pku = v->asBool();
    if (const Json* v = j.find("ospke"); v != nullptr && v->isBool())
        env.ospke = v->asBool();
    if (const Json* v = j.find("commit"); v != nullptr && v->isString())
        env.commit = v->asString();
    return env;
}

// ---------------------------------------------------------- MetricStat

double
MetricStat::minOf() const
{
    return samples.empty()
               ? 0.0
               : *std::min_element(samples.begin(), samples.end());
}

double
MetricStat::maxOf() const
{
    return samples.empty()
               ? 0.0
               : *std::max_element(samples.begin(), samples.end());
}

double
MetricStat::median() const
{
    if (samples.empty())
        return 0.0;
    std::vector<double> s = samples;
    std::sort(s.begin(), s.end());
    size_t n = s.size();
    return n % 2 == 1 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
}

double
MetricStat::mad() const
{
    if (samples.size() < 2)
        return 0.0;
    double med = median();
    std::vector<double> dev;
    dev.reserve(samples.size());
    for (double x : samples)
        dev.push_back(std::abs(x - med));
    std::sort(dev.begin(), dev.end());
    size_t n = dev.size();
    return n % 2 == 1 ? dev[n / 2]
                      : 0.5 * (dev[n / 2 - 1] + dev[n / 2]);
}

double
MetricStat::best(bool lower_is_better) const
{
    return lower_is_better ? minOf() : maxOf();
}

// ------------------------------------------------------------ BenchRow

std::string
BenchRow::keyString() const
{
    std::string out;
    for (const auto& [k, v] : key) {
        if (!out.empty())
            out.push_back(' ');
        out += k + "=" + v;
    }
    return out.empty() ? "(row)" : out;
}

// ------------------------------------------------- field-kind inference

bool
isCoordinateField(const std::string& name)
{
    // Numeric fields that position a row in the sweep rather than
    // measure it. offered_rps is the configured arrival rate
    // (achieved_rps is the measurement).
    static const char* const kCoords[] = {
        "batch_max", "processes", "threads",  "workers",
        "batch",     "scale",     "offered_rps", "queue_depth",
    };
    for (const char* c : kCoords)
        if (name == c)
            return true;
    return false;
}

bool
isMetricField(const std::string& name, bool integral_in_all_reps)
{
    if (isCoordinateField(name))
        return false;
    static const char* const kMetricSuffixes[] = {
        "_ns", "_us", "_ms", "_sec", "_norm", "_pct", "rps",
    };
    for (const char* suf : kMetricSuffixes) {
        size_t n = std::strlen(suf);
        if (name.size() >= n &&
            name.compare(name.size() - n, n, suf) == 0)
            return true;
    }
    // No unit suffix: integral-in-every-rep fields are bookkeeping
    // counters; fractional ones are measurements.
    return !integral_in_all_reps;
}

bool
metricIsGated(const std::string& name)
{
    // max_* / *_max and p999_* record a single extreme event per run
    // (their MAD is as noisy as they are); queue_* decomposes the
    // gated sojourn percentiles. All stay in the file for analysis.
    if (name.compare(0, 4, "max_") == 0)
        return false;
    if (name.size() >= 4 &&
        name.compare(name.size() - 4, 4, "_max") == 0)
        return false;
    if (name.compare(0, 5, "p999_") == 0)
        return false;
    if (name.compare(0, 6, "queue_") == 0)
        return false;
    return true;
}

bool
metricHigherIsBetter(const std::string& name)
{
    // Rates and gains go up; times, normalized runtimes, and sizes go
    // down. Default to lower-is-better (the common case for a perf
    // repo measuring costs).
    if (name.size() >= 3 &&
        name.compare(name.size() - 3, 3, "rps") == 0)
        return true;
    if (name.size() >= 8 &&
        name.compare(name.size() - 8, 8, "_per_sec") == 0)
        return true;
    if (name.find("gain") != std::string::npos)
        return true;
    if (name.find("hit_pct") != std::string::npos)
        return true;
    return false;
}

bool
metricIsRatio(const std::string& name)
{
    auto ends = [&](const char* suffix) {
        size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    // *_per_transition: wall time divided by the run's own transition
    // counter (bench_transitions faas rows) — the counter-normalized
    // form the gate holds to the precision band.
    return ends("_norm") || ends("_pct") || ends("_per_transition");
}

// ------------------------------------------------------------- merging

namespace {

std::string
jsonScalarToKeyString(const Json& v)
{
    if (v.isString())
        return v.asString();
    if (v.isNumber()) {
        Json n = v;
        return n.dump();
    }
    if (v.isBool())
        return v.asBool() ? "true" : "false";
    return "null";
}

}  // namespace

Result<WorkloadResult>
mergeRuns(const std::string& workload, const std::vector<Json>& runs,
          const EnvFingerprint& env)
{
    if (runs.empty())
        return Result<WorkloadResult>::error("mergeRuns: no runs");

    WorkloadResult out;
    out.workload = workload;
    out.env = env;
    out.reps = int(runs.size());

    // Pass 1: find fields that are integral in every rep (counter
    // candidates) and pin the bench name.
    std::map<std::string, bool> integral;  // name -> integral everywhere
    for (const Json& run : runs) {
        if (!run.isObject())
            return Result<WorkloadResult>::error(
                "mergeRuns: run is not an object");
        const Json* bench = run.find("bench");
        if (bench != nullptr && bench->isString()) {
            if (out.bench.empty())
                out.bench = bench->asString();
            else if (out.bench != bench->asString())
                return Result<WorkloadResult>::error(
                    "mergeRuns: bench name changed between reps");
        }
        const Json* results = run.find("results");
        if (results == nullptr || !results->isArray())
            return Result<WorkloadResult>::error(
                "mergeRuns: missing \"results\" array");
        for (const Json& row : results->items()) {
            if (!row.isObject())
                return Result<WorkloadResult>::error(
                    "mergeRuns: row is not an object");
            for (const auto& [name, v] : row.members()) {
                if (!v.isNumber())
                    continue;
                auto [it, inserted] = integral.emplace(name, true);
                if (!v.isIntegral())
                    it->second = false;
            }
        }
    }

    // Pass 2: build rows keyed by their identity fields; accumulate
    // metric samples across reps; counters keep the last rep's value
    // (they describe one run, and the last rep is the one whose
    // metrics dominate nothing — any rep would do, last is simplest
    // and deterministic).
    std::vector<BenchRow> rows;
    std::map<std::string, size_t> index;  // keyString -> rows index
    for (const Json& run : runs) {
        const Json* results = run.find("results");
        for (const Json& jrow : results->items()) {
            BenchRow probe;
            for (const auto& [name, v] : jrow.members()) {
                if (v.isString() || v.isBool() ||
                    (v.isNumber() && isCoordinateField(name)))
                    probe.key.emplace_back(name,
                                           jsonScalarToKeyString(v));
            }
            std::string ks = probe.keyString();
            auto [it, inserted] = index.emplace(ks, rows.size());
            if (inserted)
                rows.push_back(std::move(probe));
            BenchRow& row = rows[it->second];

            for (const auto& [name, v] : jrow.members()) {
                if (v.isNull())
                    continue;  // hardened-emitter non-finite value
                if (!v.isNumber() || isCoordinateField(name))
                    continue;
                if (isMetricField(name, integral.at(name)))
                    row.metrics[name].samples.push_back(v.asNumber());
                else
                    row.counters[name] = v.asInt();
            }
        }
    }

    out.rows = std::move(rows);
    return out;
}

// ----------------------------------------------------- (de)serializing

const BenchRow*
WorkloadResult::findRow(const std::string& key_string) const
{
    for (const BenchRow& r : rows)
        if (r.keyString() == key_string)
            return &r;
    return nullptr;
}

Json
WorkloadResult::toJson() const
{
    Json j = Json::object();
    j.set("schema_version", Json::number(schemaVersion));
    j.set("workload", Json::string(workload));
    j.set("bench", Json::string(bench));
    j.set("env", env.toJson());
    j.set("reps", Json::number(reps));

    Json jrows = Json::array();
    for (const BenchRow& row : rows) {
        Json jr = Json::object();
        Json jkey = Json::object();
        for (const auto& [k, v] : row.key)
            jkey.set(k, Json::string(v));
        jr.set("key", std::move(jkey));
        jr.set("bottleneck", Json::string(row.bottleneck));
        jr.set("bottleneck_rule", Json::string(row.bottleneckRule));
        jr.set("bottleneck_detail",
               Json::string(row.bottleneckDetail));

        Json jmetrics = Json::object();
        for (const auto& [name, stat] : row.metrics) {
            Json jm = Json::object();
            Json jsamples = Json::array();
            for (double s : stat.samples)
                jsamples.append(Json::number(s));
            jm.set("samples", std::move(jsamples));
            jm.set("min", Json::number(stat.minOf()));
            jm.set("median", Json::number(stat.median()));
            jm.set("mad", Json::number(stat.mad()));
            jmetrics.set(name, std::move(jm));
        }
        jr.set("metrics", std::move(jmetrics));

        Json jcounters = Json::object();
        for (const auto& [name, v] : row.counters)
            jcounters.set(name, Json::number(double(v)));
        jr.set("counters", std::move(jcounters));
        jrows.append(std::move(jr));
    }
    j.set("rows", std::move(jrows));
    return j;
}

Result<WorkloadResult>
WorkloadResult::fromJson(const Json& j)
{
    using R = Result<WorkloadResult>;
    if (!j.isObject())
        return R::error("workload file: not a JSON object");
    const Json* ver = j.find("schema_version");
    if (ver == nullptr || !ver->isIntegral())
        return R::error("workload file: missing schema_version");
    if (ver->asInt() != kSchemaVersion)
        return R::error("workload file: schema_version " +
                        std::to_string(ver->asInt()) +
                        " (this build reads " +
                        std::to_string(kSchemaVersion) + ")");

    WorkloadResult out;
    out.schemaVersion = int(ver->asInt());
    if (const Json* v = j.find("workload");
        v != nullptr && v->isString())
        out.workload = v->asString();
    if (const Json* v = j.find("bench"); v != nullptr && v->isString())
        out.bench = v->asString();
    if (const Json* v = j.find("env"); v != nullptr) {
        auto env = EnvFingerprint::fromJson(*v);
        if (!env.isOk())
            return R::error(env.message());
        out.env = *env;
    }
    if (const Json* v = j.find("reps"); v != nullptr && v->isIntegral())
        out.reps = int(v->asInt());

    const Json* jrows = j.find("rows");
    if (jrows == nullptr || !jrows->isArray())
        return R::error("workload file: missing rows array");
    for (const Json& jr : jrows->items()) {
        if (!jr.isObject())
            return R::error("workload file: row is not an object");
        BenchRow row;
        if (const Json* jkey = jr.find("key");
            jkey != nullptr && jkey->isObject()) {
            for (const auto& [k, v] : jkey->members())
                row.key.emplace_back(
                    k, v.isString() ? v.asString()
                                    : jsonScalarToKeyString(v));
        }
        if (const Json* v = jr.find("bottleneck");
            v != nullptr && v->isString())
            row.bottleneck = v->asString();
        if (const Json* v = jr.find("bottleneck_rule");
            v != nullptr && v->isString())
            row.bottleneckRule = v->asString();
        if (const Json* v = jr.find("bottleneck_detail");
            v != nullptr && v->isString())
            row.bottleneckDetail = v->asString();
        if (const Json* jm = jr.find("metrics");
            jm != nullptr && jm->isObject()) {
            for (const auto& [name, stat] : jm->members()) {
                MetricStat ms;
                const Json* samples =
                    stat.isObject() ? stat.find("samples") : nullptr;
                if (samples == nullptr || !samples->isArray())
                    return R::error("workload file: metric '" + name +
                                    "' has no samples array");
                for (const Json& s : samples->items()) {
                    if (!s.isNumber())
                        return R::error("workload file: metric '" +
                                        name +
                                        "' has a non-number sample");
                    ms.samples.push_back(s.asNumber());
                }
                row.metrics.emplace(name, std::move(ms));
            }
        }
        if (const Json* jc = jr.find("counters");
            jc != nullptr && jc->isObject()) {
            for (const auto& [name, v] : jc->members()) {
                if (!v.isIntegral())
                    return R::error("workload file: counter '" + name +
                                    "' is not integral");
                row.counters[name] = v.asInt();
            }
        }
        out.rows.push_back(std::move(row));
    }
    return out;
}

}  // namespace sfi::perflab
