#include "perflab/gate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace sfi::perflab {

namespace {

std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

}  // namespace

GateReport
grade(const WorkloadResult& baseline, const WorkloadResult& fresh,
      const GateConfig& config)
{
    GateReport report;

    if (!baseline.env.compatibleWith(fresh.env)) {
        report.envMismatch = true;
        report.notes.push_back(
            "environment fingerprint differs from the baseline's "
            "(cpu/cores/features); a perf comparison across machines "
            "is not meaningful");
        if (config.requireEnvMatch) {
            // Not a failure: the gate declines to judge, which the
            // caller surfaces as a skip.
            return report;
        }
    }
    if (baseline.workload != fresh.workload)
        report.notes.push_back("workload name differs: baseline '" +
                               baseline.workload + "' vs fresh '" +
                               fresh.workload + "'");

    for (const BenchRow& base_row : baseline.rows) {
        std::string key = base_row.keyString();
        const BenchRow* fresh_row = fresh.findRow(key);
        if (fresh_row == nullptr) {
            MetricVerdict v;
            v.row = key;
            v.metric = "(row)";
            v.ok = false;
            v.note = "row present in baseline but missing from the "
                     "fresh run (lost coverage)";
            report.verdicts.push_back(std::move(v));
            report.pass = false;
            report.metricsFailed++;
            continue;
        }

        for (const auto& [name, base_stat] : base_row.metrics) {
            if (!metricIsGated(name))
                continue;  // recorded-only tail/diagnostic metric
            auto it = fresh_row->metrics.find(name);
            if (it == fresh_row->metrics.end()) {
                MetricVerdict v;
                v.row = key;
                v.metric = name;
                v.ok = false;
                v.note = "metric missing from the fresh run";
                report.verdicts.push_back(std::move(v));
                report.pass = false;
                report.metricsFailed++;
                continue;
            }
            const MetricStat& fresh_stat = it->second;
            if (base_stat.samples.empty() ||
                fresh_stat.samples.empty())
                continue;

            MetricVerdict v;
            v.row = key;
            v.metric = name;
            v.higherIsBetter = metricHigherIsBetter(name);
            bool lower = !v.higherIsBetter;
            // Ratio metrics center on the median: their numerator and
            // denominator come from the same rep, so the per-rep
            // extreme just finds the rep with the noisiest
            // denominator (see metricIsRatio).
            if (metricIsRatio(name)) {
                v.baseline = base_stat.median();
                v.fresh = fresh_stat.median();
            } else {
                v.baseline = base_stat.best(lower);
                v.fresh = fresh_stat.best(lower);
            }
            // Ratio metrics keep their precision band even when the
            // caller widened --band for noisy wall-clock metrics.
            double floor =
                metricIsRatio(name)
                    ? std::min(config.relFloor, config.ratioRelFloor)
                    : config.relFloor;
            v.band = std::max(
                floor * std::abs(v.baseline),
                config.madMult *
                    std::max(base_stat.mad(), fresh_stat.mad()));
            double regression =
                lower ? v.fresh - v.baseline : v.baseline - v.fresh;
            v.ok = regression <= v.band;
            if (!v.ok) {
                double pct = v.baseline != 0
                                 ? 100.0 * regression /
                                       std::abs(v.baseline)
                                 : 0.0;
                char buf[96];
                std::snprintf(buf, sizeof buf,
                              "regressed %.1f%% (band %.1f%%)", pct,
                              v.baseline != 0
                                  ? 100.0 * v.band /
                                        std::abs(v.baseline)
                                  : 0.0);
                v.note = buf;
                report.pass = false;
                report.metricsFailed++;
            }
            report.metricsChecked++;
            report.verdicts.push_back(std::move(v));
        }

        for (const auto& [name, stat] : fresh_row->metrics) {
            if (base_row.metrics.find(name) == base_row.metrics.end())
                report.notes.push_back(
                    "new metric '" + name + "' in row [" + key +
                    "] not in baseline; refresh the baseline to gate "
                    "it");
        }
    }

    for (const BenchRow& fresh_row : fresh.rows) {
        if (baseline.findRow(fresh_row.keyString()) == nullptr)
            report.notes.push_back(
                "new row [" + fresh_row.keyString() +
                "] not in baseline; refresh the baseline to gate it");
    }

    return report;
}

std::string
formatReport(const GateReport& report, bool verbose)
{
    std::string out;
    for (const MetricVerdict& v : report.verdicts) {
        if (v.ok && !verbose)
            continue;
        out += v.ok ? "  ok   " : "  FAIL ";
        out += "[" + v.row + "] " + v.metric;
        if (v.metric != "(row)") {
            out += ": base " + fmtDouble(v.baseline) + " -> fresh " +
                   fmtDouble(v.fresh) + " (band " + fmtDouble(v.band) +
                   (v.higherIsBetter ? ", higher-is-better" : "") + ")";
        }
        if (!v.note.empty())
            out += " — " + v.note;
        out += "\n";
    }
    for (const std::string& n : report.notes)
        out += "  note " + n + "\n";
    char buf[96];
    std::snprintf(buf, sizeof buf,
                  "  %d metrics checked, %d failed\n",
                  report.metricsChecked, report.metricsFailed);
    out += buf;
    return out;
}

}  // namespace sfi::perflab
