#include "perflab/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "base/logging.h"

namespace sfi::perflab {

Json
Json::boolean(bool b)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = b;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    if (!std::isfinite(v))
        return j;  // null: JSON cannot carry non-finite numbers
    j.kind_ = Kind::Number;
    j.num_ = v;
    return j;
}

Json
Json::string(std::string s)
{
    Json j;
    j.kind_ = Kind::String;
    j.str_ = std::move(s);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool() const
{
    SFI_CHECK_MSG(isBool(), "Json::asBool on non-bool");
    return bool_;
}

double
Json::asNumber() const
{
    SFI_CHECK_MSG(isNumber(), "Json::asNumber on non-number");
    return num_;
}

const std::string&
Json::asString() const
{
    SFI_CHECK_MSG(isString(), "Json::asString on non-string");
    return str_;
}

const std::vector<Json>&
Json::items() const
{
    SFI_CHECK_MSG(isArray(), "Json::items on non-array");
    return arr_;
}

void
Json::append(Json v)
{
    SFI_CHECK_MSG(isArray(), "Json::append on non-array");
    arr_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, Json>>&
Json::members() const
{
    SFI_CHECK_MSG(isObject(), "Json::members on non-object");
    return obj_;
}

const Json*
Json::find(std::string_view name) const
{
    if (!isObject())
        return nullptr;
    for (const auto& [k, v] : obj_)
        if (k == name)
            return &v;
    return nullptr;
}

void
Json::set(std::string name, Json v)
{
    SFI_CHECK_MSG(isObject(), "Json::set on non-object");
    for (auto& [k, existing] : obj_) {
        if (k == name) {
            existing = std::move(v);
            return;
        }
    }
    obj_.emplace_back(std::move(name), std::move(v));
}

bool
Json::isIntegral() const
{
    if (!isNumber())
        return false;
    return num_ == std::floor(num_) && std::abs(num_) < 9.007199254740992e15;
}

int64_t
Json::asInt() const
{
    SFI_CHECK_MSG(isIntegral(), "Json::asInt on non-integral");
    return int64_t(num_);
}

// ------------------------------------------------------------- parsing

namespace {

/** Recursive-descent parser over a string_view; fail-closed. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Result<Json>
    run()
    {
        skipWs();
        Json v;
        if (!parseValue(&v))
            return Result<Json>::error(error_);
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON document");
        return v;
    }

  private:
    Result<Json>
    fail(const std::string& why)
    {
        return Result<Json>::error(errorAt(why));
    }

    std::string
    errorAt(const std::string& why)
    {
        return "json: " + why + " at offset " + std::to_string(pos_);
    }

    bool
    setError(const std::string& why)
    {
        if (error_.empty())
            error_ = errorAt(why);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            pos_++;
        }
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Json* out)
    {
        if (++depth_ > kMaxDepth)
            return setError("nesting too deep");
        bool ok = parseValueInner(out);
        depth_--;
        return ok;
    }

    bool
    parseValueInner(Json* out)
    {
        if (eof())
            return setError("unexpected end of input");
        char c = peek();
        switch (c) {
        case 'n':
            if (!literal("null"))
                return setError("bad literal");
            *out = Json();
            return true;
        case 't':
            if (!literal("true"))
                return setError("bad literal");
            *out = Json::boolean(true);
            return true;
        case 'f':
            if (!literal("false"))
                return setError("bad literal");
            *out = Json::boolean(false);
            return true;
        case '"': {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json::string(std::move(s));
            return true;
        }
        case '[':
            return parseArray(out);
        case '{':
            return parseObject(out);
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            // This is where `nan`, `inf`, `Infinity`, `+1`, `'str'`
            // etc. land — exactly the corruption the strict parser
            // exists to catch.
            return setError(std::string("unexpected character '") + c +
                            "'");
        }
    }

    bool
    parseNumber(Json* out)
    {
        size_t start = pos_;
        if (!eof() && peek() == '-')
            pos_++;
        // Integer part: one digit, or a nonzero digit followed by more.
        if (eof() || peek() < '0' || peek() > '9')
            return setError("malformed number");
        if (peek() == '0') {
            pos_++;
        } else {
            while (!eof() && peek() >= '0' && peek() <= '9')
                pos_++;
        }
        if (!eof() && peek() == '.') {
            pos_++;
            if (eof() || peek() < '0' || peek() > '9')
                return setError("malformed number (fraction)");
            while (!eof() && peek() >= '0' && peek() <= '9')
                pos_++;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            pos_++;
            if (!eof() && (peek() == '+' || peek() == '-'))
                pos_++;
            if (eof() || peek() < '0' || peek() > '9')
                return setError("malformed number (exponent)");
            while (!eof() && peek() >= '0' && peek() <= '9')
                pos_++;
        }
        std::string tok(text_.substr(start, pos_ - start));
        double v = std::strtod(tok.c_str(), nullptr);
        if (!std::isfinite(v))
            return setError("number out of double range");
        *out = Json::number(v);
        return true;
    }

    bool
    parseString(std::string* out)
    {
        pos_++;  // opening quote
        out->clear();
        while (true) {
            if (eof())
                return setError("unterminated string");
            unsigned char c = (unsigned char)text_[pos_];
            if (c == '"') {
                pos_++;
                return true;
            }
            if (c < 0x20)
                return setError("raw control character in string");
            if (c != '\\') {
                out->push_back(char(c));
                pos_++;
                continue;
            }
            pos_++;  // backslash
            if (eof())
                return setError("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
                uint32_t cp;
                if (!parseHex4(&cp))
                    return false;
                // Surrogate pair handling.
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                    if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                        text_[pos_ + 1] == 'u') {
                        pos_ += 2;
                        uint32_t lo;
                        if (!parseHex4(&lo))
                            return false;
                        if (lo < 0xDC00 || lo > 0xDFFF)
                            return setError("invalid low surrogate");
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else {
                        return setError("lone high surrogate");
                    }
                } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                    return setError("lone low surrogate");
                }
                appendUtf8(out, cp);
                break;
            }
            default:
                return setError("invalid escape");
            }
        }
    }

    bool
    parseHex4(uint32_t* out)
    {
        if (pos_ + 4 > text_.size())
            return setError("truncated \\u escape");
        uint32_t v = 0;
        for (int i = 0; i < 4; i++) {
            char c = text_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= uint32_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= uint32_t(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= uint32_t(c - 'A' + 10);
            else
                return setError("bad hex digit in \\u escape");
        }
        *out = v;
        return true;
    }

    static void
    appendUtf8(std::string* out, uint32_t cp)
    {
        if (cp < 0x80) {
            out->push_back(char(cp));
        } else if (cp < 0x800) {
            out->push_back(char(0xC0 | (cp >> 6)));
            out->push_back(char(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out->push_back(char(0xE0 | (cp >> 12)));
            out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(char(0x80 | (cp & 0x3F)));
        } else {
            out->push_back(char(0xF0 | (cp >> 18)));
            out->push_back(char(0x80 | ((cp >> 12) & 0x3F)));
            out->push_back(char(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(char(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseArray(Json* out)
    {
        pos_++;  // '['
        *out = Json::array();
        skipWs();
        if (!eof() && peek() == ']') {
            pos_++;
            return true;
        }
        while (true) {
            Json v;
            skipWs();
            if (!parseValue(&v))
                return false;
            out->append(std::move(v));
            skipWs();
            if (eof())
                return setError("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return setError("expected ',' or ']' in array");
            skipWs();
            if (!eof() && peek() == ']')
                return setError("trailing comma in array");
        }
    }

    bool
    parseObject(Json* out)
    {
        pos_++;  // '{'
        *out = Json::object();
        skipWs();
        if (!eof() && peek() == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            if (eof() || peek() != '"')
                return setError("expected string key in object");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (eof() || text_[pos_++] != ':')
                return setError("expected ':' after object key");
            skipWs();
            Json v;
            if (!parseValue(&v))
                return false;
            out->set(std::move(key), std::move(v));
            skipWs();
            if (eof())
                return setError("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return setError("expected ',' or '}' in object");
            skipWs();
            if (!eof() && peek() == '}')
                return setError("trailing comma in object");
        }
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

}  // namespace

Result<Json>
Json::parse(std::string_view text)
{
    return Parser(text).run();
}

// ----------------------------------------------------------- dumping

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    for (char c : s) {
        unsigned char u = (unsigned char)c;
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

namespace {

void
appendNumber(std::string& out, double v)
{
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", (long long)v);
        out += buf;
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

}  // namespace

void
Json::dumpTo(std::string& out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out.push_back('\n');
        out.append(size_t(indent) * size_t(d), ' ');
    };
    switch (kind_) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Kind::Number:
        appendNumber(out, num_);
        break;
    case Kind::String:
        out.push_back('"');
        out += jsonEscape(str_);
        out.push_back('"');
        break;
    case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (size_t i = 0; i < arr_.size(); i++) {
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += indent > 0 ? "," : ", ";
        }
        newline(depth);
        out.push_back(']');
        break;
    case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (size_t i = 0; i < obj_.size(); i++) {
            newline(depth + 1);
            out.push_back('"');
            out += jsonEscape(obj_[i].first);
            out += "\": ";
            obj_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < obj_.size())
                out += indent > 0 ? "," : ", ";
        }
        newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

}  // namespace sfi::perflab
