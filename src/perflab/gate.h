/**
 * @file
 * Regression gate: grades a fresh WorkloadResult against the committed
 * baseline, per metric, inside a noise band — the "guarded" step of
 * the profiling -> analysis -> guarded-optimization pipeline.
 *
 * Estimator: each metric's center is its best-of-N (min for
 * lower-is-better metrics like times and normalized runtimes, max for
 * higher-is-better ones like rps) — interference only ever makes a
 * run slower, so the best sample is the noise-robust point estimate.
 * The band around it is
 *
 *     band = max(rel_floor * |baseline_center|,
 *                mad_mult * max(mad_baseline, mad_fresh))
 *
 * i.e. a relative floor (measurement quantization, turbo jitter) OR
 * the observed run-to-run spread scaled up, whichever is larger —
 * never a single-sample comparison. A metric fails when the fresh
 * center lands outside the band on the bad side; improvements never
 * fail.
 *
 * Counters are informational and never gated (a perf PR is allowed to
 * change how many %gs switches happen — that is usually the point).
 * Rows missing from the fresh run fail (the bench lost coverage);
 * rows/metrics that are new pass with a note (coverage grew; commit
 * the refreshed baseline).
 */
#ifndef SFIKIT_PERFLAB_GATE_H_
#define SFIKIT_PERFLAB_GATE_H_

#include <string>
#include <vector>

#include "perflab/model.h"

namespace sfi::perflab {

struct GateConfig
{
    /**
     * Relative noise floor. 12% default: wide enough that min-of-N on
     * an idle machine re-passes its own baseline, narrow enough that
     * the acceptance-level 20% regression always fails. CI runs that
     * share the machine with a parallel test sweep should widen it
     * (the ctest wiring passes --band explicitly).
     */
    double relFloor = 0.12;
    /**
     * Precision floor for ratio metrics (metricIsRatio: _norm, _pct,
     * counter-normalized *_per_transition). Their numerator and
     * denominator come from the same run, so shared-runner load noise
     * largely cancels and they stay trustworthy even when a CI
     * invocation widens --band to 100% for wall-clock metrics. The
     * effective floor for a ratio metric is min(relFloor,
     * ratioRelFloor): widening the band never loosens them, but an
     * explicitly narrower --band still applies.
     */
    double ratioRelFloor = 0.12;
    /** MAD multiplier (MAD underestimates sigma; 5x is generous). */
    double madMult = 5.0;
    /** Fail (true) or just note (false) env-fingerprint mismatches. */
    bool requireEnvMatch = true;
};

/** One gated metric comparison. */
struct MetricVerdict
{
    std::string row;     ///< BenchRow::keyString()
    std::string metric;
    double baseline = 0;  ///< baseline center (best-of-N)
    double fresh = 0;     ///< fresh center (best-of-N)
    double band = 0;      ///< allowed |delta| on the bad side
    bool higherIsBetter = false;
    bool ok = true;
    std::string note;    ///< set for failures and notes
};

struct GateReport
{
    bool pass = true;
    /** True when the env fingerprints differ (see GateConfig). */
    bool envMismatch = false;
    int metricsChecked = 0;
    int metricsFailed = 0;
    std::vector<MetricVerdict> verdicts;  ///< every gated metric
    std::vector<std::string> notes;       ///< non-gating observations
};

/** Grades @p fresh against @p baseline. */
GateReport grade(const WorkloadResult& baseline,
                 const WorkloadResult& fresh, const GateConfig& config);

/** Renders the report; verbose includes passing metrics. */
std::string formatReport(const GateReport& report, bool verbose);

}  // namespace sfi::perflab

#endif  // SFIKIT_PERFLAB_GATE_H_
