#include "perflab/runner.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "perflab/classifier.h"

namespace sfi::perflab {

const std::vector<BenchSpec>&
defaultMatrix()
{
    // Deterministic arguments: the open-loop host runs at a fixed
    // offered rate and batch bound (a sweep would make row keys depend
    // on the calibrated capacity and never match across runs).
    static const std::vector<BenchSpec> kMatrix = {
        {"transitions", "bench_transitions", {}},
        {"faas_open_loop",
         "bench_fig6_faas_throughput",
         {"--open-loop", "--rate", "20000", "--batch", "16"}},
        {"fig3_spec_w2c", "bench_fig3_spec_w2c", {}},
        {"pool_scaling", "bench_pool_scaling", {}},
        // Cold-start rows (ISSUE 9): first-request latency of the
        // monolithic / tiered-cold / tiered-warm compilation modes on
        // the synthetic multi-handler FaaS image.
        {"cold_start", "bench_fig6_faas_throughput", {"--cold-start"}},
        // Overload row (ISSUE 10): 2x the faas_open_loop rate with a
        // bounded shard queue — grades how admission degrades (shed
        // fraction, overload events, admission delay) rather than how
        // fast the host goes.
        {"faas_overload",
         "bench_fig6_faas_throughput",
         {"--open-loop", "--rate", "40000", "--batch", "16",
          "--policy", "shed", "--queue-depth", "32"}},
        // Backend-parity row (ISSUE 10): the same open-loop point
        // served by the MTE backend; gates the retag/recolor overhead
        // the granule-tag backend adds.
        // --cold disables warm-affinity reuse so every recycle
        // decommits — which discards MTE tags and pays the retag walk
        // (§7 Observation 2), the cost this row exists to gate.
        {"mte_backend",
         "bench_fig6_faas_throughput",
         {"--open-loop", "--rate", "20000", "--batch", "16",
          "--backend", "mte", "--cold"}},
    };
    return kMatrix;
}

const BenchSpec*
findSpec(const std::string& workload)
{
    for (const BenchSpec& s : defaultMatrix())
        if (s.workload == workload)
            return &s;
    return nullptr;
}

std::string
currentCommit()
{
    std::FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r");
    if (p == nullptr)
        return "";
    char buf[96] = {0};
    if (std::fgets(buf, sizeof buf, p) == nullptr) {
        pclose(p);
        return "";
    }
    pclose(p);
    std::string commit = buf;
    while (!commit.empty() &&
           (commit.back() == '\n' || commit.back() == ' '))
        commit.pop_back();
    return commit;
}

Result<std::string>
readFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Result<std::string>::error("cannot read " + path);
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

Status
writeFile(const std::string& path, const std::string& text)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status::error("cannot write " + path);
    size_t n = std::fwrite(text.data(), 1, text.size(), f);
    if (std::fclose(f) != 0 || n != text.size())
        return Status::error("short write to " + path);
    return Status::ok();
}

namespace {

std::string
shellQuote(const std::string& s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out.push_back(c);
    }
    out.push_back('\'');
    return out;
}

}  // namespace

Result<Json>
runBenchOnce(const std::string& bench_dir, const BenchSpec& spec)
{
    std::string tmp = "/tmp/perflab_" + spec.workload + "_" +
                      std::to_string(getpid()) + ".json";
    std::string cmd = shellQuote(bench_dir + "/" + spec.binary);
    for (const std::string& a : spec.args)
        cmd += " " + shellQuote(a);
    cmd += " --json " + shellQuote(tmp) + " >/dev/null";

    int rc = std::system(cmd.c_str());
    if (rc != 0) {
        std::remove(tmp.c_str());
        return Result<Json>::error(spec.binary + " exited with status " +
                                   std::to_string(rc) + " (cmd: " + cmd +
                                   ")");
    }
    auto text = readFile(tmp);
    std::remove(tmp.c_str());
    if (!text.isOk())
        return Result<Json>::error(spec.binary +
                                   " produced no --json output: " +
                                   text.message());
    auto parsed = Json::parse(*text);
    if (!parsed.isOk())
        return Result<Json>::error(spec.binary + " emitted bad JSON: " +
                                   parsed.message());
    return parsed;
}

Result<WorkloadResult>
runWorkload(const std::string& bench_dir, const BenchSpec& spec,
            int reps)
{
    if (reps < 1)
        return Result<WorkloadResult>::error("reps must be >= 1");
    std::vector<Json> runs;
    for (int r = 0; r < reps; r++) {
        auto run = runBenchOnce(bench_dir, spec);
        if (!run.isOk())
            return Result<WorkloadResult>::error(run.message());
        runs.push_back(std::move(*run));
    }
    EnvFingerprint env = EnvFingerprint::current();
    env.commit = currentCommit();
    auto merged = mergeRuns(spec.workload, runs, env);
    if (!merged.isOk())
        return merged;
    classifyAll(&*merged);
    return merged;
}

}  // namespace sfi::perflab
