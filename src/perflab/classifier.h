/**
 * @file
 * Deterministic rule-based bottleneck classifier.
 *
 * Mirrors rocm-perf-lab's bottleneck-classification stage: no model,
 * no sampling — an ordered rule table over counters and metrics the
 * benches already export, where the first rule whose predicate holds
 * names the bottleneck. Re-running classification on the same row
 * always yields the same answer, so the stored `bottleneck` field in a
 * BENCH_*.json is reproducible from its own counters (the perflab CLI
 * `classify` subcommand recomputes and cross-checks it).
 *
 * Classes and the evidence they key on:
 *   zeroing-bound     warm-reuse page zeroing dominates
 *                     (warm_zeroed_bytes per request)
 *   transition-bound  sandbox entry/exit cost dominates
 *                     (transitions per request, the full->batched tier
 *                     gap, scoped-vs-cached %gs entry)
 *   guard-bound       inline SFI checks dominate (normalized overhead
 *                     vs native, surviving guard-check fraction)
 *   memory-bound      pool/memory churn dominates (cold allocations,
 *                     cross-shard steals, decommit traffic)
 *   balanced          nothing above threshold
 *
 * The exact thresholds are part of the rule table below and documented
 * in DESIGN.md; changing them is a schema-visible change (the stored
 * classification moves), so do it deliberately.
 */
#ifndef SFIKIT_PERFLAB_CLASSIFIER_H_
#define SFIKIT_PERFLAB_CLASSIFIER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "perflab/model.h"

namespace sfi::perflab {

/** Field accessor a rule reads: name -> value if present. */
using FieldView = std::function<std::optional<double>(const std::string&)>;

/** One classifier outcome. */
struct Classification
{
    std::string bottleneck;  ///< class name, e.g. "transition-bound"
    std::string rule;        ///< stable rule id, e.g. "transition.tier_gap"
    std::string detail;      ///< computed evidence, human-readable
};

/** One row of the rule table. */
struct ClassifierRule
{
    std::string id;          ///< stable id (DESIGN.md table)
    std::string bottleneck;  ///< class this rule assigns
    /** Returns evidence text when the rule fires, nullopt otherwise. */
    std::function<std::optional<std::string>(const FieldView&)> fires;
};

/** The ordered rule table (first match wins). */
const std::vector<ClassifierRule>& classifierRules();

/** Classifies an arbitrary field view (tests feed synthetic sets). */
Classification classify(const FieldView& fields);

/** Classifies a merged row: counters + metric medians as the view. */
Classification classifyRow(const BenchRow& row);

/** Runs classifyRow over every row, storing the results in place. */
void classifyAll(WorkloadResult* result);

}  // namespace sfi::perflab

#endif  // SFIKIT_PERFLAB_CLASSIFIER_H_
