/**
 * @file
 * The bench-matrix runner: executes the existing figure benches via
 * their `--json` flags, N repetitions each, and merges the emissions
 * into one classified, schema-versioned WorkloadResult per workload.
 *
 * The matrix is the configured set of workloads the perf-lab tracks;
 * each entry names the bench binary (found under --bench-dir, i.e.
 * <build>/bench) and the arguments that make the run deterministic
 * enough to gate (fixed rates, fixed batch bounds). Repetitions happen
 * at this level — on top of each bench's internal best-of-N — so the
 * committed file carries real run-to-run samples for the MAD band.
 */
#ifndef SFIKIT_PERFLAB_RUNNER_H_
#define SFIKIT_PERFLAB_RUNNER_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "perflab/model.h"

namespace sfi::perflab {

/** One workload of the matrix. */
struct BenchSpec
{
    std::string workload;  ///< BENCH_<workload>.json stem
    std::string binary;    ///< bench executable name
    std::vector<std::string> args;  ///< deterministic-run arguments
};

/**
 * The tracked matrix: transitions (tier microbench + w2c + FaaS
 * batch sweep), the open-loop FaaS host at a fixed offered rate, and
 * the fig3 w2c SPEC-analog figure.
 */
const std::vector<BenchSpec>& defaultMatrix();

/** Matrix entry by workload name; nullptr when unknown. */
const BenchSpec* findSpec(const std::string& workload);

/** `git rev-parse HEAD` of the current directory; "" on failure. */
std::string currentCommit();

/**
 * Runs @p spec's binary once with `--json <tmp>`, parses the emission
 * strictly, and returns it. Stdout is discarded; a non-zero exit or
 * unparseable JSON is an error.
 */
Result<Json> runBenchOnce(const std::string& bench_dir,
                          const BenchSpec& spec);

/**
 * Runs @p spec @p reps times and merges + classifies the result.
 */
Result<WorkloadResult> runWorkload(const std::string& bench_dir,
                                   const BenchSpec& spec, int reps);

/** Reads an entire file; error when unreadable. */
Result<std::string> readFile(const std::string& path);
/** Writes @p text to @p path; error when unwritable. */
Status writeFile(const std::string& path, const std::string& text);

}  // namespace sfi::perflab

#endif  // SFIKIT_PERFLAB_RUNNER_H_
