/**
 * @file
 * Strict JSON value model and parser for the perf-lab.
 *
 * The perf-lab's whole job is to treat bench `--json` output as an
 * authoritative data source, so the parser is deliberately strict
 * (RFC 8259): no NaN/Infinity literals, no trailing commas, no raw
 * control characters inside strings, no trailing garbage after the
 * top-level value. Anything the hardened JsonEmitter writes must parse
 * here, and anything that does not parse here is a bug in the emitter
 * — that contract is what the tests/perflab round-trip suite pins.
 *
 * Objects preserve insertion order (schema files stay diffable) and
 * are small, so member lookup is a linear scan.
 */
#ifndef SFIKIT_PERFLAB_JSON_H_
#define SFIKIT_PERFLAB_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"

namespace sfi::perflab {

/** One JSON value: null, bool, number, string, array, or object. */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Json() : kind_(Kind::Null) {}
    static Json boolean(bool b);
    static Json number(double v);
    static Json string(std::string s);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const;
    double asNumber() const;
    const std::string& asString() const;

    /** Array elements; panics unless isArray(). */
    const std::vector<Json>& items() const;
    void append(Json v);

    /** Object members in insertion order; panics unless isObject(). */
    const std::vector<std::pair<std::string, Json>>& members() const;
    /** Member lookup; nullptr when absent (or not an object). */
    const Json* find(std::string_view name) const;
    /** Sets (or replaces) a member. */
    void set(std::string name, Json v);

    /** True when the number has no fractional part and fits int64. */
    bool isIntegral() const;
    int64_t asInt() const;

    /**
     * Parses @p text as exactly one JSON document. Strict: rejects
     * non-finite number literals, trailing commas, unescaped control
     * characters, bad \u escapes, and trailing non-whitespace.
     */
    static Result<Json> parse(std::string_view text);

    /**
     * Serializes. @p indent > 0 pretty-prints with that many spaces
     * per level; 0 emits a compact single line. Output always
     * re-parses: non-finite numbers cannot be represented and are
     * emitted as null.
     */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string& out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

/** JSON string escaping shared with dump(); exposed for tests. */
std::string jsonEscape(const std::string& s);

}  // namespace sfi::perflab

#endif  // SFIKIT_PERFLAB_JSON_H_
