/**
 * @file
 * The perf-lab's data model: one authoritative, schema-versioned
 * `BENCH_<workload>.json` per workload (rocm-perf-lab's
 * `.rocpd_profile` idea — a single source of truth every later
 * analysis reads, never the raw per-run emissions).
 *
 * A workload file records:
 *   - schema_version and the workload/bench names,
 *   - an environment fingerprint (CPU features, core count, commit)
 *     so a baseline is never silently compared across machines,
 *   - rows, each identified by a key (the row's string fields plus
 *     coordinate fields like batch_max/threads), carrying
 *       metrics   gated continuous measurements with per-rep samples
 *                 and min / median / MAD aggregates,
 *       counters  integral bookkeeping the classifier reads
 *                 (gs_switches, sandbox_transitions, ...); recorded,
 *                 never gated,
 *       bottleneck  the deterministic classification + firing rule.
 *
 * Field-kind inference (documented in DESIGN.md §perf-lab): string
 * fields and known coordinates form the key; numeric fields with a
 * unit suffix (_ns/_us/_ms/_sec/_norm/_pct/rps) are metrics; numeric
 * fields integral in every rep are counters; anything else is a
 * metric.
 */
#ifndef SFIKIT_PERFLAB_MODEL_H_
#define SFIKIT_PERFLAB_MODEL_H_

#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "perflab/json.h"

namespace sfi::perflab {

/** Bump when the BENCH_*.json layout changes incompatibly. */
constexpr int kSchemaVersion = 1;

/** Host identity a baseline is only valid against. */
struct EnvFingerprint
{
    std::string cpu;      ///< /proc/cpuinfo model name (may be empty)
    int hwThreads = 0;    ///< std::thread::hardware_concurrency()
    bool fsgsbase = false;
    bool pku = false;
    bool ospke = false;
    std::string commit;   ///< git HEAD at collection time (informational)

    /** Captures the current host (commit left empty; runner fills it). */
    static EnvFingerprint current();

    /**
     * True when @p other was collected on compatible hardware. The
     * commit intentionally does not participate — comparing across
     * commits is the whole point of a regression gate.
     */
    bool compatibleWith(const EnvFingerprint& other) const;

    Json toJson() const;
    static Result<EnvFingerprint> fromJson(const Json& j);
};

/** Aggregates of one metric across the reps of a collection run. */
struct MetricStat
{
    std::vector<double> samples;  ///< one per rep, in rep order

    double minOf() const;
    double maxOf() const;
    double median() const;
    /** Median absolute deviation around the median (robust spread). */
    double mad() const;
    /** min for lower-is-better metrics, max for higher-is-better. */
    double best(bool lower_is_better) const;
};

/** One result row of a workload. */
struct BenchRow
{
    /** Identity: string fields + coordinates, in emission order. */
    std::vector<std::pair<std::string, std::string>> key;
    /** Gated measurements. */
    std::map<std::string, MetricStat> metrics;
    /** Classifier inputs; informational. */
    std::map<std::string, int64_t> counters;
    /** guard-bound / transition-bound / memory-bound / zeroing-bound /
     *  balanced. */
    std::string bottleneck;
    /** Stable id of the classifier rule that fired. */
    std::string bottleneckRule;
    /** Human-readable evidence (the computed ratio). */
    std::string bottleneckDetail;

    /** "section=tiers strategy=segue" — stable row label. */
    std::string keyString() const;
};

/** One workload's authoritative trajectory snapshot. */
struct WorkloadResult
{
    int schemaVersion = kSchemaVersion;
    std::string workload;  ///< matrix name, e.g. "transitions"
    std::string bench;     ///< emitting binary's bench name
    EnvFingerprint env;
    int reps = 0;

    std::vector<BenchRow> rows;

    const BenchRow* findRow(const std::string& key_string) const;

    Json toJson() const;
    static Result<WorkloadResult> fromJson(const Json& j);
};

/** True for fields that identify a row rather than measure it. */
bool isCoordinateField(const std::string& name);
/** True for numeric fields gated by the regression gate. */
bool isMetricField(const std::string& name, bool integral_in_all_reps);
/**
 * False for metrics that are recorded but never gated: extreme-tail
 * observations (max_*, p999_*) whose run-to-run spread is dominated by
 * single-event noise, and queue_* diagnostics that decompose the
 * already-gated sojourn percentiles.
 */
bool metricIsGated(const std::string& name);
/** False for times/norms; true for rates (rps) and gain percentages. */
bool metricHigherIsBetter(const std::string& name);
/**
 * True for ratio metrics (_norm, _pct): numerator and denominator come
 * from the same rep, so noise does not cancel and the per-rep extremes
 * are meaningless (a slow native denominator makes the ratio look
 * "best"). The gate centers these on the median instead of min/max.
 */
bool metricIsRatio(const std::string& name);

/**
 * Merges @p runs (one parsed `{"bench":..., "results":[...]}` document
 * per rep) into rows with per-metric sample vectors. Rows are matched
 * across reps by key; a row missing from some rep simply has fewer
 * samples. Fails on schema surprises (no "results" array, key fields
 * changing type).
 */
Result<WorkloadResult> mergeRuns(const std::string& workload,
                                 const std::vector<Json>& runs,
                                 const EnvFingerprint& env);

}  // namespace sfi::perflab

#endif  // SFIKIT_PERFLAB_MODEL_H_
