#include "perflab/classifier.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace sfi::perflab {

namespace {

std::string
fmt(const char* f, double a, double b = 0, double c = 0)
{
    char buf[160];
    std::snprintf(buf, sizeof buf, f, a, b, c);
    return buf;
}

std::optional<double>
get(const FieldView& v, const char* name)
{
    return v(name);
}

}  // namespace

const std::vector<ClassifierRule>&
classifierRules()
{
    // Ordered: the most specific evidence first. Thresholds are
    // documented in DESIGN.md §perf-lab; keep the two in sync.
    static const std::vector<ClassifierRule> kRules = {
        // Cold-start rows (ISSUE 9): when per-cold-start compile+verify
        // time is a quarter or more of the first-request p50, the row
        // is measuring the compiler, not the workload — the tiered
        // cache is (or would be) the fix.
        {"coldstart.compile_bound", "compile-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto colds = get(v, "cold_starts");
             auto compile = get(v, "compile_ns");
             auto p50 = get(v, "first_req_p50_us");
             if (!colds || !compile || !p50 || *colds <= 0 || *p50 <= 0)
                 return std::nullopt;
             double per_ns = *compile / *colds;
             if (per_ns < 0.25 * *p50 * 1000.0)
                 return std::nullopt;
             return fmt("compile %.0f us per cold start = %.0f%% of "
                        "first-request p50 (>= 25%%)",
                        per_ns / 1e3, 100.0 * per_ns / (*p50 * 1000.0));
         }},
        // Admission-bound rows (ISSUE 10): the bounded shard queues are
        // turning offered work away (or, under Backpressure, holding it
        // upstream longer than it takes to serve) — the row grades the
        // admission policy, not the execution path.
        {"admission.queue_bound", "admission-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto offered = get(v, "offered_requests");
             auto rejected = get(v, "rejected");
             auto shed = get(v, "shed_requests");
             if (offered && *offered > 0) {
                 double away = (rejected ? *rejected : 0) +
                               (shed ? *shed : 0);
                 if (away / *offered >= 0.10)
                     return fmt("%.0f%% of offered requests turned "
                                "away at admission (>= 10%%)",
                                100.0 * away / *offered);
             }
             // Backpressure turns nothing away; the bound shows up as
             // admission delay dominating the served latency.
             auto adm = get(v, "admission_p99_us");
             auto p99 = get(v, "p99_us");
             auto overloads = get(v, "overload_events");
             if (adm && p99 && overloads && *overloads >= 1 &&
                 *p99 > 0 && *adm >= *p99)
                 return fmt("admission-delay p99 %.0f us >= served "
                            "p99 %.0f us with %.0f overload events",
                            *adm, *p99, *overloads);
             return std::nullopt;
         }},
        // Warm-reuse zeroing: more than a quarter MiB memset per
        // request means the pool spends its time scrubbing pages.
        {"zeroing.bytes_per_request", "zeroing-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto bytes = get(v, "warm_zeroed_bytes");
             auto reqs = get(v, "requests");
             if (!bytes || !reqs || *reqs <= 0)
                 return std::nullopt;
             double per = *bytes / *reqs;
             if (per < 256.0 * 1024.0)
                 return std::nullopt;
             return fmt("%.0f bytes zeroed per request (>= 262144)",
                        per);
         }},
        // One sandbox entry per request (or more): the batched-entry
        // tier is not amortizing and the transition tax dominates.
        {"transition.per_request", "transition-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto tr = get(v, "sandbox_transitions");
             auto reqs = get(v, "requests");
             if (!tr || !reqs || *reqs <= 0)
                 return std::nullopt;
             double per = *tr / *reqs;
             if (per < 0.5)
                 return std::nullopt;
             return fmt("%.2f transitions per request (>= 0.50)", per);
         }},
        // Tier microbench: if batching away the entry/exit work
        // recovers >= 25% of the full-tier cost, the row measures
        // transition overhead.
        {"transition.tier_gap", "transition-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto full = get(v, "full_ns");
             auto batched = get(v, "batched_ns");
             if (!full || !batched || *full <= 0)
                 return std::nullopt;
             double gap = (*full - *batched) / *full;
             if (gap < 0.25)
                 return std::nullopt;
             return fmt("full->batched recovers %.0f%% (>= 25%%)",
                        100 * gap);
         }},
        // w2c harnesses: per-entry %gs save/write/restore visible
        // against the amortized cached entry.
        {"transition.scoped_entry", "transition-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto scoped = get(v, "scoped_ms");
             auto cached = get(v, "cached_ms");
             if (!scoped || !cached || *scoped <= 0)
                 return std::nullopt;
             double gap = (*scoped - *cached) / *scoped;
             if (gap < 0.05)
                 return std::nullopt;
             return fmt("scoped->cached entry recovers %.1f%% (>= 5%%)",
                        100 * gap);
         }},
        // Normalized-vs-native figures: >= 15% residual overhead in
        // any sandboxed column means the inline guards are the tax.
        {"guard.sfi_overhead", "guard-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             static const char* const kNorms[] = {
                 "wasm2c_norm", "segue_norm", "bounds_norm",
                 "bounds_segue_norm", "lfi_norm", "lfi_segue_norm",
             };
             double worst = 0;
             const char* which = nullptr;
             for (const char* n : kNorms) {
                 auto x = get(v, n);
                 if (x && *x > worst) {
                     worst = *x;
                     which = n;
                 }
             }
             if (which == nullptr || worst < 1.15)
                 return std::nullopt;
             return std::string(which) + " = " +
                    fmt("%.2fx native (>= 1.15x)", worst);
         }},
        // JIT guard-elision stats: most checks surviving the verified
        // optimizer (on a row that got this far) points at guard cost.
        {"guard.residual_checks", "guard-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto total = get(v, "guard_checks_total");
             auto gone = get(v, "guard_checks_eliminated");
             if (!total || !gone || *total < 16)
                 return std::nullopt;
             double residual = (*total - *gone) / *total;
             if (residual < 0.5)
                 return std::nullopt;
             return fmt("%.0f%% of %0.f guard checks survive elision "
                        "(>= 50%%)",
                        100 * residual, *total);
         }},
        // Cross-shard contention: a quarter or more of allocations
        // stolen from another shard means the shards are fighting over
        // slots, not serving their own working set. Ordered before the
        // churn rule — contention is the more specific diagnosis.
        {"pool.shard_contention", "contention-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto allocs = get(v, "allocations");
             auto steals = get(v, "steals");
             if (!allocs || !steals || *allocs <= 0)
                 return std::nullopt;
             if (*steals / *allocs < 0.25)
                 return std::nullopt;
             return fmt("%.0f%% of allocations stolen cross-shard "
                        "(>= 25%%)",
                        100 * *steals / *allocs);
         }},
        // Pool churn: allocations hitting the decommit path instead of
        // the warm cache.
        {"memory.pool_churn", "memory-bound",
         [](const FieldView& v) -> std::optional<std::string> {
             auto allocs = get(v, "allocations");
             if (!allocs || *allocs <= 0)
                 return std::nullopt;
             auto warm = get(v, "warm_hits");
             auto decommits = get(v, "decommits");
             if (warm && decommits && *decommits >= 1 &&
                 *warm / *allocs < 0.5)
                 return fmt("warm-hit rate %.0f%% (< 50%%) with %.0f "
                            "decommit batches",
                            100 * *warm / *allocs, *decommits);
             return std::nullopt;
         }},
    };
    return kRules;
}

Classification
classify(const FieldView& fields)
{
    for (const ClassifierRule& rule : classifierRules()) {
        if (auto detail = rule.fires(fields))
            return {rule.bottleneck, rule.id, *detail};
    }
    return {"balanced", "default",
            "no rule above threshold; cost is spread across guards, "
            "transitions, and memory"};
}

Classification
classifyRow(const BenchRow& row)
{
    FieldView view =
        [&row](const std::string& name) -> std::optional<double> {
        auto c = row.counters.find(name);
        if (c != row.counters.end())
            return double(c->second);
        auto m = row.metrics.find(name);
        if (m != row.metrics.end() && !m->second.samples.empty())
            return m->second.median();
        // Numeric coordinates live in the key as strings.
        for (const auto& [k, v] : row.key) {
            if (k != name)
                continue;
            char* end = nullptr;
            double d = std::strtod(v.c_str(), &end);
            if (end != v.c_str() && *end == '\0')
                return d;
        }
        return std::nullopt;
    };
    return classify(view);
}

void
classifyAll(WorkloadResult* result)
{
    for (BenchRow& row : result->rows) {
        Classification c = classifyRow(row);
        row.bottleneck = c.bottleneck;
        row.bottleneckRule = c.rule;
        row.bottleneckDetail = c.detail;
    }
}

}  // namespace sfi::perflab
