/**
 * @file
 * perflab: the continuous perf-lab as a command-line tool.
 *
 *   perflab list                         # show the tracked matrix
 *   perflab run [--workload W] \
 *       [--bench-dir D] [--out-dir D] [--reps N]
 *                                        # refresh BENCH_<W>.json
 *   perflab check [--workload W] \
 *       [--baseline-dir D] [--bench-dir D] [--reps N] [--band X]
 *                                        # fresh run vs committed
 *                                        # baseline; the CI gate
 *   perflab gate --baseline A --fresh B [--band X]
 *                                        # grade two files offline
 *   perflab classify --file F            # recompute + cross-check
 *                                        # stored bottleneck labels
 *
 * Exit status: 0 pass, 1 regression/violation, 2 usage error, and 77
 * when a check is skipped (no committed baseline for the workload, or
 * the environment fingerprint does not match) — ctest maps 77 to
 * SKIPPED via SKIP_RETURN_CODE so Tier-1 stays green on fresh clones
 * and foreign machines while still printing why.
 */
#include <libgen.h>
#include <unistd.h>

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "perflab/classifier.h"
#include "perflab/gate.h"
#include "perflab/json.h"
#include "perflab/model.h"
#include "perflab/runner.h"

namespace sfi::perflab {
namespace {

constexpr int kExitSkip = 77;  ///< ctest SKIP_RETURN_CODE

int
usage()
{
    std::fprintf(
        stderr,
        "usage: perflab <list|run|check|gate|classify> [options]\n"
        "  list                    print the tracked workload matrix\n"
        "  run                     run benches, write BENCH_*.json\n"
        "    --workload W          one workload (default: all)\n"
        "    --bench-dir D         bench binaries (default: derived "
        "from argv[0])\n"
        "    --out-dir D           output directory (default: .)\n"
        "    --reps N              repetitions per bench (default: 3)\n"
        "  check                   run fresh, grade vs committed "
        "baseline\n"
        "    --workload W, --bench-dir D, --reps N (default: 1)\n"
        "    --baseline-dir D      committed BENCH_*.json (default: .)\n"
        "    --band X              relative noise floor (default: "
        "0.12)\n"
        "    --ratio-band X        precision floor for ratio metrics\n"
        "                          (_norm/_pct/_per_transition; "
        "default: 0.12,\n"
        "                          effective floor min(band, "
        "ratio-band))\n"
        "    --mad-mult X          MAD band multiplier (default: 5)\n"
        "    --allow-env-mismatch  compare across machines anyway\n"
        "  gate --baseline A --fresh B [--band X] [--mad-mult X]\n"
        "  classify --file F       recompute bottleneck labels and\n"
        "                          cross-check the stored ones\n");
    return 2;
}

struct Options
{
    std::string workload;  // empty = all
    std::string benchDir;
    std::string outDir = ".";
    std::string baselineDir = ".";
    std::string baselineFile;
    std::string freshFile;
    std::string file;
    int reps = 0;  // 0 = subcommand default
    GateConfig gate;
};

/** perflab lives at <build>/src/perflab/; benches at <build>/bench. */
std::string
deriveBenchDir(const char* argv0)
{
    char resolved[PATH_MAX];
    if (realpath(argv0, resolved) == nullptr)
        return "";
    std::string dir = dirname(resolved);  // dirname mutates its arg
    return dir + "/../../bench";
}

bool
parseOptions(int argc, char** argv, int first, Options* opts)
{
    for (int i = first; i < argc; i++) {
        auto needsValue = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--workload") == 0) {
            const char* v = needsValue("--workload");
            if (v == nullptr)
                return false;
            opts->workload = v;
        } else if (std::strcmp(argv[i], "--bench-dir") == 0) {
            const char* v = needsValue("--bench-dir");
            if (v == nullptr)
                return false;
            opts->benchDir = v;
        } else if (std::strcmp(argv[i], "--out-dir") == 0) {
            const char* v = needsValue("--out-dir");
            if (v == nullptr)
                return false;
            opts->outDir = v;
        } else if (std::strcmp(argv[i], "--baseline-dir") == 0) {
            const char* v = needsValue("--baseline-dir");
            if (v == nullptr)
                return false;
            opts->baselineDir = v;
        } else if (std::strcmp(argv[i], "--baseline") == 0) {
            const char* v = needsValue("--baseline");
            if (v == nullptr)
                return false;
            opts->baselineFile = v;
        } else if (std::strcmp(argv[i], "--fresh") == 0) {
            const char* v = needsValue("--fresh");
            if (v == nullptr)
                return false;
            opts->freshFile = v;
        } else if (std::strcmp(argv[i], "--file") == 0) {
            const char* v = needsValue("--file");
            if (v == nullptr)
                return false;
            opts->file = v;
        } else if (std::strcmp(argv[i], "--reps") == 0) {
            const char* v = needsValue("--reps");
            if (v == nullptr)
                return false;
            opts->reps = std::atoi(v);
            if (opts->reps < 1) {
                std::fprintf(stderr, "--reps: '%s' must be >= 1\n", v);
                return false;
            }
        } else if (std::strcmp(argv[i], "--band") == 0) {
            const char* v = needsValue("--band");
            if (v == nullptr)
                return false;
            opts->gate.relFloor = std::atof(v);
            if (opts->gate.relFloor <= 0) {
                std::fprintf(stderr, "--band: '%s' must be > 0\n", v);
                return false;
            }
        } else if (std::strcmp(argv[i], "--ratio-band") == 0) {
            const char* v = needsValue("--ratio-band");
            if (v == nullptr)
                return false;
            opts->gate.ratioRelFloor = std::atof(v);
            if (opts->gate.ratioRelFloor <= 0) {
                std::fprintf(stderr, "--ratio-band: '%s' must be > 0\n",
                             v);
                return false;
            }
        } else if (std::strcmp(argv[i], "--mad-mult") == 0) {
            const char* v = needsValue("--mad-mult");
            if (v == nullptr)
                return false;
            opts->gate.madMult = std::atof(v);
            if (opts->gate.madMult < 0) {
                std::fprintf(stderr, "--mad-mult: '%s' must be >= 0\n",
                             v);
                return false;
            }
        } else if (std::strcmp(argv[i], "--allow-env-mismatch") == 0) {
            opts->gate.requireEnvMatch = false;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            return false;
        }
    }
    return true;
}

std::vector<const BenchSpec*>
selectedSpecs(const Options& opts, bool* ok)
{
    *ok = true;
    std::vector<const BenchSpec*> specs;
    if (opts.workload.empty() || opts.workload == "all") {
        for (const BenchSpec& s : defaultMatrix())
            specs.push_back(&s);
        return specs;
    }
    const BenchSpec* s = findSpec(opts.workload);
    if (s == nullptr) {
        std::fprintf(stderr,
                     "unknown workload '%s' (try: perflab list)\n",
                     opts.workload.c_str());
        *ok = false;
        return specs;
    }
    specs.push_back(s);
    return specs;
}

Result<WorkloadResult>
loadWorkloadFile(const std::string& path)
{
    auto text = readFile(path);
    if (!text.isOk())
        return Result<WorkloadResult>::error(text.message());
    auto json = Json::parse(*text);
    if (!json.isOk())
        return Result<WorkloadResult>::error(path + ": " +
                                             json.message());
    auto parsed = WorkloadResult::fromJson(*json);
    if (!parsed.isOk())
        return Result<WorkloadResult>::error(path + ": " +
                                             parsed.message());
    return parsed;
}

void
printSummary(const WorkloadResult& w)
{
    std::printf("workload %-16s bench %-22s reps %d, %zu rows\n",
                w.workload.c_str(), w.bench.c_str(), w.reps,
                w.rows.size());
    for (const BenchRow& row : w.rows)
        std::printf("  [%s] %s (%s: %s)\n", row.keyString().c_str(),
                    row.bottleneck.c_str(), row.bottleneckRule.c_str(),
                    row.bottleneckDetail.c_str());
}

int
cmdList()
{
    std::printf("%-16s %-28s args\n", "workload", "binary");
    for (const BenchSpec& s : defaultMatrix()) {
        std::string args;
        for (const std::string& a : s.args)
            args += (args.empty() ? "" : " ") + a;
        std::printf("%-16s %-28s %s\n", s.workload.c_str(),
                    s.binary.c_str(), args.c_str());
    }
    return 0;
}

int
cmdRun(const Options& opts)
{
    bool ok;
    auto specs = selectedSpecs(opts, &ok);
    if (!ok)
        return 2;
    int reps = opts.reps > 0 ? opts.reps : 3;
    for (const BenchSpec* spec : specs) {
        std::printf("running %s (%s, %d reps)...\n",
                    spec->workload.c_str(), spec->binary.c_str(), reps);
        auto result = runWorkload(opts.benchDir, *spec, reps);
        if (!result.isOk()) {
            std::fprintf(stderr, "error: %s\n",
                         result.message().c_str());
            return 1;
        }
        std::string path =
            opts.outDir + "/BENCH_" + spec->workload + ".json";
        Status st = writeFile(path, result->toJson().dump(2) + "\n");
        if (!st.isOk()) {
            std::fprintf(stderr, "error: %s\n", st.message().c_str());
            return 1;
        }
        printSummary(*result);
        std::printf("wrote %s\n", path.c_str());
    }
    return 0;
}

int
cmdCheck(const Options& opts)
{
    bool ok;
    auto specs = selectedSpecs(opts, &ok);
    if (!ok)
        return 2;
    int reps = opts.reps > 0 ? opts.reps : 1;
    bool any_fail = false;
    bool any_checked = false;
    for (const BenchSpec* spec : specs) {
        std::string path =
            opts.baselineDir + "/BENCH_" + spec->workload + ".json";
        if (access(path.c_str(), R_OK) != 0) {
            std::printf("SKIP %s: no committed baseline at %s — run "
                        "scripts/run_perf_lab.sh and commit the "
                        "result\n",
                        spec->workload.c_str(), path.c_str());
            continue;
        }
        auto baseline = loadWorkloadFile(path);
        if (!baseline.isOk()) {
            std::fprintf(stderr, "error: %s\n",
                         baseline.message().c_str());
            return 1;
        }
        std::printf("checking %s against %s (%d fresh reps)...\n",
                    spec->workload.c_str(), path.c_str(), reps);
        auto fresh = runWorkload(opts.benchDir, *spec, reps);
        if (!fresh.isOk()) {
            std::fprintf(stderr, "error: %s\n", fresh.message().c_str());
            return 1;
        }
        GateReport report = grade(*baseline, *fresh, opts.gate);
        if (report.envMismatch && opts.gate.requireEnvMatch) {
            std::printf("SKIP %s: %s\n", spec->workload.c_str(),
                        report.notes.empty()
                            ? "environment mismatch"
                            : report.notes[0].c_str());
            continue;
        }
        std::fputs(formatReport(report, false).c_str(), stdout);
        std::printf("%s: %s\n", spec->workload.c_str(),
                    report.pass ? "PASS" : "FAIL");
        any_checked = true;
        any_fail |= !report.pass;
    }
    if (any_fail)
        return 1;
    return any_checked ? 0 : kExitSkip;
}

int
cmdGate(const Options& opts)
{
    if (opts.baselineFile.empty() || opts.freshFile.empty()) {
        std::fprintf(stderr,
                     "gate requires --baseline and --fresh files\n");
        return 2;
    }
    auto baseline = loadWorkloadFile(opts.baselineFile);
    auto fresh = loadWorkloadFile(opts.freshFile);
    if (!baseline.isOk() || !fresh.isOk()) {
        std::fprintf(stderr, "error: %s\n",
                     (!baseline.isOk() ? baseline : fresh)
                         .message()
                         .c_str());
        return 1;
    }
    GateReport report = grade(*baseline, *fresh, opts.gate);
    if (report.envMismatch && opts.gate.requireEnvMatch) {
        std::printf("SKIP: %s\n", report.notes.empty()
                                      ? "environment mismatch"
                                      : report.notes[0].c_str());
        return kExitSkip;
    }
    std::fputs(formatReport(report, true).c_str(), stdout);
    std::printf("%s\n", report.pass ? "PASS" : "FAIL");
    return report.pass ? 0 : 1;
}

int
cmdClassify(const Options& opts)
{
    if (opts.file.empty()) {
        std::fprintf(stderr, "classify requires --file\n");
        return 2;
    }
    auto loaded = loadWorkloadFile(opts.file);
    if (!loaded.isOk()) {
        std::fprintf(stderr, "error: %s\n", loaded.message().c_str());
        return 1;
    }
    int mismatches = 0;
    for (const BenchRow& row : loaded->rows) {
        Classification c = classifyRow(row);
        bool match = c.bottleneck == row.bottleneck;
        if (!match)
            mismatches++;
        std::printf("  [%s] %s (%s: %s)%s\n", row.keyString().c_str(),
                    c.bottleneck.c_str(), c.rule.c_str(),
                    c.detail.c_str(),
                    match ? ""
                          : (" — STORED '" + row.bottleneck +
                             "' DISAGREES")
                                .c_str());
    }
    if (mismatches > 0) {
        std::printf("%d stored classification(s) disagree with the "
                    "rule table; refresh the baseline\n",
                    mismatches);
        return 1;
    }
    return 0;
}

int
run(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    Options opts;
    opts.benchDir = deriveBenchDir(argv[0]);
    if (!parseOptions(argc, argv, 2, &opts))
        return usage();

    std::string cmd = argv[1];
    if (cmd == "list")
        return cmdList();
    if (cmd == "run")
        return cmdRun(opts);
    if (cmd == "check")
        return cmdCheck(opts);
    if (cmd == "gate")
        return cmdGate(opts);
    if (cmd == "classify")
        return cmdClassify(opts);
    std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
    return usage();
}

}  // namespace
}  // namespace sfi::perflab

int
main(int argc, char** argv)
{
    return sfi::perflab::run(argc, argv);
}
