#include "runtime/signals.h"

#include <csignal>
#include <cstdlib>

#include "base/logging.h"

namespace sfi::rt {

namespace {

thread_local ActiveExecution* tl_active = nullptr;

/** Restores default disposition and re-raises (a genuine crash). */
void
reraise(int sig, siginfo_t* info)
{
    signal(sig, SIG_DFL);
    raise(sig);
}

void
handler(int sig, siginfo_t* info, void* ucontext_raw)
{
    ActiveExecution* active = tl_active;
    uint64_t fault_addr = reinterpret_cast<uint64_t>(info->si_addr);

    if (active == nullptr) {
        reraise(sig, info);
        return;
    }

    TrapKind kind = TrapKind::None;
    if (sig == SIGSEGV || sig == SIGBUS) {
        if (fault_addr >= active->memStart && fault_addr < active->memEnd)
            kind = TrapKind::OutOfBounds;
    } else if (sig == SIGFPE) {
        // si_addr is the faulting RIP for SIGFPE. Division by zero is
        // pre-checked in generated code, so a hardware #DE inside JIT
        // code can only be INT_MIN / -1.
        if (fault_addr >= active->codeStart &&
            fault_addr < active->codeEnd) {
            kind = TrapKind::IntegerOverflow;
        }
    } else if (sig == SIGILL) {
        if (fault_addr >= active->codeStart &&
            fault_addr < active->codeEnd) {
            kind = TrapKind::Unreachable;
        }
    }

    if (kind == TrapKind::None) {
        reraise(sig, info);
        return;
    }

    // The signal being handled is blocked during delivery; unblock it
    // before the longjmp (we use the fast sigsetjmp(buf, 0) variant that
    // does not save masks).
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, sig);
    sigprocmask(SIG_UNBLOCK, &set, nullptr);

    siglongjmp(*active->trapJmp, static_cast<int>(kind));
}

}  // namespace

void
installSignalHandlers()
{
    static bool installed = [] {
        struct sigaction sa;
        sa.sa_sigaction = handler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_SIGINFO;
        for (int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL}) {
            if (sigaction(sig, &sa, nullptr) != 0)
                SFI_FATAL("failed to install handler for signal %d", sig);
        }
        return true;
    }();
    (void)installed;
}

ActiveExecution*
setActiveExecution(ActiveExecution* exec)
{
    ActiveExecution* prev = tl_active;
    tl_active = exec;
    return prev;
}

ActiveExecution*
activeExecution()
{
    return tl_active;
}

}  // namespace sfi::rt
