/**
 * @file
 * Wasm linear memory backed by guard regions (§2).
 *
 * The standard production layout: reserve 4 GiB of address space plus a
 * guard region, commit only the current memory size as read-write, and
 * leave everything else PROT_NONE. Because compiled code adds a 32-bit
 * index (plus a bounded static offset) to the base, every possible
 * access lands either in committed memory or in a mapping that faults —
 * bounds checking by construction, with no per-access instructions.
 */
#ifndef SFIKIT_RUNTIME_MEMORY_H_
#define SFIKIT_RUNTIME_MEMORY_H_

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "base/os_mem.h"
#include "base/result.h"
#include "base/units.h"

namespace sfi::rt {

/** One linear memory: either owning its reservation or a view into a
 *  pooling-allocator slot. */
class LinearMemory
{
  public:
    struct Config
    {
        uint32_t minPages = 0;
        uint32_t maxPages = 0;
        /** Guard bytes beyond the 4 GiB index range. */
        uint64_t guardBytes = 4 * kGiB;
        /**
         * Reserve the full 4 GiB index space (guard-region bounds
         * enforcement). When false, only maxPages are reserved and the
         * compiler must emit explicit bounds checks.
         */
        bool reserveFull = true;
    };

    LinearMemory() = default;

    /** Creates an owning memory per @p config. */
    static Result<LinearMemory> create(const Config& config);

    /**
     * Wraps memory owned by a pooling-allocator slot. The pool has
     * already established protections/colors; grow only moves the
     * committed-size bookkeeping. @p reserved_bytes is the span
     * (slot + trailing guard) within which faults should be attributed
     * to this memory.
     */
    static LinearMemory view(uint8_t* base, uint32_t pages,
                             uint32_t max_pages,
                             uint64_t reserved_bytes = 0);

    /** Bytes of address space (memory + guard) behind base(). */
    uint64_t reservedBytes() const { return reservedBytes_; }

    uint8_t* base() const { return base_; }
    uint32_t pages() const { return pages_; }
    uint32_t maxPages() const { return maxPages_; }
    uint64_t byteSize() const { return uint64_t(pages_) * kWasmPageSize; }
    /**
     * Conservative dirty-span upper bound: the largest byteSize() this
     * memory has ever had (grow high-water). Everything the occupant
     * could have written lies below it, but an occupant that faulted
     * only a few pages is *heavily* over-reported — recycling callers
     * should prefer touchedBytes().
     */
    uint64_t highWaterBytes() const { return highWaterBytes_; }
    /**
     * The span actually dirtied, for pool::MemoryPool::free()'s
     * touched_bytes: the probed faulted span (pagemap-based and
     * swap-aware; see touchedHighWaterBytes()), combined with the
     * tracked store high-water (interpreter writes / data segments).
     * Falls back to the conservative highWaterBytes() when no safe
     * probe is available, so it never under-reports — under-reporting
     * would leak the previous occupant's bytes to the next tenant.
     */
    uint64_t touchedBytes() const;
    /**
     * Records a host-side write of [offset, offset+len) so the store
     * high-water survives even where touched-span probing is
     * unavailable. JIT-compiled guest stores are not individually
     * tracked — they are what the pagemap probe exists for.
     */
    void
    noteStore(uint64_t offset, uint64_t len)
    {
        storeHighWaterBytes_ =
            std::max(storeHighWaterBytes_, offset + len);
    }
    bool valid() const { return base_ != nullptr; }

    /**
     * memory.grow: extends by @p delta_pages. Returns the old size in
     * pages, or -1 when the limit would be exceeded.
     */
    int64_t grow(uint32_t delta_pages);

    /** True iff [offset, offset+len) is inside current memory. */
    bool
    inBounds(uint64_t offset, uint64_t len) const
    {
        uint64_t size = byteSize();
        return offset <= size && len <= size - offset;
    }

    /** Checked typed read (interpreter path). */
    template <typename T>
    bool
    read(uint64_t offset, T* out) const
    {
        if (!inBounds(offset, sizeof(T)))
            return false;
        std::memcpy(out, base_ + offset, sizeof(T));
        return true;
    }

    /** Checked typed write (interpreter path). */
    template <typename T>
    bool
    write(uint64_t offset, T value)
    {
        if (!inBounds(offset, sizeof(T)))
            return false;
        std::memcpy(base_ + offset, &value, sizeof(T));
        noteStore(offset, sizeof(T));
        return true;
    }

  private:
    Reservation owned_;
    uint8_t* base_ = nullptr;
    uint32_t pages_ = 0;
    uint32_t maxPages_ = 0;
    uint64_t reservedBytes_ = 0;
    uint64_t highWaterBytes_ = 0;
    /** Genuine high-water of host-tracked stores; starts at 0. */
    uint64_t storeHighWaterBytes_ = 0;
    bool ownsMapping_ = false;
};

}  // namespace sfi::rt

#endif  // SFIKIT_RUNTIME_MEMORY_H_
