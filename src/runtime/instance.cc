#include "runtime/instance.h"

#include <cstring>

#include "base/logging.h"
#include "runtime/signals.h"
#include "seg/seg.h"
#include "wasm/validator.h"

namespace sfi::rt {

Result<std::shared_ptr<SharedModule>>
SharedModule::compile(wasm::Module module, const jit::CompilerConfig& config)
{
    auto compiled = jit::compile(module, config);
    if (!compiled) {
        return Result<std::shared_ptr<SharedModule>>::error(
            compiled.message());
    }
    auto shared = std::make_shared<SharedModule>();
    shared->module_ = std::move(module);
    shared->code_ = std::move(*compiled);
    return std::shared_ptr<SharedModule>(std::move(shared));
}

Result<std::shared_ptr<SharedModule>>
SharedModule::compileTiered(wasm::Module module,
                            const jit::CompilerConfig& config,
                            const jit::TierOptions& tier_opts)
{
    using R = Result<std::shared_ptr<SharedModule>>;
    // Validate once here: the per-function tiered compiles skip
    // re-validation (jit::compileFunction), and the interpreter
    // fallback revalidates harmlessly.
    if (auto st = wasm::validate(module); !st)
        return R::error("validation: " + st.message());
    auto shared = std::make_shared<SharedModule>();
    shared->module_ = std::move(module);
    // No monolithic code; keep the config reachable via config().
    shared->code_.config = config;
    auto tm = jit::TieredModule::create(shared->module_, config,
                                        tier_opts);
    if (!tm.isOk())
        return R::error(tm.message());
    shared->tiered_ = std::move(*tm);
    return std::shared_ptr<SharedModule>(std::move(shared));
}

Result<std::unique_ptr<Instance>>
Instance::create(std::shared_ptr<const SharedModule> shared,
                 std::map<std::string, HostFn> host_fns, Options options)
{
    const wasm::Module& m = shared->module();
    auto inst = std::unique_ptr<Instance>(new Instance());
    inst->shared_ = std::move(shared);
    inst->stackBudget_ = options.stackBudget;
    inst->mpkSystem_ = options.mpkSystem;
    inst->pkey_ = options.pkey;
    inst->tier_ = options.transitionTier;

    // --- memory ---
    if (options.memoryView.valid()) {
        inst->memory_ = std::move(options.memoryView);
    } else {
        LinearMemory::Config cfg;
        cfg.minPages = m.memory.minPages;
        cfg.maxPages = m.memory.maxPages;
        if (inst->shared_->config().explicitBounds()) {
            // Bounds checks make guard reservations unnecessary.
            cfg.guardBytes = 0;
            cfg.reserveFull = false;
        } else {
            cfg.guardBytes = options.guardBytes;
            cfg.reserveFull = true;
        }
        auto mem = LinearMemory::create(cfg);
        if (!mem)
            return Result<std::unique_ptr<Instance>>::error(mem.message());
        inst->memory_ = std::move(*mem);
    }
    for (const wasm::DataSegment& seg : m.data) {
        if (!inst->memory_.inBounds(seg.offset, seg.bytes.size())) {
            return Result<std::unique_ptr<Instance>>::error(
                "data segment exceeds instance memory");
        }
        std::memcpy(inst->memory_.base() + seg.offset, seg.bytes.data(),
                    seg.bytes.size());
        inst->memory_.noteStore(seg.offset, seg.bytes.size());
    }

    // --- globals, imports, table ---
    for (const wasm::Global& g : m.globals)
        inst->globals_.push_back(g.init);
    for (const wasm::Import& imp : m.imports) {
        auto it = host_fns.find(imp.name);
        if (it == host_fns.end()) {
            return Result<std::unique_ptr<Instance>>::error(
                "unresolved import: " + imp.name);
        }
        inst->hostFns_.push_back(it->second);
    }
    jit::TieredModule* tm = inst->shared_->tiered();
    if (tm != nullptr)
        inst->tierHostFns_ = host_fns;  // for the lazy interp fallback
    for (uint32_t fi : m.table) {
        if (fi < m.numImports()) {
            // Host functions are not directly callable through tables;
            // poison the slot so call_indirect traps with a mismatch.
            inst->tableTypeIds_.push_back(~0ull);
            inst->tableEntries_.push_back(0);
        } else {
            inst->tableTypeIds_.push_back(m.typeIndexOfFunc(fi));
            // Tiered: table entries must stay valid across tier-up, so
            // they point at the stable dispatch thunks, never at a
            // momentary funcEntries slot value.
            const void* addr =
                tm != nullptr
                    ? tm->dispatchAddr(fi - m.numImports())
                    : inst->shared_->code().funcAddr(fi - m.numImports());
            inst->tableEntries_.push_back(
                reinterpret_cast<uint64_t>(addr));
        }
    }

    // --- context wiring ---
    jit::JitContext& ctx = inst->ctx_;
    ctx.memBase = inst->memory_.base();
    ctx.memSize = inst->memory_.byteSize();
    ctx.memPages = inst->memory_.pages();
    ctx.epochPtr = &inst->epochStorage_;
    ctx.epochDeadline = UINT64_MAX;
    ctx.globals = inst->globals_.data();
    ctx.tableTypeIds = inst->tableTypeIds_.data();
    ctx.tableEntries = inst->tableEntries_.data();
    ctx.tableSize = inst->tableTypeIds_.size();
    ctx.runtimeData = inst.get();
    ctx.trapFn = &Instance::trapFnImpl;
    ctx.growFn = &Instance::growFnImpl;
    ctx.hostFn = &Instance::hostFnImpl;
    ctx.fillFn = &Instance::fillFnImpl;
    ctx.copyFn = &Instance::copyFnImpl;
    ctx.epochFn = &Instance::epochFnImpl;
    if (tm != nullptr) {
        ctx.codeBase = reinterpret_cast<uint64_t>(
            jit::CodeCache::instance().arenaBase());
        ctx.funcEntries = tm->entries();
        ctx.tierCounters = tm->counters();
        ctx.tierThreshold = tm->threshold();
        ctx.tierFn = &Instance::tierFnImpl;
        ctx.interpFn = &Instance::interpFnImpl;
    } else {
        ctx.codeBase = reinterpret_cast<uint64_t>(
            inst->shared_->code().code.base());
    }

    installSignalHandlers();
    return Result<std::unique_ptr<Instance>>(std::move(inst));
}

Outcome
Instance::call(const std::string& export_name,
               const std::vector<uint64_t>& args)
{
    const auto& exports = shared_->module().exports;
    auto it = exports.find(export_name);
    SFI_CHECK_MSG(it != exports.end(), "no export named '%s'",
                  export_name.c_str());
    return callFunction(it->second, args);
}

Outcome
Instance::callFunction(uint32_t func_idx,
                       const std::vector<uint64_t>& args)
{
    const wasm::Module& m = shared_->module();
    SFI_CHECK_MSG(func_idx >= m.numImports(),
                  "cannot call an import directly");
    const wasm::FuncType& ft = m.typeOfFunc(func_idx);
    SFI_CHECK_MSG(args.size() == ft.params.size(), "call arity mismatch");

    // Marshal into the trampoline layout: ints at [0..5], f64 at [6..9].
    uint64_t slots[10] = {0};
    size_t int_pos = 0, f64_pos = 0;
    for (size_t i = 0; i < args.size(); i++) {
        if (ft.params[i] == wasm::ValType::F64)
            slots[6 + f64_pos++] = args[i];
        else
            slots[int_pos++] = args[i];
    }

    uint32_t d = func_idx - m.numImports();
    const void* fn = shared_->isTiered()
                         ? shared_->tiered()->dispatchAddr(d)
                         : shared_->code().funcAddr(d);
    return invoke(ft, fn, slots, nullptr);
}

// --- the transition in/out (§6.4.1) ---

Instance::EntryScope::EntryScope(Instance* inst) : inst_(inst)
{
    SFI_CHECK_MSG(inst->activeScope_ == nullptr,
                  "nested sandbox entry scope");
    const jit::CompiledModule& code = inst->shared_->code();
    inst->transitions_++;

    // Segment base for Segue strategies.
    if (inst->shared_->config().needsGsBase()) {
        uint64_t base = reinterpret_cast<uint64_t>(inst->memory_.base());
        if (inst->tier_ == TransitionTier::Lean) {
            // Amortized: skip the write on warm re-entry, never
            // restore — the stale base is harmless to the host.
            if (seg::enterGsBase(base))
                inst->gsSwitchesSkipped_++;
            else
                inst->gsSwitches_++;
        } else {
            savedGs_ = seg::getGsBase();
            seg::setGsBase(base);
            restoreGs_ = true;
            inst->gsSwitches_++;
        }
    }
    // MPK color for ColorGuard (always restored: the key must drop).
    if (inst->mpkSystem_ != nullptr) {
        savedPkru_ = inst->mpkSystem_->readPkru();
        inst->mpkSystem_->writePkru(mpk::Pkru::allowOnly(inst->pkey_));
    }
    // Fault ownership. trapJmp points at each call's jump buffer and
    // is armed in invokeInScope; between calls nothing sandboxed runs.
    exec_.memStart = reinterpret_cast<uint64_t>(inst->memory_.base());
    exec_.memEnd = exec_.memStart + inst->memory_.reservedBytes();
    if (inst->shared_->isTiered()) {
        // Tiered slots can point anywhere in the shared code-cache
        // arena (and move there on tier-up), so the whole arena is
        // this instance's code span for fault attribution.
        const jit::CodeCache& cache = jit::CodeCache::instance();
        exec_.codeStart = reinterpret_cast<uint64_t>(cache.arenaBase());
        exec_.codeEnd = exec_.codeStart + cache.arenaSize();
    } else {
        exec_.codeStart = reinterpret_cast<uint64_t>(code.code.base());
        exec_.codeEnd = exec_.codeStart + code.code.size();
    }
    prev_ = setActiveExecution(&exec_);
    inst->activeScope_ = this;
}

Instance::EntryScope::~EntryScope()
{
    inst_->activeScope_ = nullptr;
    setActiveExecution(prev_);
    if (inst_->mpkSystem_ != nullptr)
        inst_->mpkSystem_->writePkru(savedPkru_);
    if (restoreGs_)
        seg::setGsBase(savedGs_);
}

Outcome
Instance::invoke(const wasm::FuncType& ft, const void* fn,
                 const uint64_t* slots, const uint64_t* direct4)
{
    if (activeScope_ != nullptr)
        return invokeInScope(ft, fn, slots, direct4);
    EntryScope scope(this);
    return invokeInScope(ft, fn, slots, direct4);
}

Outcome
Instance::invokeInScope(const wasm::FuncType& ft, const void* fn,
                        const uint64_t* slots, const uint64_t* direct4)
{
    // Refresh the parts of the context that may have changed.
    ctx_.memSize = memory_.byteSize();
    ctx_.memPages = memory_.pages();
    uint64_t rsp_now =
        reinterpret_cast<uint64_t>(__builtin_frame_address(0));
    ctx_.stackLimit = rsp_now > stackBudget_ ? rsp_now - stackBudget_ : 0;

    const jit::CompiledModule& code = shared_->code();

    sigjmp_buf jmp;
    activeScope_->exec_.trapJmp = &jmp;
    Outcome out;
    int trap_code = sigsetjmp(jmp, 0);
    if (trap_code == 0) {
        const jit::TieredModule* tm = shared_->tiered();
        jit::CompiledModule::EntryResult r =
            direct4 != nullptr
                ? (tm != nullptr ? tm->directEntry()
                                 : code.directEntry())(
                      &ctx_, fn, direct4[0], direct4[1], direct4[2],
                      direct4[3])
                : (tm != nullptr ? tm->entry() : code.entry())(&ctx_, fn,
                                                               slots);
        out.trap = TrapKind::None;
        if (!ft.results.empty()) {
            out.value = ft.results[0] == wasm::ValType::F64 ? r.f64Bits
                                                            : r.intBits;
            if (ft.results[0] == wasm::ValType::I32)
                out.value &= 0xffffffffu;
        }
    } else {
        out.trap = static_cast<TrapKind>(trap_code);
    }
    return out;
}

Instance::DirectEntry
Instance::directEntry(const std::string& export_name)
{
    const wasm::Module& m = shared_->module();
    auto it = m.exports.find(export_name);
    SFI_CHECK_MSG(it != m.exports.end(), "no export named '%s'",
                  export_name.c_str());
    uint32_t idx = it->second;
    SFI_CHECK_MSG(idx >= m.numImports(),
                  "cannot call an import directly");
    const wasm::FuncType& ft = m.typeOfFunc(idx);

    DirectEntry de;
    de.inst_ = this;
    de.funcIdx_ = idx;
    // Tiered: cache the dispatch thunk, which survives tier-up; a raw
    // slot value cached here would go stale when the slot is patched.
    de.fn_ = shared_->isTiered()
                 ? shared_->tiered()->dispatchAddr(idx - m.numImports())
                 : shared_->code().funcAddr(idx - m.numImports());
    de.direct_ = ft.params.size() <= 4;
    for (wasm::ValType t : ft.params) {
        if (t == wasm::ValType::F64)
            de.direct_ = false;  // f64 params need the marshal slots
    }
    return de;
}

Outcome
Instance::DirectEntry::call(const std::vector<uint64_t>& args) const
{
    if (!direct_)
        return inst_->callFunction(funcIdx_, args);
    const wasm::FuncType& ft =
        inst_->shared_->module().typeOfFunc(funcIdx_);
    SFI_CHECK_MSG(args.size() == ft.params.size(), "call arity mismatch");
    uint64_t a[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < args.size(); i++)
        a[i] = args[i];
    return inst_->invoke(ft, fn_, nullptr, a);
}

void
Instance::trapFnImpl(void* rd, uint64_t code)
{
    (void)rd;
    ActiveExecution* active = activeExecution();
    SFI_CHECK_MSG(active != nullptr, "trap outside sandbox execution");
    siglongjmp(*active->trapJmp, static_cast<int>(code));
}

const void*
Instance::tierFnImpl(void* rd, uint64_t defined_idx)
{
    auto* inst = static_cast<Instance*>(rd);
    return inst->shared_->tiered()->resolve(
        static_cast<uint32_t>(defined_idx));
}

interp::Instance&
Instance::interpFallback()
{
    if (!interpInst_) {
        std::map<std::string, interp::HostFn> hf;
        for (const auto& [name, fn] : tierHostFns_) {
            HostFn copy = fn;
            hf[name] = [copy](uint64_t* a, size_t n) {
                HostOutcome o = copy(a, n);
                return interp::HostOutcome{o.trap, o.value};
            };
        }
        auto r = interp::Instance::instantiateAttached(
            shared_->module(), std::move(hf), &memory_, &globals_);
        SFI_CHECK_MSG(r.isOk(),
                      "interp fallback instantiation failed: %s",
                      r.message().c_str());
        interpInst_ =
            std::make_unique<interp::Instance>(std::move(*r));
    }
    return *interpInst_;
}

uint64_t
Instance::interpFnImpl(void* rd, uint64_t defined_idx,
                       const uint64_t* args)
{
    auto* inst = static_cast<Instance*>(rd);
    const wasm::Module& m = inst->shared_->module();
    uint32_t fi = m.numImports() + static_cast<uint32_t>(defined_idx);
    const wasm::FuncType& ft = m.typeOfFunc(fi);
    std::vector<uint64_t> a(args, args + ft.params.size());
    interp::Outcome out = inst->interpFallback().callFunction(fi, a);
    // The interpreter shares this instance's memory and may have grown
    // it; refresh the context before compiled code resumes. (A stale-
    // smaller memSize would only make bounds checks stricter, but the
    // JIT'd caller should observe the grow like any other.)
    inst->ctx_.memSize = inst->memory_.byteSize();
    inst->ctx_.memPages = inst->memory_.pages();
    if (out.trap != TrapKind::None)
        trapFnImpl(rd, static_cast<uint64_t>(out.trap));
    return out.value;
}

uint64_t
Instance::growFnImpl(void* rd, uint64_t delta)
{
    auto* inst = static_cast<Instance*>(rd);
    int64_t old = inst->memory_.grow(static_cast<uint32_t>(delta));
    inst->ctx_.memSize = inst->memory_.byteSize();
    inst->ctx_.memPages = inst->memory_.pages();
    return static_cast<uint32_t>(old);
}

uint64_t
Instance::hostFnImpl(void* rd, uint64_t idx, const uint64_t* args,
                     uint64_t n)
{
    auto* inst = static_cast<Instance*>(rd);
    HostOutcome out = inst->hostFns_.at(idx)(
        const_cast<uint64_t*>(args), static_cast<size_t>(n));
    if (out.trap != TrapKind::None)
        trapFnImpl(rd, static_cast<uint64_t>(out.trap));
    return out.value;
}

void
Instance::fillFnImpl(void* rd, uint64_t dst, uint64_t val, uint64_t n)
{
    auto* inst = static_cast<Instance*>(rd);
    dst &= 0xffffffffu;
    val &= 0xffffffffu;
    n &= 0xffffffffu;
    if (n == 0)
        return;
    if (!inst->memory_.inBounds(dst, n))
        trapFnImpl(rd, static_cast<uint64_t>(TrapKind::OutOfBounds));
    std::memset(inst->memory_.base() + dst, static_cast<int>(val & 0xff),
                n);
}

void
Instance::copyFnImpl(void* rd, uint64_t dst, uint64_t src, uint64_t n)
{
    auto* inst = static_cast<Instance*>(rd);
    dst &= 0xffffffffu;
    src &= 0xffffffffu;
    n &= 0xffffffffu;
    if (n == 0)
        return;
    if (!inst->memory_.inBounds(dst, n) || !inst->memory_.inBounds(src, n))
        trapFnImpl(rd, static_cast<uint64_t>(TrapKind::OutOfBounds));
    std::memmove(inst->memory_.base() + dst, inst->memory_.base() + src,
                 n);
}

void
Instance::epochFnImpl(void* rd)
{
    auto* inst = static_cast<Instance*>(rd);
    if (inst->epochCallback_) {
        inst->epochCallback_();
        return;  // resumed
    }
    trapFnImpl(rd, static_cast<uint64_t>(TrapKind::EpochInterrupt));
}

}  // namespace sfi::rt
