/**
 * @file
 * Hardware-fault to Wasm-trap conversion.
 *
 * Guard-region SFI works because out-of-bounds accesses really fault:
 * a SIGSEGV whose fault address falls inside the active instance's
 * reserved memory span (or a SIGFPE/SIGILL whose RIP falls inside its
 * code) is converted into a deterministic trap by longjmp'ing back to
 * the runtime's entry point. Faults that belong to nobody re-raise with
 * default disposition — sfikit never swallows genuine crashes.
 */
#ifndef SFIKIT_RUNTIME_SIGNALS_H_
#define SFIKIT_RUNTIME_SIGNALS_H_

#include <csetjmp>
#include <cstdint>

#include "runtime/trap.h"

namespace sfi::rt {

/** What the signal layer needs to know about the running sandbox. */
struct ActiveExecution
{
    sigjmp_buf* trapJmp = nullptr;
    /** Linear-memory reservation: faults here = OutOfBounds. */
    uint64_t memStart = 0, memEnd = 0;
    /** Code region: SIGFPE here = IntegerOverflow (div pre-checked). */
    uint64_t codeStart = 0, codeEnd = 0;
};

/** Installs the process-wide handlers once (idempotent). */
void installSignalHandlers();

/**
 * Marks @p exec as the sandbox execution owning faults on this thread.
 * Returns the previous value so nested entries can restore it.
 */
ActiveExecution* setActiveExecution(ActiveExecution* exec);

/** The execution currently owning faults (explicit trap exits use its
 *  jump buffer too). */
ActiveExecution* activeExecution();

}  // namespace sfi::rt

#endif  // SFIKIT_RUNTIME_SIGNALS_H_
