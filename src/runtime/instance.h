/**
 * @file
 * The sfikit runtime: instantiation and execution of compiled modules.
 *
 * A SharedModule is compiled once (per SFI strategy) and can back many
 * Instances — the FaaS pattern where thousands of sandboxes share one
 * program (§2). Each Instance owns its linear memory (or a pooling-
 * allocator slot view), globals, and host bindings.
 *
 * Entering a sandbox is a *transition* (§6.4.1): the runtime sets the
 * %gs base for Segue strategies, switches the MPK protection key for
 * ColorGuard, arms trap recovery, and calls the JIT'd entry. Traps —
 * guard-region faults (SIGSEGV), arithmetic faults (SIGFPE), explicit
 * trap stubs — unwind back here and surface as Outcome values.
 */
#ifndef SFIKIT_RUNTIME_INSTANCE_H_
#define SFIKIT_RUNTIME_INSTANCE_H_

#include <csetjmp>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "interp/interp.h"
#include "jit/compiler.h"
#include "jit/context.h"
#include "jit/strategy.h"
#include "jit/tier.h"
#include "mpk/mpk.h"
#include "runtime/memory.h"
#include "runtime/signals.h"
#include "runtime/trap.h"
#include "wasm/module.h"

namespace sfi::rt {

/**
 * How the runtime performs the transition in/out (§6.4.1).
 *
 * Full is the seed behavior: read and save the current %gs base on
 * every entry, restore it on exit. Lean amortizes the segment setup
 * through the per-thread cache in src/seg — a warm re-entry into the
 * same instance skips the WRGSBASE/arch_prctl entirely, and nothing is
 * restored on exit because the host never addresses through %gs. The
 * PKRU switch (ColorGuard) is identical in both tiers: the protection
 * key must be dropped on exit regardless.
 */
enum class TransitionTier : uint8_t {
    Full,
    Lean,
};

/** Result of invoking a sandboxed function. */
struct Outcome
{
    TrapKind trap = TrapKind::None;
    uint64_t value = 0;  ///< result bits (f64 via bit pattern)

    bool ok() const { return trap == TrapKind::None; }
};

/** Host-function outcome (mirrors interp::HostOutcome). */
struct HostOutcome
{
    TrapKind trap = TrapKind::None;
    uint64_t value = 0;
};

using HostFn = std::function<HostOutcome(uint64_t* args, size_t n)>;

/** A module compiled once under one SFI strategy, shareable across
 *  instances. */
class SharedModule
{
  public:
    static Result<std::shared_ptr<SharedModule>>
    compile(wasm::Module module, const jit::CompilerConfig& config);

    /**
     * Tiered variant: compiles *nothing* up front. Functions start on
     * resolver stubs (lazy baseline compilation via the process-wide
     * verified code cache) and tier up through the optimizer once hot;
     * see jit/tier.h. @p config supplies the SFI memory strategy; the
     * optimize flag is managed per tier. Requires CfiMode::None.
     */
    static Result<std::shared_ptr<SharedModule>>
    compileTiered(wasm::Module module, const jit::CompilerConfig& config,
                  const jit::TierOptions& tier_opts = {});

    const wasm::Module& module() const { return module_; }
    const jit::CompiledModule& code() const { return code_; }
    const jit::CompilerConfig& config() const { return code_.config; }

    bool isTiered() const { return tiered_ != nullptr; }
    /** Tiered state, or nullptr for monolithic modules. Shared across
     *  instances; resolve() is thread-safe. */
    jit::TieredModule* tiered() const { return tiered_.get(); }

  private:
    wasm::Module module_;
    jit::CompiledModule code_;  ///< empty (config only) when tiered
    std::unique_ptr<jit::TieredModule> tiered_;
};

/** One executing sandbox. */
class Instance
{
  public:
    struct Options
    {
        Options() {}
        Options(Options&&) = default;
        Options& operator=(Options&&) = default;

        /** Pre-built memory (pooling-allocator slot); empty = owned. */
        LinearMemory memoryView;
        /** Guard bytes for owned memory. */
        uint64_t guardBytes = 4 * kGiB;
        /** Host-stack budget enforced via ctx->stackLimit. */
        uint64_t stackBudget = 4 * kMiB;
        /** ColorGuard: protection-key system + this sandbox's key. */
        mpk::System* mpkSystem = nullptr;
        mpk::Pkey pkey = 0;
        /** Transition tier; Lean (amortized %gs) is the default. */
        TransitionTier transitionTier = TransitionTier::Lean;
    };

    static Result<std::unique_ptr<Instance>>
    create(std::shared_ptr<const SharedModule> shared,
           std::map<std::string, HostFn> host_fns = {},
           Options options = {});

    /** Calls an exported function (a full sandbox transition). */
    Outcome call(const std::string& export_name,
                 const std::vector<uint64_t>& args = {});

    /** Calls any defined function by index. */
    Outcome callFunction(uint32_t func_idx,
                         const std::vector<uint64_t>& args = {});

    /**
     * RAII sandbox-entry scope: performs the transition-in state
     * switches once — %gs base, PKRU, fault ownership — and keeps them
     * active until destruction. Calls made on the instance while the
     * scope is alive skip that per-call setup, which is the batched
     * "enter once, service N requests" tier (§6.4.1). At most one
     * scope per instance; the sandbox must not be left running across
     * host operations that change the memory base.
     */
    class EntryScope
    {
      public:
        ~EntryScope();
        EntryScope(const EntryScope&) = delete;
        EntryScope& operator=(const EntryScope&) = delete;

      private:
        friend class Instance;
        explicit EntryScope(Instance* inst);

        Instance* inst_;
        ActiveExecution exec_{};
        ActiveExecution* prev_ = nullptr;
        mpk::Pkru savedPkru_{};
        uint64_t savedGs_ = 0;
        bool restoreGs_ = false;
    };

    /** Opens an entry scope (see EntryScope). */
    EntryScope enter() { return EntryScope(this); }

    /**
     * A resolved export bound to the typed direct-entry stub: up to
     * four integer parameters travel in registers and the marshal-slot
     * array is never touched (springboard elimination for the known
     * harness signatures). Signatures the stub can't carry — more than
     * four parameters, or any f64 parameter — fall back to the generic
     * trampoline transparently.
     */
    class DirectEntry
    {
      public:
        /** True when calls bypass the marshal-slot trampoline. */
        bool direct() const { return direct_; }

        Outcome call(const std::vector<uint64_t>& args = {}) const;

      private:
        friend class Instance;
        Instance* inst_ = nullptr;
        uint32_t funcIdx_ = 0;
        const void* fn_ = nullptr;
        bool direct_ = false;
    };

    /** Resolves an export to a direct entry (or generic fallback). */
    DirectEntry directEntry(const std::string& export_name);

    LinearMemory& memory() { return memory_; }
    uint64_t global(uint32_t i) const { return globals_.at(i); }
    void setGlobal(uint32_t i, uint64_t v) { globals_.at(i) = v; }

    /**
     * Points epoch interruption at a scheduler-owned counter: when
     * *counter > deadline at a loop back-edge, the epoch callback runs
     * (§6.4). Requires the module to be compiled with epochChecks.
     */
    void
    setEpoch(const uint64_t* counter, uint64_t deadline)
    {
        ctx_.epochPtr = counter;
        ctx_.epochDeadline = deadline;
    }

    void setEpochDeadline(uint64_t d) { ctx_.epochDeadline = d; }

    /**
     * Called when the epoch deadline is exceeded. May return to resume
     * the sandbox (async yield via fibers) — when unset, the sandbox
     * traps with EpochInterrupt.
     */
    void
    setEpochCallback(std::function<void()> cb)
    {
        epochCallback_ = std::move(cb);
    }

    /** Sandbox entries performed: one per entry scope, so N batched
     *  calls inside one scope count as a single transition. */
    uint64_t transitions() const { return transitions_; }
    /** %gs-base writes performed on entry (cold entries). */
    uint64_t gsSwitches() const { return gsSwitches_; }
    /** %gs-base writes skipped by the warm-entry cache (Lean tier). */
    uint64_t gsSwitchesSkipped() const { return gsSwitchesSkipped_; }

    const SharedModule& shared() const { return *shared_; }

  private:
    Instance() = default;

    /**
     * The shared call path: marshals nothing itself — callers pass
     * either the 10-slot generic array (@p slots) or four register
     * args (@p direct4, non-null selects the direct stub). Opens a
     * transient EntryScope unless one is already active.
     */
    Outcome invoke(const wasm::FuncType& ft, const void* fn,
                   const uint64_t* slots, const uint64_t* direct4);
    Outcome invokeInScope(const wasm::FuncType& ft, const void* fn,
                          const uint64_t* slots, const uint64_t* direct4);

    static void trapFnImpl(void* rd, uint64_t code);
    /** ctx->tierFn: lazy compile / hot-count tier-up (jit/tier.h). */
    static const void* tierFnImpl(void* rd, uint64_t defined_idx);
    /** ctx->interpFn: interpreter fallback for functions whose
     *  baseline compile or verification failed (fail closed). */
    static uint64_t interpFnImpl(void* rd, uint64_t defined_idx,
                                 const uint64_t* args);
    /** Lazily builds the attached interpreter (shares this instance's
     *  memory and globals; fuel off — fallback functions run to
     *  completion like compiled ones, epoch checks excepted). */
    interp::Instance& interpFallback();
    static uint64_t growFnImpl(void* rd, uint64_t delta);
    static uint64_t hostFnImpl(void* rd, uint64_t idx,
                               const uint64_t* args, uint64_t n);
    static void fillFnImpl(void* rd, uint64_t dst, uint64_t val,
                           uint64_t n);
    static void copyFnImpl(void* rd, uint64_t dst, uint64_t src,
                           uint64_t n);
    static void epochFnImpl(void* rd);

    friend struct SignalAccess;

    std::shared_ptr<const SharedModule> shared_;
    jit::JitContext ctx_{};
    LinearMemory memory_;
    std::vector<uint64_t> globals_;
    std::vector<HostFn> hostFns_;
    /** Import map kept for the lazy interp fallback (tiered only). */
    std::map<std::string, HostFn> tierHostFns_;
    std::unique_ptr<interp::Instance> interpInst_;
    std::vector<uint64_t> tableTypeIds_;
    std::vector<uint64_t> tableEntries_;
    std::function<void()> epochCallback_;
    uint64_t epochStorage_ = 0;  ///< default epoch counter target
    uint64_t stackBudget_ = 4 * kMiB;
    mpk::System* mpkSystem_ = nullptr;
    mpk::Pkey pkey_ = 0;
    TransitionTier tier_ = TransitionTier::Lean;
    EntryScope* activeScope_ = nullptr;
    uint64_t transitions_ = 0;
    uint64_t gsSwitches_ = 0;
    uint64_t gsSwitchesSkipped_ = 0;
};

}  // namespace sfi::rt

#endif  // SFIKIT_RUNTIME_INSTANCE_H_
