/**
 * @file
 * Wasm-style traps. SFI turns every safety violation into a deterministic
 * trap (§2) — out-of-bounds accesses hit guard regions or bounds checks,
 * arithmetic faults come from the hardware, epoch interruption preempts
 * runaway code.
 */
#ifndef SFIKIT_RUNTIME_TRAP_H_
#define SFIKIT_RUNTIME_TRAP_H_

#include <cstdint>

namespace sfi::rt {

/** Why execution stopped abnormally. */
enum class TrapKind : uint8_t {
    None = 0,
    OutOfBounds,       ///< linear-memory access outside bounds
    DivByZero,
    IntegerOverflow,   ///< INT_MIN / -1 and out-of-range float->int
    Unreachable,
    StackExhausted,
    IndirectCallOutOfRange,
    IndirectCallTypeMismatch,
    EpochInterrupt,    ///< preempted by epoch_interruption (§6.4)
    HostError,
    MpkViolation,      ///< emulated-MPK color violation (ColorGuard)
};

const char* name(TrapKind k);

}  // namespace sfi::rt

#endif  // SFIKIT_RUNTIME_TRAP_H_
