#include "runtime/trap.h"

namespace sfi::rt {

const char*
name(TrapKind k)
{
    switch (k) {
      case TrapKind::None: return "none";
      case TrapKind::OutOfBounds: return "out of bounds memory access";
      case TrapKind::DivByZero: return "integer divide by zero";
      case TrapKind::IntegerOverflow: return "integer overflow";
      case TrapKind::Unreachable: return "unreachable executed";
      case TrapKind::StackExhausted: return "call stack exhausted";
      case TrapKind::IndirectCallOutOfRange:
        return "undefined element in table";
      case TrapKind::IndirectCallTypeMismatch:
        return "indirect call type mismatch";
      case TrapKind::EpochInterrupt: return "epoch interrupt";
      case TrapKind::HostError: return "host error";
      case TrapKind::MpkViolation: return "MPK protection violation";
    }
    return "?";
}

}  // namespace sfi::rt
