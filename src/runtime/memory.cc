#include "runtime/memory.h"

#include <algorithm>

namespace sfi::rt {

Result<LinearMemory>
LinearMemory::create(const Config& config)
{
    if (config.maxPages < config.minPages)
        return Result<LinearMemory>::error("memory max < min");
    if (uint64_t(config.maxPages) * kWasmPageSize > 4 * kGiB)
        return Result<LinearMemory>::error("memory exceeds 4 GiB");

    uint64_t reserve_bytes =
        config.reserveFull
            ? 4 * kGiB + config.guardBytes
            : uint64_t(config.maxPages) * kWasmPageSize + config.guardBytes;
    // Memory-less modules still get one inaccessible page so base() is a
    // real address.
    if (reserve_bytes == 0)
        reserve_bytes = kOsPageSize;
    auto res = Reservation::reserve(reserve_bytes);
    if (!res)
        return Result<LinearMemory>::error(res.message());

    uint64_t commit = uint64_t(config.minPages) * kWasmPageSize;
    if (commit > 0) {
        if (auto st = res->protect(0, commit, PageAccess::ReadWrite); !st)
            return Result<LinearMemory>::error(st.message());
    }

    LinearMemory mem;
    mem.owned_ = std::move(*res);
    mem.base_ = mem.owned_.base();
    mem.pages_ = config.minPages;
    mem.maxPages_ = config.maxPages;
    mem.reservedBytes_ = mem.owned_.size();
    mem.highWaterBytes_ = mem.byteSize();
    mem.ownsMapping_ = true;
    return mem;
}

LinearMemory
LinearMemory::view(uint8_t* base, uint32_t pages, uint32_t max_pages,
                   uint64_t reserved_bytes)
{
    LinearMemory mem;
    mem.base_ = base;
    mem.pages_ = pages;
    mem.maxPages_ = max_pages;
    mem.reservedBytes_ =
        reserved_bytes ? reserved_bytes
                       : uint64_t(max_pages) * kWasmPageSize;
    mem.highWaterBytes_ = mem.byteSize();
    mem.ownsMapping_ = false;
    return mem;
}

uint64_t
LinearMemory::touchedBytes() const
{
    if (base_ == nullptr || highWaterBytes_ == 0)
        return 0;
    auto probed = touchedHighWaterBytes(base_, highWaterBytes_);
    if (!probed) {
        // No trustworthy touched-span information (e.g. pagemap
        // masked while swap is configured): report the conservative
        // grow high-water rather than risk leaking a previous
        // occupant's bytes to the slot's next tenant.
        return highWaterBytes_;
    }
    uint64_t touched = std::max(*probed, storeHighWaterBytes_);
    return std::min(touched, highWaterBytes_);
}

int64_t
LinearMemory::grow(uint32_t delta_pages)
{
    uint64_t new_pages = uint64_t(pages_) + delta_pages;
    if (new_pages > maxPages_)
        return -1;
    if (ownsMapping_ && delta_pages > 0) {
        Status st =
            owned_.protect(uint64_t(pages_) * kWasmPageSize,
                           uint64_t(delta_pages) * kWasmPageSize,
                           PageAccess::ReadWrite);
        if (!st)
            return -1;
    }
    uint32_t old = pages_;
    pages_ = static_cast<uint32_t>(new_pages);
    highWaterBytes_ = std::max(highWaterBytes_, byteSize());
    return old;
}

}  // namespace sfi::rt
