#include "wasm/validator.h"

#include <cstdio>
#include <string>
#include <vector>

#include "base/units.h"

namespace sfi::wasm {

namespace {

/** Per-function validation context. */
class FuncValidator
{
  public:
    FuncValidator(const Module& module, const Function& fn, uint32_t index)
        : module_(module), fn_(fn), index_(index)
    {
    }

    Status
    run()
    {
        const FuncType& ft = module_.types.at(fn_.typeIdx);
        locals_ = ft.params;
        locals_.insert(locals_.end(), fn_.locals.begin(), fn_.locals.end());
        frames_.push_back({FrameKind::Func, 0, false});

        for (pc_ = 0; pc_ < fn_.body.size(); pc_++) {
            Status st = check(fn_.body[pc_]);
            if (!st)
                return fail(st.message());
        }
        if (!frames_.empty())
            return fail("function body not terminated by matching End");
        return Status::ok();
    }

  private:
    enum class FrameKind { Func, Block, Loop, If, Else };

    struct Frame
    {
        FrameKind kind;
        size_t entryHeight;
        bool unreachable;
    };

    Status
    fail(const std::string& why) const
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, " [func %u", index_);
        std::string where = buf;
        if (!fn_.name.empty())
            where += " '" + fn_.name + "'";
        std::snprintf(buf, sizeof buf, " at instr %zu", pc_);
        where += buf;
        if (pc_ < fn_.body.size()) {
            where += " (";
            where += name(fn_.body[pc_].op);
            where += ")";
        }
        where += "]";
        return Status::error(why + where);
    }

    Status
    pop(ValType want)
    {
        if (stack_.empty())
            return Status::error("value stack underflow");
        ValType got = stack_.back();
        stack_.pop_back();
        if (got != want) {
            return Status::error(std::string("type mismatch: want ") +
                                 name(want) + ", got " + name(got));
        }
        return Status::ok();
    }

    Status
    popAny(ValType* out)
    {
        if (stack_.empty())
            return Status::error("value stack underflow");
        *out = stack_.back();
        stack_.pop_back();
        return Status::ok();
    }

    void push(ValType t) { stack_.push_back(t); }

    Status
    binary(ValType in, ValType out)
    {
        if (auto st = pop(in); !st)
            return st;
        if (auto st = pop(in); !st)
            return st;
        push(out);
        return Status::ok();
    }

    Status
    unary(ValType in, ValType out)
    {
        if (auto st = pop(in); !st)
            return st;
        push(out);
        return Status::ok();
    }

    /** Loads pop an i32 address and push the loaded type. */
    Status
    checkLoad(ValType out, uint64_t offset, uint32_t access_bytes)
    {
        if (offset + access_bytes > kGiB) {
            // Static offsets must stay within what the guard region
            // demonstrably covers (runtime reserves 4 GiB + guards; we
            // conservatively cap static offsets at 1 GiB).
            return Status::error("static memory offset too large");
        }
        if (auto st = pop(ValType::I32); !st)
            return st;
        push(out);
        return Status::ok();
    }

    Status
    checkStore(ValType in, uint64_t offset, uint32_t access_bytes)
    {
        if (offset + access_bytes > kGiB)
            return Status::error("static memory offset too large");
        if (auto st = pop(in); !st)
            return st;
        return pop(ValType::I32);
    }

    /** Branch target frame for depth @p d (0 = innermost). */
    Status
    branchTarget(uint32_t d, Frame** out)
    {
        if (d >= frames_.size())
            return Status::error("branch depth out of range");
        *out = &frames_[frames_.size() - 1 - d];
        return Status::ok();
    }

    /**
     * Flat-stack discipline: a branch (or fallthrough into End/Else) must
     * see exactly the height the target frame started with; for the
     * function frame, exactly the result values.
     */
    Status
    checkBranchShape(const Frame& target)
    {
        if (target.kind == FrameKind::Func) {
            const FuncType& ft = module_.types.at(fn_.typeIdx);
            if (stack_.size() != ft.results.size())
                return Status::error("return: stack height != result arity");
            for (size_t i = 0; i < ft.results.size(); i++) {
                if (stack_[i] != ft.results[i])
                    return Status::error("return: result type mismatch");
            }
            return Status::ok();
        }
        if (stack_.size() != target.entryHeight) {
            return Status::error(
                "flat-stack discipline: branch with non-empty block stack");
        }
        return Status::ok();
    }

    void
    markUnreachable()
    {
        frames_.back().unreachable = true;
    }

    Status
    check(const Instr& in)
    {
        // In unreachable code we only accept the structural closers —
        // sfikit's builders never emit other dead code.
        if (!frames_.empty() && frames_.back().unreachable &&
            in.op != Op::End && in.op != Op::Else) {
            return Status::error(
                "dead code after unconditional transfer (subset rule)");
        }

        switch (in.op) {
          case Op::Unreachable:
            markUnreachable();
            return Status::ok();
          case Op::Nop:
            return Status::ok();

          case Op::Block:
            frames_.push_back({FrameKind::Block, stack_.size(), false});
            return Status::ok();
          case Op::Loop:
            frames_.push_back({FrameKind::Loop, stack_.size(), false});
            return Status::ok();
          case Op::If:
            if (auto st = pop(ValType::I32); !st)
                return st;
            frames_.push_back({FrameKind::If, stack_.size(), false});
            return Status::ok();
          case Op::Else: {
            if (frames_.empty() || frames_.back().kind != FrameKind::If)
                return Status::error("Else without If");
            Frame f = frames_.back();
            if (!f.unreachable && stack_.size() != f.entryHeight)
                return Status::error("If arm left values on the stack");
            stack_.resize(f.entryHeight);
            frames_.back() = {FrameKind::Else, f.entryHeight, false};
            return Status::ok();
          }
          case Op::End: {
            if (frames_.empty())
                return Status::error("End without open frame");
            Frame f = frames_.back();
            if (f.kind == FrameKind::Func) {
                if (!f.unreachable) {
                    const FuncType& ft = module_.types.at(fn_.typeIdx);
                    if (auto st = checkBranchShape(f); !st)
                        return st;
                    (void)ft;
                }
                frames_.pop_back();
                if (pc_ + 1 != fn_.body.size())
                    return Status::error("code after function End");
                return Status::ok();
            }
            if (!f.unreachable && stack_.size() != f.entryHeight)
                return Status::error("block left values on the stack");
            stack_.resize(f.entryHeight);
            frames_.pop_back();
            return Status::ok();
          }

          case Op::Br: {
            Frame* target;
            if (auto st = branchTarget(in.a, &target); !st)
                return st;
            if (auto st = checkBranchShape(*target); !st)
                return st;
            markUnreachable();
            return Status::ok();
          }
          case Op::BrIf: {
            if (auto st = pop(ValType::I32); !st)
                return st;
            Frame* target;
            if (auto st = branchTarget(in.a, &target); !st)
                return st;
            return checkBranchShape(*target);
          }
          case Op::BrTable: {
            if (in.a >= fn_.brTables.size())
                return Status::error("br_table index out of range");
            if (auto st = pop(ValType::I32); !st)
                return st;
            const auto& depths = fn_.brTables[in.a];
            if (depths.empty())
                return Status::error("br_table needs a default target");
            for (uint32_t d : depths) {
                Frame* target;
                if (auto st = branchTarget(d, &target); !st)
                    return st;
                if (auto st = checkBranchShape(*target); !st)
                    return st;
            }
            markUnreachable();
            return Status::ok();
          }
          case Op::Return: {
            if (auto st = checkBranchShape(frames_.front()); !st)
                return st;
            markUnreachable();
            return Status::ok();
          }

          case Op::Call: {
            if (in.a >= module_.numFuncs())
                return Status::error("call: function index out of range");
            const FuncType& ft = module_.typeOfFunc(in.a);
            for (auto it = ft.params.rbegin(); it != ft.params.rend();
                 ++it) {
                if (auto st = pop(*it); !st)
                    return st;
            }
            for (ValType r : ft.results)
                push(r);
            return Status::ok();
          }
          case Op::CallIndirect: {
            if (in.a >= module_.types.size())
                return Status::error("call_indirect: bad type index");
            if (module_.table.empty())
                return Status::error("call_indirect without a table");
            if (auto st = pop(ValType::I32); !st)  // table index
                return st;
            const FuncType& ft = module_.types[in.a];
            for (auto it = ft.params.rbegin(); it != ft.params.rend();
                 ++it) {
                if (auto st = pop(*it); !st)
                    return st;
            }
            for (ValType r : ft.results)
                push(r);
            return Status::ok();
          }

          case Op::Drop: {
            ValType t;
            return popAny(&t);
          }
          case Op::Select: {
            if (auto st = pop(ValType::I32); !st)
                return st;
            ValType b, a;
            if (auto st = popAny(&b); !st)
                return st;
            if (auto st = popAny(&a); !st)
                return st;
            if (a != b)
                return Status::error("select arms have different types");
            push(a);
            return Status::ok();
          }

          case Op::LocalGet:
            if (in.a >= locals_.size())
                return Status::error("local index out of range");
            push(locals_[in.a]);
            return Status::ok();
          case Op::LocalSet:
            if (in.a >= locals_.size())
                return Status::error("local index out of range");
            return pop(locals_[in.a]);
          case Op::LocalTee: {
            if (in.a >= locals_.size())
                return Status::error("local index out of range");
            if (auto st = pop(locals_[in.a]); !st)
                return st;
            push(locals_[in.a]);
            return Status::ok();
          }
          case Op::GlobalGet:
            if (in.a >= module_.globals.size())
                return Status::error("global index out of range");
            push(module_.globals[in.a].type);
            return Status::ok();
          case Op::GlobalSet:
            if (in.a >= module_.globals.size())
                return Status::error("global index out of range");
            if (!module_.globals[in.a].isMutable)
                return Status::error("assignment to immutable global");
            return pop(module_.globals[in.a].type);

          // Loads.
          case Op::I32Load: return checkLoad(ValType::I32, in.imm, 4);
          case Op::I64Load: return checkLoad(ValType::I64, in.imm, 8);
          case Op::F64Load: return checkLoad(ValType::F64, in.imm, 8);
          case Op::I32Load8S:
          case Op::I32Load8U: return checkLoad(ValType::I32, in.imm, 1);
          case Op::I32Load16S:
          case Op::I32Load16U: return checkLoad(ValType::I32, in.imm, 2);
          case Op::I64Load32S:
          case Op::I64Load32U: return checkLoad(ValType::I64, in.imm, 4);

          // Stores.
          case Op::I32Store: return checkStore(ValType::I32, in.imm, 4);
          case Op::I64Store: return checkStore(ValType::I64, in.imm, 8);
          case Op::F64Store: return checkStore(ValType::F64, in.imm, 8);
          case Op::I32Store8: return checkStore(ValType::I32, in.imm, 1);
          case Op::I32Store16: return checkStore(ValType::I32, in.imm, 2);

          case Op::MemorySize:
            push(ValType::I32);
            return Status::ok();
          case Op::MemoryGrow:
            return unary(ValType::I32, ValType::I32);
          case Op::MemoryFill:
          case Op::MemoryCopy: {
            // (dst: i32, val/src: i32, n: i32) -> ()
            for (int i = 0; i < 3; i++) {
                if (auto st = pop(ValType::I32); !st)
                    return st;
            }
            return Status::ok();
          }

          case Op::I32Const:
            push(ValType::I32);
            return Status::ok();
          case Op::I64Const:
            push(ValType::I64);
            return Status::ok();
          case Op::F64Const:
            push(ValType::F64);
            return Status::ok();

          case Op::I32Eqz: return unary(ValType::I32, ValType::I32);
          case Op::I32Eq: case Op::I32Ne: case Op::I32LtS: case Op::I32LtU:
          case Op::I32GtS: case Op::I32GtU: case Op::I32LeS:
          case Op::I32LeU: case Op::I32GeS: case Op::I32GeU:
            return binary(ValType::I32, ValType::I32);
          case Op::I32Add: case Op::I32Sub: case Op::I32Mul:
          case Op::I32DivS: case Op::I32DivU: case Op::I32RemS:
          case Op::I32RemU: case Op::I32And: case Op::I32Or:
          case Op::I32Xor: case Op::I32Shl: case Op::I32ShrS:
          case Op::I32ShrU: case Op::I32Rotl: case Op::I32Rotr:
            return binary(ValType::I32, ValType::I32);
          case Op::I32Popcnt: return unary(ValType::I32, ValType::I32);

          case Op::I64Eqz: return unary(ValType::I64, ValType::I32);
          case Op::I64Eq: case Op::I64Ne: case Op::I64LtS: case Op::I64LtU:
          case Op::I64GtS: case Op::I64GtU: case Op::I64LeS:
          case Op::I64LeU: case Op::I64GeS: case Op::I64GeU:
            return binary(ValType::I64, ValType::I32);
          case Op::I64Add: case Op::I64Sub: case Op::I64Mul:
          case Op::I64DivS: case Op::I64DivU: case Op::I64RemS:
          case Op::I64RemU: case Op::I64And: case Op::I64Or:
          case Op::I64Xor: case Op::I64Shl: case Op::I64ShrS:
          case Op::I64ShrU: case Op::I64Rotl: case Op::I64Rotr:
            return binary(ValType::I64, ValType::I64);
          case Op::I64Popcnt: return unary(ValType::I64, ValType::I64);

          case Op::I32WrapI64: return unary(ValType::I64, ValType::I32);
          case Op::I64ExtendI32S:
          case Op::I64ExtendI32U:
            return unary(ValType::I32, ValType::I64);

          case Op::F64Eq: case Op::F64Ne: case Op::F64Lt: case Op::F64Gt:
          case Op::F64Le: case Op::F64Ge:
            return binary(ValType::F64, ValType::I32);
          case Op::F64Add: case Op::F64Sub: case Op::F64Mul:
          case Op::F64Div: case Op::F64Min: case Op::F64Max:
            return binary(ValType::F64, ValType::F64);
          case Op::F64Sqrt: case Op::F64Neg: case Op::F64Abs:
            return unary(ValType::F64, ValType::F64);
          case Op::F64ConvertI32S:
          case Op::F64ConvertI32U:
            return unary(ValType::I32, ValType::F64);
          case Op::F64ConvertI64S:
            return unary(ValType::I64, ValType::F64);
          case Op::I32TruncF64S:
            return unary(ValType::F64, ValType::I32);
          case Op::I64TruncF64S:
            return unary(ValType::F64, ValType::I64);
          case Op::F64ReinterpretI64:
            return unary(ValType::I64, ValType::F64);
          case Op::I64ReinterpretF64:
            return unary(ValType::F64, ValType::I64);
        }
        return Status::error("unknown opcode");
    }

    const Module& module_;
    const Function& fn_;
    uint32_t index_;
    size_t pc_ = 0;
    std::vector<ValType> locals_;
    std::vector<ValType> stack_;
    std::vector<Frame> frames_;
};

}  // namespace

Status
validate(const Module& module)
{
    // Types.
    for (const FuncType& ft : module.types) {
        if (ft.results.size() > 1)
            return Status::error("multi-value results unsupported");
        if (ft.params.size() > kMaxParams)
            return Status::error("too many parameters (max 6)");
        size_t f64s = 0;
        for (ValType p : ft.params)
            f64s += (p == ValType::F64);
        if (f64s > kMaxF64Params)
            return Status::error("too many f64 parameters (max 4)");
    }
    for (const Import& imp : module.imports) {
        if (imp.typeIdx >= module.types.size())
            return Status::error("import type index out of range");
    }
    for (const Function& fn : module.functions) {
        if (fn.typeIdx >= module.types.size())
            return Status::error("function type index out of range");
    }
    // Memory limits.
    if (module.memory.maxPages < module.memory.minPages)
        return Status::error("memory max < min");
    if (module.memory.maxPages > 65536)
        return Status::error("memory max exceeds 4 GiB");
    // Data segments must fit the initial memory.
    for (const DataSegment& seg : module.data) {
        uint64_t end = static_cast<uint64_t>(seg.offset) + seg.bytes.size();
        if (end > static_cast<uint64_t>(module.memory.minPages) *
                      kWasmPageSize) {
            return Status::error("data segment out of initial memory");
        }
    }
    // Table entries must reference real functions.
    for (uint32_t fi : module.table) {
        if (fi >= module.numFuncs())
            return Status::error("table entry out of range");
    }
    // Exports.
    for (const auto& [name, fi] : module.exports) {
        if (fi >= module.numFuncs())
            return Status::error("export '" + name + "' out of range");
    }
    // Bodies.
    for (uint32_t i = 0; i < module.functions.size(); i++) {
        FuncValidator fv(module, module.functions[i],
                         module.numImports() + i);
        if (auto st = fv.run(); !st)
            return st;
    }
    return Status::ok();
}

}  // namespace sfi::wasm
