/**
 * @file
 * Module validation.
 *
 * Validation is the first line of the SFI security argument: the JIT and
 * interpreter assume type-correct, discipline-respecting input, so every
 * module must pass here before it may be compiled or run. The checks
 * cover standard Wasm typing plus sfikit's subset restrictions
 * (module.h).
 */
#ifndef SFIKIT_WASM_VALIDATOR_H_
#define SFIKIT_WASM_VALIDATOR_H_

#include "base/result.h"
#include "wasm/module.h"

namespace sfi::wasm {

/** Validates @p module; the error message names the offending function
 *  and instruction on failure. */
Status validate(const Module& module);

}  // namespace sfi::wasm

#endif  // SFIKIT_WASM_VALIDATOR_H_
