/**
 * @file
 * The Wasm-subset intermediate representation sfikit's SFI toolchain
 * compiles.
 *
 * This models the part of WebAssembly the paper's evaluation exercises:
 * a 32-bit linear memory addressed by (u32 index + static offset), typed
 * locals/globals, structured control flow, direct/indirect/host calls,
 * and bulk memory operations (whose vectorized implementations are the
 * source of the WAMR/Segue interaction in §4.2).
 *
 * Deliberate subset restrictions (documented in DESIGN.md):
 *  - value types are i32, i64, f64 (no f32, no SIMD values);
 *  - blocks/loops/ifs have void type — values cross control flow through
 *    locals or `select` ("flat-stack discipline"), which lets the
 *    baseline JIT avoid merge-point reconciliation entirely;
 *  - ≤ 6 parameters (≤ 4 of them f64) and ≤ 1 result per function.
 *
 * The validator (validator.h) enforces all of these, so the JIT and the
 * interpreter may assume them.
 */
#ifndef SFIKIT_WASM_MODULE_H_
#define SFIKIT_WASM_MODULE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sfi::wasm {

/** Value types. */
enum class ValType : uint8_t { I32, I64, F64 };

const char* name(ValType t);

/** Every opcode in the subset. */
enum class Op : uint8_t {
    // Control.
    Unreachable, Nop, Block, Loop, If, Else, End,
    Br, BrIf, BrTable, Return, Call, CallIndirect,
    Drop, Select,
    // Variables.
    LocalGet, LocalSet, LocalTee, GlobalGet, GlobalSet,
    // Memory.
    I32Load, I64Load, F64Load,
    I32Load8S, I32Load8U, I32Load16S, I32Load16U,
    I64Load32S, I64Load32U,
    I32Store, I64Store, F64Store, I32Store8, I32Store16,
    MemorySize, MemoryGrow, MemoryFill, MemoryCopy,
    // Constants.
    I32Const, I64Const, F64Const,
    // i32 compare/arithmetic.
    I32Eqz, I32Eq, I32Ne, I32LtS, I32LtU, I32GtS, I32GtU,
    I32LeS, I32LeU, I32GeS, I32GeU,
    I32Add, I32Sub, I32Mul, I32DivS, I32DivU, I32RemS, I32RemU,
    I32And, I32Or, I32Xor, I32Shl, I32ShrS, I32ShrU, I32Rotl, I32Rotr,
    I32Popcnt,
    // i64 compare/arithmetic.
    I64Eqz, I64Eq, I64Ne, I64LtS, I64LtU, I64GtS, I64GtU,
    I64LeS, I64LeU, I64GeS, I64GeU,
    I64Add, I64Sub, I64Mul, I64DivS, I64DivU, I64RemS, I64RemU,
    I64And, I64Or, I64Xor, I64Shl, I64ShrS, I64ShrU, I64Rotl, I64Rotr,
    I64Popcnt,
    // Conversions.
    I32WrapI64, I64ExtendI32S, I64ExtendI32U,
    // f64.
    F64Eq, F64Ne, F64Lt, F64Gt, F64Le, F64Ge,
    F64Add, F64Sub, F64Mul, F64Div, F64Sqrt, F64Min, F64Max,
    F64Neg, F64Abs,
    F64ConvertI32S, F64ConvertI32U, F64ConvertI64S,
    I32TruncF64S, I64TruncF64S,
    F64ReinterpretI64, I64ReinterpretF64,
};

const char* name(Op op);

/**
 * Per-instruction optimizer facts (Instr::flags). Produced by
 * jit/optimizer.h; consumed by the JIT backend. Plain data so the IR
 * stays a dumb struct.
 */
enum InstrFlag : uint8_t {
    /**
     * On a load/store: the bounds check for this access is provably
     * redundant (dominated by an earlier check with >= reach, or the
     * address is statically below the initial memory size) and the
     * backend may skip emitting it. The static verifier re-proves the
     * claim on the machine code (verify/checker.h).
     */
    kBoundsElided = 1u << 0,
};

/**
 * One instruction. Field use by opcode:
 *  - a: local/global/function index, label depth, br_table index,
 *       call_indirect type index;
 *  - imm: constant payload (f64 via bit pattern) or static memory offset.
 *  - flags: optimizer-derived facts (InstrFlag bits); 0 from the parser
 *    and all builders, only ever set by jit/optimizer.h.
 */
struct Instr
{
    Op op;
    uint32_t a = 0;
    uint64_t imm = 0;
    uint8_t flags = 0;
};

/** A function signature. */
struct FuncType
{
    std::vector<ValType> params;
    std::vector<ValType> results;  ///< 0 or 1 entries.

    bool operator==(const FuncType&) const = default;
};

/** An imported (host) function slot. */
struct Import
{
    std::string name;
    uint32_t typeIdx;
};

/**
 * A function body. Function index space: imports first ([0, numImports)),
 * then module functions.
 */
struct Function
{
    uint32_t typeIdx = 0;
    std::vector<ValType> locals;  ///< excluding params
    std::vector<Instr> body;
    std::string name;  ///< for diagnostics and size reporting

    /** br_table depth lists, referenced by Instr::a. */
    std::vector<std::vector<uint32_t>> brTables;
};

/** A global variable. */
struct Global
{
    ValType type = ValType::I32;
    bool isMutable = true;
    uint64_t init = 0;  ///< f64 via bit pattern
};

/** Linear-memory limits, in Wasm pages (64 KiB). */
struct MemoryDecl
{
    uint32_t minPages = 0;
    uint32_t maxPages = 0;
};

/** Active data segment copied into memory at instantiation. */
struct DataSegment
{
    uint32_t offset = 0;
    std::vector<uint8_t> bytes;
};

/** A complete module. */
struct Module
{
    std::vector<FuncType> types;
    std::vector<Import> imports;
    std::vector<Function> functions;
    std::vector<Global> globals;
    MemoryDecl memory;
    std::vector<DataSegment> data;
    /** Function table for call_indirect (entries are function indices). */
    std::vector<uint32_t> table;
    /** Exported function name -> function index. */
    std::map<std::string, uint32_t> exports;

    uint32_t numImports() const
    {
        return static_cast<uint32_t>(imports.size());
    }

    uint32_t
    numFuncs() const
    {
        return numImports() + static_cast<uint32_t>(functions.size());
    }

    /** Signature of function index @p fi (import or defined). */
    const FuncType&
    typeOfFunc(uint32_t fi) const
    {
        return types.at(typeIndexOfFunc(fi));
    }

    /** Type index of function index @p fi. */
    uint32_t
    typeIndexOfFunc(uint32_t fi) const
    {
        if (fi < numImports())
            return imports.at(fi).typeIdx;
        return functions.at(fi - numImports()).typeIdx;
    }

    /** Interns @p ft into the type list, returning its index. */
    uint32_t
    internType(const FuncType& ft)
    {
        for (uint32_t i = 0; i < types.size(); i++) {
            if (types[i] == ft)
                return i;
        }
        types.push_back(ft);
        return static_cast<uint32_t>(types.size() - 1);
    }
};

/** Calling-convention caps enforced by the validator. */
inline constexpr size_t kMaxParams = 6;
inline constexpr size_t kMaxF64Params = 4;

}  // namespace sfi::wasm

#endif  // SFIKIT_WASM_MODULE_H_
