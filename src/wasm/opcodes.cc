#include "wasm/module.h"

namespace sfi::wasm {

const char*
name(ValType t)
{
    switch (t) {
      case ValType::I32: return "i32";
      case ValType::I64: return "i64";
      case ValType::F64: return "f64";
    }
    return "?";
}

const char*
name(Op op)
{
    switch (op) {
#define SFIKIT_OP(x)                                                   \
    case Op::x:                                                        \
        return #x;
      SFIKIT_OP(Unreachable) SFIKIT_OP(Nop) SFIKIT_OP(Block)
      SFIKIT_OP(Loop) SFIKIT_OP(If) SFIKIT_OP(Else) SFIKIT_OP(End)
      SFIKIT_OP(Br) SFIKIT_OP(BrIf) SFIKIT_OP(BrTable) SFIKIT_OP(Return)
      SFIKIT_OP(Call) SFIKIT_OP(CallIndirect) SFIKIT_OP(Drop)
      SFIKIT_OP(Select)
      SFIKIT_OP(LocalGet) SFIKIT_OP(LocalSet) SFIKIT_OP(LocalTee)
      SFIKIT_OP(GlobalGet) SFIKIT_OP(GlobalSet)
      SFIKIT_OP(I32Load) SFIKIT_OP(I64Load) SFIKIT_OP(F64Load)
      SFIKIT_OP(I32Load8S) SFIKIT_OP(I32Load8U) SFIKIT_OP(I32Load16S)
      SFIKIT_OP(I32Load16U) SFIKIT_OP(I64Load32S) SFIKIT_OP(I64Load32U)
      SFIKIT_OP(I32Store) SFIKIT_OP(I64Store) SFIKIT_OP(F64Store)
      SFIKIT_OP(I32Store8) SFIKIT_OP(I32Store16)
      SFIKIT_OP(MemorySize) SFIKIT_OP(MemoryGrow) SFIKIT_OP(MemoryFill)
      SFIKIT_OP(MemoryCopy)
      SFIKIT_OP(I32Const) SFIKIT_OP(I64Const) SFIKIT_OP(F64Const)
      SFIKIT_OP(I32Eqz) SFIKIT_OP(I32Eq) SFIKIT_OP(I32Ne)
      SFIKIT_OP(I32LtS) SFIKIT_OP(I32LtU) SFIKIT_OP(I32GtS)
      SFIKIT_OP(I32GtU) SFIKIT_OP(I32LeS) SFIKIT_OP(I32LeU)
      SFIKIT_OP(I32GeS) SFIKIT_OP(I32GeU)
      SFIKIT_OP(I32Add) SFIKIT_OP(I32Sub) SFIKIT_OP(I32Mul)
      SFIKIT_OP(I32DivS) SFIKIT_OP(I32DivU) SFIKIT_OP(I32RemS)
      SFIKIT_OP(I32RemU) SFIKIT_OP(I32And) SFIKIT_OP(I32Or)
      SFIKIT_OP(I32Xor) SFIKIT_OP(I32Shl) SFIKIT_OP(I32ShrS)
      SFIKIT_OP(I32ShrU) SFIKIT_OP(I32Rotl) SFIKIT_OP(I32Rotr)
      SFIKIT_OP(I32Popcnt)
      SFIKIT_OP(I64Eqz) SFIKIT_OP(I64Eq) SFIKIT_OP(I64Ne)
      SFIKIT_OP(I64LtS) SFIKIT_OP(I64LtU) SFIKIT_OP(I64GtS)
      SFIKIT_OP(I64GtU) SFIKIT_OP(I64LeS) SFIKIT_OP(I64LeU)
      SFIKIT_OP(I64GeS) SFIKIT_OP(I64GeU)
      SFIKIT_OP(I64Add) SFIKIT_OP(I64Sub) SFIKIT_OP(I64Mul)
      SFIKIT_OP(I64DivS) SFIKIT_OP(I64DivU) SFIKIT_OP(I64RemS)
      SFIKIT_OP(I64RemU) SFIKIT_OP(I64And) SFIKIT_OP(I64Or)
      SFIKIT_OP(I64Xor) SFIKIT_OP(I64Shl) SFIKIT_OP(I64ShrS)
      SFIKIT_OP(I64ShrU) SFIKIT_OP(I64Rotl) SFIKIT_OP(I64Rotr)
      SFIKIT_OP(I64Popcnt)
      SFIKIT_OP(I32WrapI64) SFIKIT_OP(I64ExtendI32S)
      SFIKIT_OP(I64ExtendI32U)
      SFIKIT_OP(F64Eq) SFIKIT_OP(F64Ne) SFIKIT_OP(F64Lt) SFIKIT_OP(F64Gt)
      SFIKIT_OP(F64Le) SFIKIT_OP(F64Ge)
      SFIKIT_OP(F64Add) SFIKIT_OP(F64Sub) SFIKIT_OP(F64Mul)
      SFIKIT_OP(F64Div) SFIKIT_OP(F64Sqrt) SFIKIT_OP(F64Min)
      SFIKIT_OP(F64Max) SFIKIT_OP(F64Neg) SFIKIT_OP(F64Abs)
      SFIKIT_OP(F64ConvertI32S) SFIKIT_OP(F64ConvertI32U)
      SFIKIT_OP(F64ConvertI64S)
      SFIKIT_OP(I32TruncF64S) SFIKIT_OP(I64TruncF64S)
      SFIKIT_OP(F64ReinterpretI64) SFIKIT_OP(I64ReinterpretF64)
#undef SFIKIT_OP
    }
    return "?";
}

}  // namespace sfi::wasm
