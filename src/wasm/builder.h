/**
 * @file
 * Fluent module/function builders.
 *
 * The workload kernels (SPEC-like suites, Sightglass-like micros, FaaS
 * functions) are authored against this API instead of a binary decoder —
 * sfikit's "frontend". Usage:
 *
 *   ModuleBuilder mb;
 *   mb.memory(16, 16);
 *   auto f = mb.func("sum", {ValType::I32}, {ValType::I32});
 *   f.i32Const(0).localSet(acc) ... .end();
 *   mb.exportFunc("sum", f.index());
 *   Module m = mb.build();   // validated
 */
#ifndef SFIKIT_WASM_BUILDER_H_
#define SFIKIT_WASM_BUILDER_H_

#include <bit>
#include <deque>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.h"
#include "wasm/module.h"
#include "wasm/validator.h"

namespace sfi::wasm {

class ModuleBuilder;

/** Builds one function body with chainable emitters. */
class FunctionBuilder
{
  public:
    /** Function index (in the module's function index space). */
    uint32_t index() const { return index_; }

    /** Adds a local and returns its index (params come first). */
    uint32_t
    local(ValType t)
    {
        fn_->locals.push_back(t);
        return static_cast<uint32_t>(numParams_ + fn_->locals.size() - 1);
    }

    /** Index of parameter @p i as a local. */
    uint32_t param(uint32_t i) const
    {
        SFI_CHECK(i < numParams_);
        return i;
    }

    // --- raw emit ---
    FunctionBuilder&
    op(Op o, uint32_t a = 0, uint64_t imm = 0)
    {
        fn_->body.push_back(Instr{o, a, imm});
        return *this;
    }

    // --- control flow ---
    FunctionBuilder& block() { return op(Op::Block); }
    FunctionBuilder& loop() { return op(Op::Loop); }
    FunctionBuilder& if_() { return op(Op::If); }
    FunctionBuilder& else_() { return op(Op::Else); }
    FunctionBuilder& end() { return op(Op::End); }
    FunctionBuilder& br(uint32_t depth) { return op(Op::Br, depth); }
    FunctionBuilder& brIf(uint32_t depth) { return op(Op::BrIf, depth); }
    FunctionBuilder&
    brTable(std::vector<uint32_t> depths_then_default)
    {
        fn_->brTables.push_back(std::move(depths_then_default));
        return op(Op::BrTable,
                  static_cast<uint32_t>(fn_->brTables.size() - 1));
    }
    FunctionBuilder& ret() { return op(Op::Return); }
    FunctionBuilder& call(uint32_t func_idx) { return op(Op::Call, func_idx); }
    FunctionBuilder&
    callIndirect(uint32_t type_idx)
    {
        return op(Op::CallIndirect, type_idx);
    }
    FunctionBuilder& unreachable() { return op(Op::Unreachable); }
    FunctionBuilder& drop() { return op(Op::Drop); }
    FunctionBuilder& select() { return op(Op::Select); }

    // --- variables ---
    FunctionBuilder& localGet(uint32_t i) { return op(Op::LocalGet, i); }
    FunctionBuilder& localSet(uint32_t i) { return op(Op::LocalSet, i); }
    FunctionBuilder& localTee(uint32_t i) { return op(Op::LocalTee, i); }
    FunctionBuilder& globalGet(uint32_t i) { return op(Op::GlobalGet, i); }
    FunctionBuilder& globalSet(uint32_t i) { return op(Op::GlobalSet, i); }

    // --- constants ---
    FunctionBuilder&
    i32Const(uint32_t v)
    {
        return op(Op::I32Const, 0, v);
    }
    FunctionBuilder&
    i64Const(uint64_t v)
    {
        return op(Op::I64Const, 0, v);
    }
    FunctionBuilder&
    f64Const(double v)
    {
        return op(Op::F64Const, 0, std::bit_cast<uint64_t>(v));
    }

    // --- memory ---
    FunctionBuilder& i32Load(uint32_t off = 0) { return op(Op::I32Load, 0, off); }
    FunctionBuilder& i64Load(uint32_t off = 0) { return op(Op::I64Load, 0, off); }
    FunctionBuilder& f64Load(uint32_t off = 0) { return op(Op::F64Load, 0, off); }
    FunctionBuilder& i32Load8u(uint32_t off = 0) { return op(Op::I32Load8U, 0, off); }
    FunctionBuilder& i32Load8s(uint32_t off = 0) { return op(Op::I32Load8S, 0, off); }
    FunctionBuilder& i32Load16u(uint32_t off = 0) { return op(Op::I32Load16U, 0, off); }
    FunctionBuilder& i32Load16s(uint32_t off = 0) { return op(Op::I32Load16S, 0, off); }
    FunctionBuilder& i32Store(uint32_t off = 0) { return op(Op::I32Store, 0, off); }
    FunctionBuilder& i64Store(uint32_t off = 0) { return op(Op::I64Store, 0, off); }
    FunctionBuilder& f64Store(uint32_t off = 0) { return op(Op::F64Store, 0, off); }
    FunctionBuilder& i32Store8(uint32_t off = 0) { return op(Op::I32Store8, 0, off); }
    FunctionBuilder& i32Store16(uint32_t off = 0) { return op(Op::I32Store16, 0, off); }
    FunctionBuilder& memorySize() { return op(Op::MemorySize); }
    FunctionBuilder& memoryGrow() { return op(Op::MemoryGrow); }
    FunctionBuilder& memoryFill() { return op(Op::MemoryFill); }
    FunctionBuilder& memoryCopy() { return op(Op::MemoryCopy); }

    // --- i32 ---
    FunctionBuilder& i32Add() { return op(Op::I32Add); }
    FunctionBuilder& i32Sub() { return op(Op::I32Sub); }
    FunctionBuilder& i32Mul() { return op(Op::I32Mul); }
    FunctionBuilder& i32DivS() { return op(Op::I32DivS); }
    FunctionBuilder& i32DivU() { return op(Op::I32DivU); }
    FunctionBuilder& i32RemS() { return op(Op::I32RemS); }
    FunctionBuilder& i32RemU() { return op(Op::I32RemU); }
    FunctionBuilder& i32And() { return op(Op::I32And); }
    FunctionBuilder& i32Or() { return op(Op::I32Or); }
    FunctionBuilder& i32Xor() { return op(Op::I32Xor); }
    FunctionBuilder& i32Shl() { return op(Op::I32Shl); }
    FunctionBuilder& i32ShrS() { return op(Op::I32ShrS); }
    FunctionBuilder& i32ShrU() { return op(Op::I32ShrU); }
    FunctionBuilder& i32Rotl() { return op(Op::I32Rotl); }
    FunctionBuilder& i32Rotr() { return op(Op::I32Rotr); }
    FunctionBuilder& i32Popcnt() { return op(Op::I32Popcnt); }
    FunctionBuilder& i32Eqz() { return op(Op::I32Eqz); }
    FunctionBuilder& i32Eq() { return op(Op::I32Eq); }
    FunctionBuilder& i32Ne() { return op(Op::I32Ne); }
    FunctionBuilder& i32LtS() { return op(Op::I32LtS); }
    FunctionBuilder& i32LtU() { return op(Op::I32LtU); }
    FunctionBuilder& i32GtS() { return op(Op::I32GtS); }
    FunctionBuilder& i32GtU() { return op(Op::I32GtU); }
    FunctionBuilder& i32LeS() { return op(Op::I32LeS); }
    FunctionBuilder& i32LeU() { return op(Op::I32LeU); }
    FunctionBuilder& i32GeS() { return op(Op::I32GeS); }
    FunctionBuilder& i32GeU() { return op(Op::I32GeU); }

    // --- i64 ---
    FunctionBuilder& i64Add() { return op(Op::I64Add); }
    FunctionBuilder& i64Sub() { return op(Op::I64Sub); }
    FunctionBuilder& i64Mul() { return op(Op::I64Mul); }
    FunctionBuilder& i64DivS() { return op(Op::I64DivS); }
    FunctionBuilder& i64DivU() { return op(Op::I64DivU); }
    FunctionBuilder& i64RemS() { return op(Op::I64RemS); }
    FunctionBuilder& i64RemU() { return op(Op::I64RemU); }
    FunctionBuilder& i64And() { return op(Op::I64And); }
    FunctionBuilder& i64Or() { return op(Op::I64Or); }
    FunctionBuilder& i64Xor() { return op(Op::I64Xor); }
    FunctionBuilder& i64Shl() { return op(Op::I64Shl); }
    FunctionBuilder& i64ShrS() { return op(Op::I64ShrS); }
    FunctionBuilder& i64ShrU() { return op(Op::I64ShrU); }
    FunctionBuilder& i64Rotl() { return op(Op::I64Rotl); }
    FunctionBuilder& i64Rotr() { return op(Op::I64Rotr); }
    FunctionBuilder& i64Popcnt() { return op(Op::I64Popcnt); }
    FunctionBuilder& i64Eqz() { return op(Op::I64Eqz); }
    FunctionBuilder& i64Eq() { return op(Op::I64Eq); }
    FunctionBuilder& i64Ne() { return op(Op::I64Ne); }
    FunctionBuilder& i64LtS() { return op(Op::I64LtS); }
    FunctionBuilder& i64LtU() { return op(Op::I64LtU); }
    FunctionBuilder& i64GtS() { return op(Op::I64GtS); }
    FunctionBuilder& i64GtU() { return op(Op::I64GtU); }
    FunctionBuilder& i64LeS() { return op(Op::I64LeS); }
    FunctionBuilder& i64LeU() { return op(Op::I64LeU); }
    FunctionBuilder& i64GeS() { return op(Op::I64GeS); }
    FunctionBuilder& i64GeU() { return op(Op::I64GeU); }

    // --- conversions ---
    FunctionBuilder& i32WrapI64() { return op(Op::I32WrapI64); }
    FunctionBuilder& i64ExtendI32S() { return op(Op::I64ExtendI32S); }
    FunctionBuilder& i64ExtendI32U() { return op(Op::I64ExtendI32U); }

    // --- f64 ---
    FunctionBuilder& f64Add() { return op(Op::F64Add); }
    FunctionBuilder& f64Sub() { return op(Op::F64Sub); }
    FunctionBuilder& f64Mul() { return op(Op::F64Mul); }
    FunctionBuilder& f64Div() { return op(Op::F64Div); }
    FunctionBuilder& f64Sqrt() { return op(Op::F64Sqrt); }
    FunctionBuilder& f64Min() { return op(Op::F64Min); }
    FunctionBuilder& f64Max() { return op(Op::F64Max); }
    FunctionBuilder& f64Neg() { return op(Op::F64Neg); }
    FunctionBuilder& f64Abs() { return op(Op::F64Abs); }
    FunctionBuilder& f64Eq() { return op(Op::F64Eq); }
    FunctionBuilder& f64Ne() { return op(Op::F64Ne); }
    FunctionBuilder& f64Lt() { return op(Op::F64Lt); }
    FunctionBuilder& f64Gt() { return op(Op::F64Gt); }
    FunctionBuilder& f64Le() { return op(Op::F64Le); }
    FunctionBuilder& f64Ge() { return op(Op::F64Ge); }
    FunctionBuilder& f64ConvertI32S() { return op(Op::F64ConvertI32S); }
    FunctionBuilder& f64ConvertI32U() { return op(Op::F64ConvertI32U); }
    FunctionBuilder& f64ConvertI64S() { return op(Op::F64ConvertI64S); }
    FunctionBuilder& i32TruncF64S() { return op(Op::I32TruncF64S); }
    FunctionBuilder& i64TruncF64S() { return op(Op::I64TruncF64S); }

  private:
    friend class ModuleBuilder;

    FunctionBuilder(Function* fn, uint32_t index, size_t num_params)
        : fn_(fn), index_(index), numParams_(num_params)
    {
    }

    Function* fn_;
    uint32_t index_;
    size_t numParams_;
};

/** Builds a Module; build() validates. */
class ModuleBuilder
{
  public:
    /** Declares linear-memory limits in Wasm pages. */
    ModuleBuilder&
    memory(uint32_t min_pages, uint32_t max_pages)
    {
        module_.memory = {min_pages, max_pages};
        return *this;
    }

    /** Declares a host-function import; returns its function index. */
    uint32_t
    importFunc(std::string name, std::vector<ValType> params,
               std::vector<ValType> results)
    {
        SFI_CHECK_MSG(pending_.empty(),
                      "imports must be declared before functions");
        uint32_t ti =
            module_.internType({std::move(params), std::move(results)});
        module_.imports.push_back({std::move(name), ti});
        return module_.numImports() - 1;
    }

    /**
     * Starts a new function; returns a builder bound to it. Functions
     * live in a deque until build(), so earlier FunctionBuilders stay
     * valid while later functions are added.
     */
    FunctionBuilder
    func(std::string name, std::vector<ValType> params,
         std::vector<ValType> results)
    {
        size_t num_params = params.size();
        uint32_t ti =
            module_.internType({std::move(params), std::move(results)});
        Function fn;
        fn.typeIdx = ti;
        fn.name = std::move(name);
        pending_.push_back(std::move(fn));
        uint32_t index = module_.numImports() +
                         static_cast<uint32_t>(pending_.size()) - 1;
        return FunctionBuilder(&pending_.back(), index, num_params);
    }

    ModuleBuilder&
    global(ValType t, bool is_mutable, uint64_t init)
    {
        module_.globals.push_back({t, is_mutable, init});
        return *this;
    }

    ModuleBuilder&
    data(uint32_t offset, std::vector<uint8_t> bytes)
    {
        module_.data.push_back({offset, std::move(bytes)});
        return *this;
    }

    ModuleBuilder&
    table(std::vector<uint32_t> func_indices)
    {
        module_.table = std::move(func_indices);
        return *this;
    }

    ModuleBuilder&
    exportFunc(const std::string& name, uint32_t func_idx)
    {
        module_.exports[name] = func_idx;
        return *this;
    }

    uint32_t
    typeIndexOf(std::vector<ValType> params, std::vector<ValType> results)
    {
        return module_.internType({std::move(params), std::move(results)});
    }

    /** Validates and returns the module; panics on validation failure
     *  (builder misuse is an sfikit bug, not user input). */
    Module
    build() &&
    {
        finalize();
        Status st = validate(module_);
        SFI_CHECK_MSG(st.isOk(), "built module fails validation: %s",
                      st.message().c_str());
        return std::move(module_);
    }

    /** Access without validation (negative validator tests). */
    Module
    takeUnvalidated() &&
    {
        finalize();
        return std::move(module_);
    }

  private:
    void
    finalize()
    {
        module_.functions.assign(
            std::make_move_iterator(pending_.begin()),
            std::make_move_iterator(pending_.end()));
        pending_.clear();
    }

    Module module_;
    std::deque<Function> pending_;
};

}  // namespace sfi::wasm

#endif  // SFIKIT_WASM_BUILDER_H_
