/**
 * @file
 * Publishing JIT'd bytes as executable code (W^X discipline: written into
 * a read-write mapping, then flipped to read-execute).
 */
#ifndef SFIKIT_X64_EXEC_CODE_H_
#define SFIKIT_X64_EXEC_CODE_H_

#include <cstdint>
#include <vector>

#include "base/os_mem.h"
#include "base/result.h"

namespace sfi::x64 {

/** An immutable, executable copy of a code buffer. */
class ExecCode
{
  public:
    ExecCode() = default;

    /** Copies @p code into fresh pages and makes them read-execute. */
    static Result<ExecCode> publish(const std::vector<uint8_t>& code);

    const uint8_t* base() const { return mapping_.base(); }
    uint64_t size() const { return codeSize_; }
    bool valid() const { return mapping_.valid(); }

    /** Typed entry point at @p offset bytes into the code. */
    template <typename Fn>
    Fn
    entry(uint64_t offset = 0) const
    {
        SFI_CHECK(offset < codeSize_);
        return reinterpret_cast<Fn>(
            const_cast<uint8_t*>(mapping_.base() + offset));
    }

  private:
    Reservation mapping_;
    uint64_t codeSize_ = 0;
};

}  // namespace sfi::x64

#endif  // SFIKIT_X64_EXEC_CODE_H_
