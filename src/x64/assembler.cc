#include "x64/assembler.h"

#include <cstring>

namespace sfi::x64 {

namespace {

constexpr uint8_t
bits(Reg r)
{
    return static_cast<uint8_t>(r);
}

constexpr uint8_t
bits(Xmm r)
{
    return static_cast<uint8_t>(r);
}

constexpr uint8_t
log2Scale(uint8_t scale)
{
    switch (scale) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      case 8: return 3;
    }
    SFI_PANIC("invalid SIB scale %u", scale);
}

constexpr bool
fitsInt8(int32_t v)
{
    return v >= -128 && v <= 127;
}

}  // namespace

void
Assembler::emit32(uint32_t v)
{
    for (int i = 0; i < 4; i++)
        emit8(static_cast<uint8_t>(v >> (8 * i)));
}

void
Assembler::emit64(uint64_t v)
{
    for (int i = 0; i < 8; i++)
        emit8(static_cast<uint8_t>(v >> (8 * i)));
}

void
Assembler::emitPrefixes(Width w, uint8_t reg, const Mem& m,
                        bool byte_reg_rex, uint8_t mandatory)
{
    if (m.seg == Seg::Gs)
        emit8(0x65);
    else if (m.seg == Seg::Fs)
        emit8(0x64);
    if (m.addr32)
        emit8(0x67);
    if (w == Width::W16)
        emit8(0x66);
    if (mandatory != 0)
        emit8(mandatory);
    uint8_t rex = 0x40;
    if (w == Width::W64)
        rex |= 0x08;
    if (reg & 0x8)
        rex |= 0x04;
    if (m.hasIndex && (bits(m.index) & 0x8))
        rex |= 0x02;
    if (m.hasBase && (bits(m.base) & 0x8))
        rex |= 0x01;
    bool need_byte_rex =
        byte_reg_rex && w == Width::W8 && (reg & 0x7) >= 4 && !(reg & 0x8);
    if (rex != 0x40 || need_byte_rex)
        emit8(rex);
}

void
Assembler::emitPrefixesRR(Width w, uint8_t reg, uint8_t rm,
                          bool byte_reg_rex, uint8_t mandatory)
{
    if (w == Width::W16)
        emit8(0x66);
    if (mandatory != 0)
        emit8(mandatory);
    uint8_t rex = 0x40;
    if (w == Width::W64)
        rex |= 0x08;
    if (reg & 0x8)
        rex |= 0x04;
    if (rm & 0x8)
        rex |= 0x01;
    bool need_byte_rex = byte_reg_rex && w == Width::W8 &&
                         (((reg & 0x7) >= 4 && !(reg & 0x8)) ||
                          ((rm & 0x7) >= 4 && !(rm & 0x8)));
    if (rex != 0x40 || need_byte_rex)
        emit8(rex);
}

void
Assembler::emitModRmMem(uint8_t reg_field, const Mem& m)
{
    const uint8_t reg3 = reg_field & 0x7;
    auto modrm = [&](uint8_t mod, uint8_t rm) {
        emit8(static_cast<uint8_t>((mod << 6) | (reg3 << 3) | rm));
    };
    auto sib = [&](uint8_t ss, uint8_t idx, uint8_t base) {
        emit8(static_cast<uint8_t>((ss << 6) | ((idx & 0x7) << 3) |
                                   (base & 0x7)));
    };

    if (!m.hasBase && !m.hasIndex) {
        // [disp32] absolute (via SIB base=101, index=none).
        modrm(0, 4);
        sib(0, 4, 5);
        emit32(static_cast<uint32_t>(m.disp));
        return;
    }

    if (m.hasIndex) {
        SFI_CHECK_MSG(m.index != Reg::rsp, "rsp cannot be an index");
        uint8_t ss = log2Scale(m.scale);
        if (!m.hasBase) {
            modrm(0, 4);
            sib(ss, bits(m.index), 5);
            emit32(static_cast<uint32_t>(m.disp));
            return;
        }
        uint8_t base3 = bits(m.base) & 0x7;
        if (m.disp == 0 && base3 != 5) {
            modrm(0, 4);
            sib(ss, bits(m.index), bits(m.base));
        } else if (fitsInt8(m.disp)) {
            modrm(1, 4);
            sib(ss, bits(m.index), bits(m.base));
            emit8(static_cast<uint8_t>(m.disp));
        } else {
            modrm(2, 4);
            sib(ss, bits(m.index), bits(m.base));
            emit32(static_cast<uint32_t>(m.disp));
        }
        return;
    }

    // Base only.
    uint8_t base3 = bits(m.base) & 0x7;
    if (base3 == 4) {
        // rsp/r12 require a SIB byte.
        if (m.disp == 0) {
            modrm(0, 4);
            sib(0, 4, bits(m.base));
        } else if (fitsInt8(m.disp)) {
            modrm(1, 4);
            sib(0, 4, bits(m.base));
            emit8(static_cast<uint8_t>(m.disp));
        } else {
            modrm(2, 4);
            sib(0, 4, bits(m.base));
            emit32(static_cast<uint32_t>(m.disp));
        }
        return;
    }
    if (m.disp == 0 && base3 != 5) {
        modrm(0, base3);
    } else if (fitsInt8(m.disp)) {
        modrm(1, base3);
        emit8(static_cast<uint8_t>(m.disp));
    } else {
        modrm(2, base3);
        emit32(static_cast<uint32_t>(m.disp));
    }
}

void
Assembler::emitModRmReg(uint8_t reg_field, uint8_t rm_reg)
{
    emit8(static_cast<uint8_t>(0xc0 | ((reg_field & 0x7) << 3) |
                               (rm_reg & 0x7)));
}

Label
Assembler::newLabel()
{
    Label l;
    l.id_ = static_cast<int32_t>(labels_.size());
    labels_.emplace_back();
    return l;
}

void
Assembler::bind(Label& label)
{
    SFI_CHECK(label.valid());
    // A bound label is a control-flow join: a jump may land here from a
    // path that did not zero-extend, so the peephole fact dies.
    zextReg_ = -1;
    LabelState& st = labels_.at(label.id_);
    SFI_CHECK_MSG(st.offset < 0, "label bound twice");
    st.offset = static_cast<int64_t>(code_.size());
    for (size_t pos : st.fixups) {
        int64_t rel = st.offset - (static_cast<int64_t>(pos) + 4);
        SFI_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
        uint32_t rel32 = static_cast<uint32_t>(rel);
        std::memcpy(&code_[pos], &rel32, 4);
    }
    st.fixups.clear();
}

uint64_t
Assembler::labelOffset(const Label& label) const
{
    SFI_CHECK(label.valid());
    const LabelState& st = labels_.at(label.id_);
    SFI_CHECK_MSG(st.offset >= 0, "label not bound");
    return static_cast<uint64_t>(st.offset);
}

void
Assembler::emitRel32(Label& label)
{
    SFI_CHECK(label.valid());
    LabelState& st = labels_.at(label.id_);
    if (st.offset >= 0) {
        int64_t rel = st.offset - (static_cast<int64_t>(code_.size()) + 4);
        SFI_CHECK(rel >= INT32_MIN && rel <= INT32_MAX);
        emit32(static_cast<uint32_t>(rel));
    } else {
        st.fixups.push_back(code_.size());
        emit32(0);
    }
}

// --- moves ---

void
Assembler::movImm64(Reg dst, uint64_t imm)
{
    emit8(static_cast<uint8_t>(0x48 | ((bits(dst) & 0x8) ? 1 : 0)));
    emit8(static_cast<uint8_t>(0xb8 | (bits(dst) & 0x7)));
    emit64(imm);
}

void
Assembler::movImm32(Reg dst, uint32_t imm)
{
    bool rex = (bits(dst) & 0x8) != 0;
    if (peephole_ && imm == 0) {
        // xor r32, r32: 2-3 bytes instead of 5-6, and the canonical
        // zero idiom (dependency-breaking on real hardware). Clobbers
        // EFLAGS; see setPeephole for the client contract.
        alu(AluOp::Xor, Width::W32, dst, dst);
        peepStats_.xorZeros++;
        peepStats_.bytesSaved += 3;
        return;
    }
    if (rex)
        emit8(0x41);
    emit8(static_cast<uint8_t>(0xb8 | (bits(dst) & 0x7)));
    emit32(imm);
    noteZext(dst);
}

void
Assembler::mov(Width w, Reg dst, Reg src)
{
    if (peephole_ && dst == src) {
        if (w == Width::W64) {
            // Architectural no-op (REX.W + opcode + modrm = 3 bytes).
            peepStats_.movsDropped++;
            peepStats_.bytesSaved += 3;
            return;
        }
        if (w == Width::W32 && lastZexted(dst)) {
            // The explicit-truncation idiom, but the previous
            // instruction already zero-extended dst and no join point
            // intervened. Nothing is emitted, so the fact stays live.
            peepStats_.zextsDropped++;
            peepStats_.bytesSaved += (bits(dst) & 0x8) ? 3 : 2;
            return;
        }
    }
    // mov r/m, r form: rm = dst, reg = src.
    emitPrefixesRR(w, bits(src), bits(dst), w == Width::W8);
    emit8(w == Width::W8 ? 0x88 : 0x89);
    emitModRmReg(bits(src), bits(dst));
    if (w == Width::W32)
        noteZext(dst);
}

void
Assembler::load(Width w, bool sign_extend, Reg dst, const Mem& m)
{
    switch (w) {
      case Width::W8:
        // movzx zero-extends through bit 63; movsx needs REX.W to reach
        // the full register.
        emitPrefixes(sign_extend ? Width::W64 : Width::W32, bits(dst), m);
        emit8(0x0f);
        emit8(sign_extend ? 0xbe : 0xb6);
        emitModRmMem(bits(dst), m);
        break;
      case Width::W16:
        emitPrefixes(sign_extend ? Width::W64 : Width::W32, bits(dst), m);
        emit8(0x0f);
        emit8(sign_extend ? 0xbf : 0xb7);
        emitModRmMem(bits(dst), m);
        break;
      case Width::W32:
        if (sign_extend) {
            emitPrefixes(Width::W64, bits(dst), m);
            emit8(0x63);  // movsxd
        } else {
            emitPrefixes(Width::W32, bits(dst), m);
            emit8(0x8b);
        }
        emitModRmMem(bits(dst), m);
        break;
      case Width::W64:
        emitPrefixes(Width::W64, bits(dst), m);
        emit8(0x8b);
        emitModRmMem(bits(dst), m);
        break;
    }
    if (!sign_extend && w != Width::W64)
        noteZext(dst);
}

void
Assembler::store(Width w, const Mem& m, Reg src)
{
    emitPrefixes(w, bits(src), m, w == Width::W8);
    emit8(w == Width::W8 ? 0x88 : 0x89);
    emitModRmMem(bits(src), m);
}

void
Assembler::storeImm32(Width w, const Mem& m, int32_t imm)
{
    emitPrefixes(w, 0, m);
    if (w == Width::W8) {
        emit8(0xc6);
        emitModRmMem(0, m);
        emit8(static_cast<uint8_t>(imm));
    } else if (w == Width::W16) {
        emit8(0xc7);
        emitModRmMem(0, m);
        emit8(static_cast<uint8_t>(imm));
        emit8(static_cast<uint8_t>(imm >> 8));
    } else {
        emit8(0xc7);
        emitModRmMem(0, m);
        emit32(static_cast<uint32_t>(imm));
    }
}

void
Assembler::lea(Width w, Reg dst, const Mem& m)
{
    SFI_CHECK(w == Width::W32 || w == Width::W64);
    emitPrefixes(w, bits(dst), m);
    emit8(0x8d);
    emitModRmMem(bits(dst), m);
    if (w == Width::W32)
        noteZext(dst);
}

// --- integer ALU ---

void
Assembler::alu(AluOp op, Width w, Reg dst, Reg src)
{
    // "op r, r/m" form (base+3): reg = dst, rm = src.
    uint8_t base = static_cast<uint8_t>(static_cast<uint8_t>(op) << 3);
    emitPrefixesRR(w, bits(dst), bits(src), w == Width::W8);
    emit8(static_cast<uint8_t>(base | (w == Width::W8 ? 0x02 : 0x03)));
    emitModRmReg(bits(dst), bits(src));
    if (w == Width::W32 && op != AluOp::Cmp)
        noteZext(dst);
}

void
Assembler::aluImm(AluOp op, Width w, Reg dst, int32_t imm)
{
    uint8_t ext = static_cast<uint8_t>(op);
    if (w == Width::W8) {
        emitPrefixesRR(w, 0, bits(dst), true);
        emit8(0x80);
        emitModRmReg(ext, bits(dst));
        emit8(static_cast<uint8_t>(imm));
        return;
    }
    emitPrefixesRR(w, 0, bits(dst));
    if (fitsInt8(imm)) {
        emit8(0x83);
        emitModRmReg(ext, bits(dst));
        emit8(static_cast<uint8_t>(imm));
    } else {
        emit8(0x81);
        emitModRmReg(ext, bits(dst));
        emit32(static_cast<uint32_t>(imm));
    }
    if (w == Width::W32 && op != AluOp::Cmp)
        noteZext(dst);
}

void
Assembler::aluMem(AluOp op, Width w, Reg dst, const Mem& m)
{
    uint8_t base = static_cast<uint8_t>(static_cast<uint8_t>(op) << 3);
    emitPrefixes(w, bits(dst), m);
    emit8(static_cast<uint8_t>(base | (w == Width::W8 ? 0x02 : 0x03)));
    emitModRmMem(bits(dst), m);
    if (w == Width::W32 && op != AluOp::Cmp)
        noteZext(dst);
}

void
Assembler::test(Width w, Reg a, Reg b)
{
    emitPrefixesRR(w, bits(b), bits(a), w == Width::W8);
    emit8(w == Width::W8 ? 0x84 : 0x85);
    emitModRmReg(bits(b), bits(a));
}

void
Assembler::imul(Width w, Reg dst, Reg src)
{
    emitPrefixesRR(w, bits(dst), bits(src));
    emit8(0x0f);
    emit8(0xaf);
    emitModRmReg(bits(dst), bits(src));
    if (w == Width::W32)
        noteZext(dst);
}

void
Assembler::neg(Width w, Reg r)
{
    emitPrefixesRR(w, 0, bits(r));
    emit8(w == Width::W8 ? 0xf6 : 0xf7);
    emitModRmReg(3, bits(r));
    if (w == Width::W32)
        noteZext(r);
}

void
Assembler::notR(Width w, Reg r)
{
    emitPrefixesRR(w, 0, bits(r));
    emit8(w == Width::W8 ? 0xf6 : 0xf7);
    emitModRmReg(2, bits(r));
    if (w == Width::W32)
        noteZext(r);
}

void
Assembler::div(Width w, Reg r)
{
    emitPrefixesRR(w, 0, bits(r));
    emit8(0xf7);
    emitModRmReg(6, bits(r));
}

void
Assembler::idiv(Width w, Reg r)
{
    emitPrefixesRR(w, 0, bits(r));
    emit8(0xf7);
    emitModRmReg(7, bits(r));
}

void
Assembler::cdq()
{
    emit8(0x99);
}

void
Assembler::cqo()
{
    emit8(0x48);
    emit8(0x99);
}

void
Assembler::shiftCl(ShiftOp op, Width w, Reg r)
{
    emitPrefixesRR(w, 0, bits(r));
    emit8(w == Width::W8 ? 0xd2 : 0xd3);
    emitModRmReg(static_cast<uint8_t>(op), bits(r));
    if (w == Width::W32)
        noteZext(r);
}

void
Assembler::shiftImm(ShiftOp op, Width w, Reg r, uint8_t amount)
{
    emitPrefixesRR(w, 0, bits(r));
    emit8(w == Width::W8 ? 0xc0 : 0xc1);
    emitModRmReg(static_cast<uint8_t>(op), bits(r));
    emit8(amount);
    if (w == Width::W32)
        noteZext(r);
}

void
Assembler::movzx8(Reg dst, Reg src)
{
    emitPrefixesRR(Width::W8, bits(dst), bits(src), true);
    emit8(0x0f);
    emit8(0xb6);
    emitModRmReg(bits(dst), bits(src));
    noteZext(dst);
}

void
Assembler::movzx16(Reg dst, Reg src)
{
    emitPrefixesRR(Width::W32, bits(dst), bits(src));
    emit8(0x0f);
    emit8(0xb7);
    emitModRmReg(bits(dst), bits(src));
    noteZext(dst);
}

void
Assembler::movsx8(Width w, Reg dst, Reg src)
{
    // REX.W taken from the destination width; source is a byte register.
    if (w == Width::W64) {
        emitPrefixesRR(Width::W64, bits(dst), bits(src));
    } else {
        emitPrefixesRR(Width::W8, bits(dst), bits(src), true);
    }
    emit8(0x0f);
    emit8(0xbe);
    emitModRmReg(bits(dst), bits(src));
    if (w == Width::W32)
        noteZext(dst);
}

void
Assembler::movsx16(Width w, Reg dst, Reg src)
{
    emitPrefixesRR(w == Width::W64 ? Width::W64 : Width::W32, bits(dst),
                   bits(src));
    emit8(0x0f);
    emit8(0xbf);
    emitModRmReg(bits(dst), bits(src));
    if (w == Width::W32)
        noteZext(dst);
}

void
Assembler::movsxd(Reg dst, Reg src)
{
    emitPrefixesRR(Width::W64, bits(dst), bits(src));
    emit8(0x63);
    emitModRmReg(bits(dst), bits(src));
}

void
Assembler::setcc(Cond cc, Reg dst)
{
    emitPrefixesRR(Width::W8, 0, bits(dst), true);
    emit8(0x0f);
    emit8(static_cast<uint8_t>(0x90 | static_cast<uint8_t>(cc)));
    emitModRmReg(0, bits(dst));
}

void
Assembler::cmovcc(Cond cc, Width w, Reg dst, Reg src)
{
    emitPrefixesRR(w, bits(dst), bits(src));
    emit8(0x0f);
    emit8(static_cast<uint8_t>(0x40 | static_cast<uint8_t>(cc)));
    emitModRmReg(bits(dst), bits(src));
    // 32-bit cmov clears the upper half even when the move is not
    // taken (SDM vol. 1 §3.4.1.1).
    if (w == Width::W32)
        noteZext(dst);
}

void
Assembler::popcnt(Width w, Reg dst, Reg src)
{
    emit8(0xf3);
    uint8_t rex = 0x40;
    if (w == Width::W64)
        rex |= 0x08;
    if (bits(dst) & 0x8)
        rex |= 0x04;
    if (bits(src) & 0x8)
        rex |= 0x01;
    if (rex != 0x40)
        emit8(rex);
    emit8(0x0f);
    emit8(0xb8);
    emitModRmReg(bits(dst), bits(src));
    if (w == Width::W32)
        noteZext(dst);
}

// --- control flow ---

void
Assembler::jmp(Label& target)
{
    emit8(0xe9);
    emitRel32(target);
}

void
Assembler::jcc(Cond cc, Label& target)
{
    emit8(0x0f);
    emit8(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(cc)));
    emitRel32(target);
}

void
Assembler::jmpReg(Reg r)
{
    if (bits(r) & 0x8)
        emit8(0x41);
    emit8(0xff);
    emitModRmReg(4, bits(r));
}

void
Assembler::call(Label& target)
{
    emit8(0xe8);
    emitRel32(target);
}

void
Assembler::callReg(Reg r)
{
    if (bits(r) & 0x8)
        emit8(0x41);
    emit8(0xff);
    emitModRmReg(2, bits(r));
}

void
Assembler::ret()
{
    emit8(0xc3);
}

void
Assembler::push(Reg r)
{
    if (bits(r) & 0x8)
        emit8(0x41);
    emit8(static_cast<uint8_t>(0x50 | (bits(r) & 0x7)));
}

void
Assembler::pop(Reg r)
{
    if (bits(r) & 0x8)
        emit8(0x41);
    emit8(static_cast<uint8_t>(0x58 | (bits(r) & 0x7)));
}

void
Assembler::nop(size_t count)
{
    // Recommended multi-byte NOP sequences (Intel SDM Table 4-12).
    static const uint8_t seqs[9][9] = {
        {0x90},
        {0x66, 0x90},
        {0x0f, 0x1f, 0x00},
        {0x0f, 0x1f, 0x40, 0x00},
        {0x0f, 0x1f, 0x44, 0x00, 0x00},
        {0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00},
        {0x0f, 0x1f, 0x80, 0x00, 0x00, 0x00, 0x00},
        {0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
        {0x66, 0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
    };
    while (count > 0) {
        size_t n = count > 9 ? 9 : count;
        for (size_t i = 0; i < n; i++)
            emit8(seqs[n - 1][i]);
        count -= n;
    }
}

void
Assembler::ud2()
{
    emit8(0x0f);
    emit8(0x0b);
}

void
Assembler::int3()
{
    emit8(0xcc);
}

// --- SSE2 f64 ---

void
Assembler::movsdLoad(Xmm dst, const Mem& m)
{
    emitPrefixes(Width::W32, bits(dst), m, false, 0xf2);
    emit8(0x0f);
    emit8(0x10);
    emitModRmMem(bits(dst), m);
}

void
Assembler::movsdStore(const Mem& m, Xmm src)
{
    emitPrefixes(Width::W32, bits(src), m, false, 0xf2);
    emit8(0x0f);
    emit8(0x11);
    emitModRmMem(bits(src), m);
}

void
Assembler::movsd(Xmm dst, Xmm src)
{
    emitPrefixesRR(Width::W32, bits(dst), bits(src), false, 0xf2);
    emit8(0x0f);
    emit8(0x10);
    emitModRmReg(bits(dst), bits(src));
}

void
Assembler::movqToXmm(Xmm dst, Reg src)
{
    emitPrefixesRR(Width::W64, bits(dst), bits(src), false, 0x66);
    emit8(0x0f);
    emit8(0x6e);
    emitModRmReg(bits(dst), bits(src));
}

void
Assembler::movqFromXmm(Reg dst, Xmm src)
{
    emitPrefixesRR(Width::W64, bits(src), bits(dst), false, 0x66);
    emit8(0x0f);
    emit8(0x7e);
    emitModRmReg(bits(src), bits(dst));
}

namespace {
constexpr uint8_t kSseF2 = 0xf2;
constexpr uint8_t kSse66 = 0x66;
}  // namespace

#define SFIKIT_SSE_RR(NAME, PREFIX, OPCODE)                            \
    void Assembler::NAME(Xmm dst, Xmm src)                             \
    {                                                                  \
        emitPrefixesRR(Width::W32, bits(dst), bits(src), false,        \
                       PREFIX);                                        \
        emit8(0x0f);                                                   \
        emit8(OPCODE);                                                 \
        emitModRmReg(bits(dst), bits(src));                            \
    }

SFIKIT_SSE_RR(addsd, kSseF2, 0x58)
SFIKIT_SSE_RR(subsd, kSseF2, 0x5c)
SFIKIT_SSE_RR(mulsd, kSseF2, 0x59)
SFIKIT_SSE_RR(divsd, kSseF2, 0x5e)
SFIKIT_SSE_RR(sqrtsd, kSseF2, 0x51)
SFIKIT_SSE_RR(minsd, kSseF2, 0x5d)
SFIKIT_SSE_RR(maxsd, kSseF2, 0x5f)
SFIKIT_SSE_RR(ucomisd, kSse66, 0x2e)
SFIKIT_SSE_RR(xorpd, kSse66, 0x57)

#undef SFIKIT_SSE_RR

void
Assembler::cvtsi2sd(Xmm dst, Width w, Reg src)
{
    emitPrefixesRR(w, bits(dst), bits(src), false, 0xf2);
    emit8(0x0f);
    emit8(0x2a);
    emitModRmReg(bits(dst), bits(src));
}

void
Assembler::cvttsd2si(Width w, Reg dst, Xmm src)
{
    emitPrefixesRR(w, bits(dst), bits(src), false, 0xf2);
    emit8(0x0f);
    emit8(0x2c);
    emitModRmReg(bits(dst), bits(src));
    if (w == Width::W32)
        noteZext(dst);
}

}  // namespace sfi::x64
