/**
 * @file
 * x86-64 instruction encoder.
 *
 * Emits the subset of x86-64 sfikit's JIT needs, including the two
 * encodings Segue is built on (§3.1):
 *
 *  - the %gs segment-override prefix (0x65), which adds the segment base
 *    to the effective address inside a single load/store; and
 *  - the address-size override prefix (0x67), which computes the
 *    effective address in 32-bit arithmetic — the "mixed-mode" addition
 *    that lets `mov r11, gs:[ecx + edx*4 + 8]` replace an explicit
 *    truncate+add pair (Figure 1c).
 *
 * The encoder is deliberately explicit (one method per instruction form)
 * so generated sequences are easy to audit — SFI code generation is
 * security-critical.
 */
#ifndef SFIKIT_X64_ASSEMBLER_H_
#define SFIKIT_X64_ASSEMBLER_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace sfi::x64 {

/** General-purpose registers, numbered by hardware encoding. */
enum class Reg : uint8_t {
    rax = 0, rcx, rdx, rbx, rsp, rbp, rsi, rdi,
    r8, r9, r10, r11, r12, r13, r14, r15,
};

/** SSE registers. */
enum class Xmm : uint8_t {
    xmm0 = 0, xmm1, xmm2, xmm3, xmm4, xmm5, xmm6, xmm7,
    xmm8, xmm9, xmm10, xmm11, xmm12, xmm13, xmm14, xmm15,
};

/** Operand widths. */
enum class Width : uint8_t { W8, W16, W32, W64 };

/** Segment override for memory operands. */
enum class Seg : uint8_t { None, Gs, Fs };

/** Condition codes (tttn field). */
enum class Cond : uint8_t {
    O = 0x0, NO = 0x1, B = 0x2, AE = 0x3, E = 0x4, NE = 0x5,
    BE = 0x6, A = 0x7, S = 0x8, NS = 0x9, P = 0xa, NP = 0xb,
    L = 0xc, GE = 0xd, LE = 0xe, G = 0xf,
};

/** Two-operand ALU operations sharing the standard opcode pattern. */
enum class AluOp : uint8_t {
    Add = 0, Or = 1, Adc = 2, Sbb = 3, And = 4, Sub = 5, Xor = 6, Cmp = 7,
};

/** Shift/rotate operations (the /n extension of group 2). */
enum class ShiftOp : uint8_t { Rol = 0, Ror = 1, Shl = 4, Shr = 5, Sar = 7 };

/**
 * A memory operand: [base + index*scale + disp32], optionally with a
 * segment override and/or 32-bit effective-address computation.
 */
struct Mem
{
    Reg base = Reg::rax;
    Reg index = Reg::rax;
    bool hasBase = false;
    bool hasIndex = false;
    uint8_t scale = 1;  ///< 1, 2, 4 or 8.
    int32_t disp = 0;
    Seg seg = Seg::None;
    /** Emit 0x67: compute the address in 32 bits (Segue mixed-mode). */
    bool addr32 = false;

    /** [base + disp] */
    static Mem
    baseDisp(Reg base, int32_t disp = 0)
    {
        Mem m;
        m.base = base;
        m.hasBase = true;
        m.disp = disp;
        return m;
    }

    /** [base + index*scale + disp] */
    static Mem
    baseIndex(Reg base, Reg index, uint8_t scale = 1, int32_t disp = 0)
    {
        Mem m = baseDisp(base, disp);
        m.index = index;
        m.hasIndex = true;
        m.scale = scale;
        return m;
    }

    /**
     * Segue form: gs:[base32 (+ index32*scale) + disp], address computed
     * in 32 bits then extended with the %gs base — one instruction per
     * heap access.
     */
    static Mem
    gs32(Reg base, int32_t disp = 0)
    {
        Mem m = baseDisp(base, disp);
        m.seg = Seg::Gs;
        m.addr32 = true;
        return m;
    }

    static Mem
    gs32Index(Reg base, Reg index, uint8_t scale = 1, int32_t disp = 0)
    {
        Mem m = baseIndex(base, index, scale, disp);
        m.seg = Seg::Gs;
        m.addr32 = true;
        return m;
    }
};

/** Counters from the assembler's peephole layer (see setPeephole). */
struct PeepStats
{
    uint64_t movsDropped = 0;   ///< dead 64-bit `mov r, r` elided
    uint64_t zextsDropped = 0;  ///< redundant `mov r32, r32` elided
    uint64_t xorZeros = 0;      ///< `mov r32, 0` -> `xor r32, r32`
    uint64_t bytesSaved = 0;

    void
    merge(const PeepStats& o)
    {
        movsDropped += o.movsDropped;
        zextsDropped += o.zextsDropped;
        xorZeros += o.xorZeros;
        bytesSaved += o.bytesSaved;
    }
};

/** A forward-referenceable code position. */
class Label
{
  public:
    Label() = default;
    bool valid() const { return id_ >= 0; }

  private:
    friend class Assembler;
    int32_t id_ = -1;
};

/**
 * The encoder. Appends instructions to an internal byte buffer; branch
 * targets use Labels with rel32 fixups patched at bind time.
 */
class Assembler
{
  public:
    const std::vector<uint8_t>& code() const { return code_; }
    size_t size() const { return code_.size(); }

    /**
     * Enables the peephole layer. Three rewrites, all local to a single
     * emission site:
     *
     *  - 64-bit `mov r, r` is dropped (an architectural no-op);
     *  - `mov r32, r32` (the explicit zero-extension idiom) is dropped
     *    only when the instruction emitted immediately before already
     *    zero-extended r into its full register and no label has been
     *    bound since (a bound label is a join point where another path
     *    may enter without the extension);
     *  - `mov r32, 0` becomes `xor r32, r32`.
     *
     * The xor rewrite clobbers EFLAGS, so clients must not materialize
     * constants between a flag-setting instruction and its consumer
     * (sfikit's compiler always consumes flags immediately). The SFI
     * verifier re-proves every transformed function, so a peephole bug
     * that voided a sandboxing proof would be caught, not shipped.
     */
    void setPeephole(bool on) { peephole_ = on; }
    const PeepStats& peepStats() const { return peepStats_; }

    /** Creates an unbound label. */
    Label newLabel();

    /** Binds @p label to the current position, patching fixups. */
    void bind(Label& label);

    /** Offset a bound label was bound at. */
    uint64_t labelOffset(const Label& label) const;

    // --- moves ---
    void movImm64(Reg dst, uint64_t imm);  ///< movabs dst, imm64
    void movImm32(Reg dst, uint32_t imm);  ///< mov dst32, imm32 (zero-ext)
    void mov(Width w, Reg dst, Reg src);
    /** Load with zero/sign extension into a 64-bit register. */
    void load(Width w, bool sign_extend, Reg dst, const Mem& m);
    void store(Width w, const Mem& m, Reg src);
    void storeImm32(Width w, const Mem& m, int32_t imm);
    void lea(Width w, Reg dst, const Mem& m);

    // --- integer ALU ---
    void alu(AluOp op, Width w, Reg dst, Reg src);
    void aluImm(AluOp op, Width w, Reg dst, int32_t imm);
    void aluMem(AluOp op, Width w, Reg dst, const Mem& m);
    void test(Width w, Reg a, Reg b);
    void imul(Width w, Reg dst, Reg src);
    void neg(Width w, Reg r);
    void notR(Width w, Reg r);
    /** Unsigned divide rdx:rax by r; quotient rax, remainder rdx. */
    void div(Width w, Reg r);
    /** Signed divide rdx:rax by r. */
    void idiv(Width w, Reg r);
    void cdq();  ///< sign-extend eax into edx
    void cqo();  ///< sign-extend rax into rdx
    void shiftCl(ShiftOp op, Width w, Reg r);
    void shiftImm(ShiftOp op, Width w, Reg r, uint8_t amount);
    void movzx8(Reg dst, Reg src);   ///< movzx dst32, src8
    void movzx16(Reg dst, Reg src);  ///< movzx dst32, src16
    void movsx8(Width w, Reg dst, Reg src);
    void movsx16(Width w, Reg dst, Reg src);
    void movsxd(Reg dst, Reg src);   ///< movsxd dst64, src32
    void setcc(Cond cc, Reg dst);    ///< setcc dst8 (caller zero-extends)
    void cmovcc(Cond cc, Width w, Reg dst, Reg src);
    void popcnt(Width w, Reg dst, Reg src);

    // --- control flow ---
    void jmp(Label& target);
    void jcc(Cond cc, Label& target);
    void jmpReg(Reg r);
    void call(Label& target);
    void callReg(Reg r);
    void ret();
    void push(Reg r);
    void pop(Reg r);
    void nop(size_t bytes = 1);
    /** Pads with NOPs to the next @p boundary (power of two). */
    void
    alignTo(size_t boundary)
    {
        size_t rem = code_.size() & (boundary - 1);
        if (rem != 0)
            nop(boundary - rem);
    }
    void ud2();
    void int3();

    // --- SSE2 f64 ---
    void movsdLoad(Xmm dst, const Mem& m);
    void movsdStore(const Mem& m, Xmm src);
    void movsd(Xmm dst, Xmm src);
    void movqToXmm(Xmm dst, Reg src);
    void movqFromXmm(Reg dst, Xmm src);
    void addsd(Xmm dst, Xmm src);
    void subsd(Xmm dst, Xmm src);
    void mulsd(Xmm dst, Xmm src);
    void divsd(Xmm dst, Xmm src);
    void sqrtsd(Xmm dst, Xmm src);
    void minsd(Xmm dst, Xmm src);
    void maxsd(Xmm dst, Xmm src);
    void ucomisd(Xmm a, Xmm b);
    void xorpd(Xmm dst, Xmm src);
    void cvtsi2sd(Xmm dst, Width w, Reg src);
    void cvttsd2si(Width w, Reg dst, Xmm src);

    /** Raw byte escape hatch (tests, padding). */
    void emitByte(uint8_t b) { code_.push_back(b); }

  private:
    struct LabelState
    {
        int64_t offset = -1;
        std::vector<size_t> fixups;  ///< positions of rel32 fields
    };

    void emit8(uint8_t b) { code_.push_back(b); }
    void emit32(uint32_t v);
    void emit64(uint64_t v);

    /** Legacy prefixes + REX for a reg/mem form. */
    void emitPrefixes(Width w, uint8_t reg, const Mem& m,
                      bool byte_reg_rex = false, uint8_t mandatory = 0);
    /** Legacy prefixes + REX for a reg/reg form (reg field, rm field). */
    void emitPrefixesRR(Width w, uint8_t reg, uint8_t rm,
                        bool byte_reg_rex = false, uint8_t mandatory = 0);
    /** ModRM (+SIB +disp) for a memory operand. */
    void emitModRmMem(uint8_t reg_field, const Mem& m);
    void emitModRmReg(uint8_t reg_field, uint8_t rm_reg);

    void emitRel32(Label& label);

    /** Records that the instruction just emitted zero-extended @p r. */
    void
    noteZext(Reg r)
    {
        zextReg_ = static_cast<int>(r);
        zextEnd_ = code_.size();
    }
    /**
     * True iff the instruction emitted immediately before (no
     * intervening emission or label bind) left @p r zero-extended.
     */
    bool
    lastZexted(Reg r) const
    {
        return zextReg_ == static_cast<int>(r) &&
               zextEnd_ == code_.size() && !code_.empty();
    }

    std::vector<uint8_t> code_;
    std::vector<LabelState> labels_;
    bool peephole_ = false;
    PeepStats peepStats_;
    int zextReg_ = -1;   ///< register of the last zero-extending write
    size_t zextEnd_ = 0; ///< valid only while == code_.size()
};

}  // namespace sfi::x64

#endif  // SFIKIT_X64_ASSEMBLER_H_
