#include "x64/exec_code.h"

#include <cstring>

#include "base/units.h"

namespace sfi::x64 {

Result<ExecCode>
ExecCode::publish(const std::vector<uint8_t>& code)
{
    if (code.empty())
        return Result<ExecCode>::error("publishing empty code buffer");
    auto mapping = Reservation::allocate(alignUp(code.size(), kOsPageSize));
    if (!mapping)
        return Result<ExecCode>::error(mapping.message());
    std::memcpy(mapping->base(), code.data(), code.size());
    Status st = mapping->protect(0, mapping->size(), PageAccess::ReadExec);
    if (!st)
        return Result<ExecCode>::error(st.message());
    ExecCode ec;
    ec.mapping_ = std::move(*mapping);
    ec.codeSize_ = code.size();
    return ec;
}

}  // namespace sfi::x64
