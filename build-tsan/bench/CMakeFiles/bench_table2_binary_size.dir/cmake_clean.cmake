file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_binary_size.dir/bench_table2_binary_size.cc.o"
  "CMakeFiles/bench_table2_binary_size.dir/bench_table2_binary_size.cc.o.d"
  "bench_table2_binary_size"
  "bench_table2_binary_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_binary_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
