# Empty compiler generated dependencies file for bench_sec642_scaling.
# This may be replaced when dependencies are built.
