file(REMOVE_RECURSE
  "CMakeFiles/bench_sec642_scaling.dir/bench_sec642_scaling.cc.o"
  "CMakeFiles/bench_sec642_scaling.dir/bench_sec642_scaling.cc.o.d"
  "bench_sec642_scaling"
  "bench_sec642_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec642_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
