# Empty compiler generated dependencies file for bench_fig3_spec_w2c.
# This may be replaced when dependencies are built.
