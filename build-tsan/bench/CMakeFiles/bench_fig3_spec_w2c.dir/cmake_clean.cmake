file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_spec_w2c.dir/bench_fig3_spec_w2c.cc.o"
  "CMakeFiles/bench_fig3_spec_w2c.dir/bench_fig3_spec_w2c.cc.o.d"
  "bench_fig3_spec_w2c"
  "bench_fig3_spec_w2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_spec_w2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
