file(REMOVE_RECURSE
  "CMakeFiles/bench_pool_scaling.dir/bench_pool_scaling.cc.o"
  "CMakeFiles/bench_pool_scaling.dir/bench_pool_scaling.cc.o.d"
  "bench_pool_scaling"
  "bench_pool_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pool_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
