# Empty compiler generated dependencies file for bench_sec641_transitions.
# This may be replaced when dependencies are built.
