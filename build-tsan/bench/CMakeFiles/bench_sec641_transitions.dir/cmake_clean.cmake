file(REMOVE_RECURSE
  "CMakeFiles/bench_sec641_transitions.dir/bench_sec641_transitions.cc.o"
  "CMakeFiles/bench_sec641_transitions.dir/bench_sec641_transitions.cc.o.d"
  "bench_sec641_transitions"
  "bench_sec641_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec641_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
