# Empty dependencies file for bench_ablation_colorguard.
# This may be replaced when dependencies are built.
