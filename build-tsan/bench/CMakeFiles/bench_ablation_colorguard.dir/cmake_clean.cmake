file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_colorguard.dir/bench_ablation_colorguard.cc.o"
  "CMakeFiles/bench_ablation_colorguard.dir/bench_ablation_colorguard.cc.o.d"
  "bench_ablation_colorguard"
  "bench_ablation_colorguard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_colorguard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
