file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_spec_lfi.dir/bench_fig5_spec_lfi.cc.o"
  "CMakeFiles/bench_fig5_spec_lfi.dir/bench_fig5_spec_lfi.cc.o.d"
  "bench_fig5_spec_lfi"
  "bench_fig5_spec_lfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_spec_lfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
