# Empty dependencies file for bench_fig5_spec_lfi.
# This may be replaced when dependencies are built.
