
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_spec_lfi.cc" "bench/CMakeFiles/bench_fig5_spec_lfi.dir/bench_fig5_spec_lfi.cc.o" "gcc" "bench/CMakeFiles/bench_fig5_spec_lfi.dir/bench_fig5_spec_lfi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/jit/CMakeFiles/sfikit_jit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/sfikit_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wkld/CMakeFiles/sfikit_wkld.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x64/CMakeFiles/sfikit_x64.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/seg/CMakeFiles/sfikit_seg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mpk/CMakeFiles/sfikit_mpk.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wasm/CMakeFiles/sfikit_wasm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/base/CMakeFiles/sfikit_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
