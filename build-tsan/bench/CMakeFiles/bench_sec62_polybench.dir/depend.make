# Empty dependencies file for bench_sec62_polybench.
# This may be replaced when dependencies are built.
