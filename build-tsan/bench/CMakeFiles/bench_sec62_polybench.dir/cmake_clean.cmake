file(REMOVE_RECURSE
  "CMakeFiles/bench_sec62_polybench.dir/bench_sec62_polybench.cc.o"
  "CMakeFiles/bench_sec62_polybench.dir/bench_sec62_polybench.cc.o.d"
  "bench_sec62_polybench"
  "bench_sec62_polybench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec62_polybench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
