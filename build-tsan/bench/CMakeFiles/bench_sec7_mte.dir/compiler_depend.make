# Empty compiler generated dependencies file for bench_sec7_mte.
# This may be replaced when dependencies are built.
