file(REMOVE_RECURSE
  "CMakeFiles/bench_sec7_mte.dir/bench_sec7_mte.cc.o"
  "CMakeFiles/bench_sec7_mte.dir/bench_sec7_mte.cc.o.d"
  "bench_sec7_mte"
  "bench_sec7_mte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec7_mte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
