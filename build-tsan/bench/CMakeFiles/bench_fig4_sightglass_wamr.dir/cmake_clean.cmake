file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sightglass_wamr.dir/bench_fig4_sightglass_wamr.cc.o"
  "CMakeFiles/bench_fig4_sightglass_wamr.dir/bench_fig4_sightglass_wamr.cc.o.d"
  "bench_fig4_sightglass_wamr"
  "bench_fig4_sightglass_wamr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sightglass_wamr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
