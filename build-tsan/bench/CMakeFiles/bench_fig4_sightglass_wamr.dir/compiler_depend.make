# Empty compiler generated dependencies file for bench_fig4_sightglass_wamr.
# This may be replaced when dependencies are built.
