file(REMOVE_RECURSE
  "CMakeFiles/bench_sec61_firefox.dir/bench_sec61_firefox.cc.o"
  "CMakeFiles/bench_sec61_firefox.dir/bench_sec61_firefox.cc.o.d"
  "bench_sec61_firefox"
  "bench_sec61_firefox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec61_firefox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
