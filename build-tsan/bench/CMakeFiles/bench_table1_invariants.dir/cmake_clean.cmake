file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_invariants.dir/bench_table1_invariants.cc.o"
  "CMakeFiles/bench_table1_invariants.dir/bench_table1_invariants.cc.o.d"
  "bench_table1_invariants"
  "bench_table1_invariants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
