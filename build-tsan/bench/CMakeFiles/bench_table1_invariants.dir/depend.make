# Empty dependencies file for bench_table1_invariants.
# This may be replaced when dependencies are built.
