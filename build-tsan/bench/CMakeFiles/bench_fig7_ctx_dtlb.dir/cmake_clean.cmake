file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ctx_dtlb.dir/bench_fig7_ctx_dtlb.cc.o"
  "CMakeFiles/bench_fig7_ctx_dtlb.dir/bench_fig7_ctx_dtlb.cc.o.d"
  "bench_fig7_ctx_dtlb"
  "bench_fig7_ctx_dtlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ctx_dtlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
