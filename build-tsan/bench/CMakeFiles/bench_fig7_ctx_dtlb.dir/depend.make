# Empty dependencies file for bench_fig7_ctx_dtlb.
# This may be replaced when dependencies are built.
