file(REMOVE_RECURSE
  "libsfikit_simx.a"
)
