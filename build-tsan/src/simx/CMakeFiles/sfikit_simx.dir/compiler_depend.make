# Empty compiler generated dependencies file for sfikit_simx.
# This may be replaced when dependencies are built.
