file(REMOVE_RECURSE
  "CMakeFiles/sfikit_simx.dir/faas_sim.cc.o"
  "CMakeFiles/sfikit_simx.dir/faas_sim.cc.o.d"
  "CMakeFiles/sfikit_simx.dir/tlb.cc.o"
  "CMakeFiles/sfikit_simx.dir/tlb.cc.o.d"
  "libsfikit_simx.a"
  "libsfikit_simx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_simx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
