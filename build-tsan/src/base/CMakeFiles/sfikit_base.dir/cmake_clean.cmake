file(REMOVE_RECURSE
  "CMakeFiles/sfikit_base.dir/cpu.cc.o"
  "CMakeFiles/sfikit_base.dir/cpu.cc.o.d"
  "CMakeFiles/sfikit_base.dir/logging.cc.o"
  "CMakeFiles/sfikit_base.dir/logging.cc.o.d"
  "CMakeFiles/sfikit_base.dir/os_mem.cc.o"
  "CMakeFiles/sfikit_base.dir/os_mem.cc.o.d"
  "libsfikit_base.a"
  "libsfikit_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
