file(REMOVE_RECURSE
  "libsfikit_base.a"
)
