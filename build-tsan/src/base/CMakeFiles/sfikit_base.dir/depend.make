# Empty dependencies file for sfikit_base.
# This may be replaced when dependencies are built.
