# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("x64")
subdirs("seg")
subdirs("mpk")
subdirs("wasm")
subdirs("runtime")
subdirs("interp")
subdirs("jit")
subdirs("pool")
subdirs("w2c")
subdirs("elf")
subdirs("wkld")
subdirs("simx")
subdirs("faas")
