# Empty dependencies file for sfikit_interp.
# This may be replaced when dependencies are built.
