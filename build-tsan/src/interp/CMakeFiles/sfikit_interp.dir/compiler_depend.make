# Empty compiler generated dependencies file for sfikit_interp.
# This may be replaced when dependencies are built.
