file(REMOVE_RECURSE
  "libsfikit_interp.a"
)
