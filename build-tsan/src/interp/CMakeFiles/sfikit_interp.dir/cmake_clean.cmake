file(REMOVE_RECURSE
  "CMakeFiles/sfikit_interp.dir/interp.cc.o"
  "CMakeFiles/sfikit_interp.dir/interp.cc.o.d"
  "libsfikit_interp.a"
  "libsfikit_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
