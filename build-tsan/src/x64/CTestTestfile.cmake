# CMake generated Testfile for 
# Source directory: /root/repo/src/x64
# Build directory: /root/repo/build-tsan/src/x64
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
