
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x64/assembler.cc" "src/x64/CMakeFiles/sfikit_x64.dir/assembler.cc.o" "gcc" "src/x64/CMakeFiles/sfikit_x64.dir/assembler.cc.o.d"
  "/root/repo/src/x64/exec_code.cc" "src/x64/CMakeFiles/sfikit_x64.dir/exec_code.cc.o" "gcc" "src/x64/CMakeFiles/sfikit_x64.dir/exec_code.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/base/CMakeFiles/sfikit_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
