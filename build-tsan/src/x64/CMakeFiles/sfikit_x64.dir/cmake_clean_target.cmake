file(REMOVE_RECURSE
  "libsfikit_x64.a"
)
