file(REMOVE_RECURSE
  "CMakeFiles/sfikit_x64.dir/assembler.cc.o"
  "CMakeFiles/sfikit_x64.dir/assembler.cc.o.d"
  "CMakeFiles/sfikit_x64.dir/exec_code.cc.o"
  "CMakeFiles/sfikit_x64.dir/exec_code.cc.o.d"
  "libsfikit_x64.a"
  "libsfikit_x64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_x64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
