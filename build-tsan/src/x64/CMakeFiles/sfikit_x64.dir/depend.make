# Empty dependencies file for sfikit_x64.
# This may be replaced when dependencies are built.
