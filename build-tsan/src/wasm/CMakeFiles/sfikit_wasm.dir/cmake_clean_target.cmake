file(REMOVE_RECURSE
  "libsfikit_wasm.a"
)
