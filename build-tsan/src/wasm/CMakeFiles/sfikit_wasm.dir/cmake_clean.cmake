file(REMOVE_RECURSE
  "CMakeFiles/sfikit_wasm.dir/opcodes.cc.o"
  "CMakeFiles/sfikit_wasm.dir/opcodes.cc.o.d"
  "CMakeFiles/sfikit_wasm.dir/validator.cc.o"
  "CMakeFiles/sfikit_wasm.dir/validator.cc.o.d"
  "libsfikit_wasm.a"
  "libsfikit_wasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
