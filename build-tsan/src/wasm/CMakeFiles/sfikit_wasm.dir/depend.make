# Empty dependencies file for sfikit_wasm.
# This may be replaced when dependencies are built.
