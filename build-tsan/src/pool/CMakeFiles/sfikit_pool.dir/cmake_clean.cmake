file(REMOVE_RECURSE
  "CMakeFiles/sfikit_pool.dir/layout.cc.o"
  "CMakeFiles/sfikit_pool.dir/layout.cc.o.d"
  "CMakeFiles/sfikit_pool.dir/pool.cc.o"
  "CMakeFiles/sfikit_pool.dir/pool.cc.o.d"
  "libsfikit_pool.a"
  "libsfikit_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
