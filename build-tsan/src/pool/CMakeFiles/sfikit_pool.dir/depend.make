# Empty dependencies file for sfikit_pool.
# This may be replaced when dependencies are built.
