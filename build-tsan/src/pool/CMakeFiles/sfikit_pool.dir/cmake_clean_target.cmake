file(REMOVE_RECURSE
  "libsfikit_pool.a"
)
