file(REMOVE_RECURSE
  "libsfikit_faas.a"
)
