file(REMOVE_RECURSE
  "CMakeFiles/sfikit_faas.dir/fiber.cc.o"
  "CMakeFiles/sfikit_faas.dir/fiber.cc.o.d"
  "CMakeFiles/sfikit_faas.dir/scheduler.cc.o"
  "CMakeFiles/sfikit_faas.dir/scheduler.cc.o.d"
  "libsfikit_faas.a"
  "libsfikit_faas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
