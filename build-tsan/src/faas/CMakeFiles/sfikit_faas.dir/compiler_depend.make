# Empty compiler generated dependencies file for sfikit_faas.
# This may be replaced when dependencies are built.
