file(REMOVE_RECURSE
  "CMakeFiles/sfikit_elf.dir/symtab.cc.o"
  "CMakeFiles/sfikit_elf.dir/symtab.cc.o.d"
  "libsfikit_elf.a"
  "libsfikit_elf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_elf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
