# Empty compiler generated dependencies file for sfikit_elf.
# This may be replaced when dependencies are built.
