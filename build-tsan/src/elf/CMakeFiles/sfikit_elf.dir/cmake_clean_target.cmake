file(REMOVE_RECURSE
  "libsfikit_elf.a"
)
