file(REMOVE_RECURSE
  "CMakeFiles/sfikit_runtime.dir/instance.cc.o"
  "CMakeFiles/sfikit_runtime.dir/instance.cc.o.d"
  "CMakeFiles/sfikit_runtime.dir/memory.cc.o"
  "CMakeFiles/sfikit_runtime.dir/memory.cc.o.d"
  "CMakeFiles/sfikit_runtime.dir/signals.cc.o"
  "CMakeFiles/sfikit_runtime.dir/signals.cc.o.d"
  "CMakeFiles/sfikit_runtime.dir/trap.cc.o"
  "CMakeFiles/sfikit_runtime.dir/trap.cc.o.d"
  "libsfikit_runtime.a"
  "libsfikit_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
