
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/instance.cc" "src/runtime/CMakeFiles/sfikit_runtime.dir/instance.cc.o" "gcc" "src/runtime/CMakeFiles/sfikit_runtime.dir/instance.cc.o.d"
  "/root/repo/src/runtime/memory.cc" "src/runtime/CMakeFiles/sfikit_runtime.dir/memory.cc.o" "gcc" "src/runtime/CMakeFiles/sfikit_runtime.dir/memory.cc.o.d"
  "/root/repo/src/runtime/signals.cc" "src/runtime/CMakeFiles/sfikit_runtime.dir/signals.cc.o" "gcc" "src/runtime/CMakeFiles/sfikit_runtime.dir/signals.cc.o.d"
  "/root/repo/src/runtime/trap.cc" "src/runtime/CMakeFiles/sfikit_runtime.dir/trap.cc.o" "gcc" "src/runtime/CMakeFiles/sfikit_runtime.dir/trap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/base/CMakeFiles/sfikit_base.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/wasm/CMakeFiles/sfikit_wasm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/seg/CMakeFiles/sfikit_seg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mpk/CMakeFiles/sfikit_mpk.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/jit/CMakeFiles/sfikit_jit.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/x64/CMakeFiles/sfikit_x64.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
