file(REMOVE_RECURSE
  "libsfikit_runtime.a"
)
