# Empty dependencies file for sfikit_runtime.
# This may be replaced when dependencies are built.
