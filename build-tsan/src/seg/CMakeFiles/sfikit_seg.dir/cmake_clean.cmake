file(REMOVE_RECURSE
  "CMakeFiles/sfikit_seg.dir/seg.cc.o"
  "CMakeFiles/sfikit_seg.dir/seg.cc.o.d"
  "libsfikit_seg.a"
  "libsfikit_seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
