# Empty dependencies file for sfikit_seg.
# This may be replaced when dependencies are built.
