file(REMOVE_RECURSE
  "libsfikit_seg.a"
)
