# Empty dependencies file for sfikit_jit.
# This may be replaced when dependencies are built.
