file(REMOVE_RECURSE
  "CMakeFiles/sfikit_jit.dir/compiler.cc.o"
  "CMakeFiles/sfikit_jit.dir/compiler.cc.o.d"
  "CMakeFiles/sfikit_jit.dir/vectorize.cc.o"
  "CMakeFiles/sfikit_jit.dir/vectorize.cc.o.d"
  "libsfikit_jit.a"
  "libsfikit_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
