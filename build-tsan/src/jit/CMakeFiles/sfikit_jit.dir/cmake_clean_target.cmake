file(REMOVE_RECURSE
  "libsfikit_jit.a"
)
