file(REMOVE_RECURSE
  "libsfikit_mpk.a"
)
