# Empty dependencies file for sfikit_mpk.
# This may be replaced when dependencies are built.
