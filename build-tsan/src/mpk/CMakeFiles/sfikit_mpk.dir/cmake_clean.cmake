file(REMOVE_RECURSE
  "CMakeFiles/sfikit_mpk.dir/mpk.cc.o"
  "CMakeFiles/sfikit_mpk.dir/mpk.cc.o.d"
  "CMakeFiles/sfikit_mpk.dir/mte.cc.o"
  "CMakeFiles/sfikit_mpk.dir/mte.cc.o.d"
  "libsfikit_mpk.a"
  "libsfikit_mpk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_mpk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
