# Empty dependencies file for sfikit_wkld.
# This may be replaced when dependencies are built.
