file(REMOVE_RECURSE
  "CMakeFiles/sfikit_wkld.dir/faas_workloads.cc.o"
  "CMakeFiles/sfikit_wkld.dir/faas_workloads.cc.o.d"
  "CMakeFiles/sfikit_wkld.dir/workloads_poly.cc.o"
  "CMakeFiles/sfikit_wkld.dir/workloads_poly.cc.o.d"
  "CMakeFiles/sfikit_wkld.dir/workloads_sightglass.cc.o"
  "CMakeFiles/sfikit_wkld.dir/workloads_sightglass.cc.o.d"
  "CMakeFiles/sfikit_wkld.dir/workloads_spec17.cc.o"
  "CMakeFiles/sfikit_wkld.dir/workloads_spec17.cc.o.d"
  "libsfikit_wkld.a"
  "libsfikit_wkld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_wkld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
