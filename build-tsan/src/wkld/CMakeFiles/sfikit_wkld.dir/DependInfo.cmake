
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wkld/faas_workloads.cc" "src/wkld/CMakeFiles/sfikit_wkld.dir/faas_workloads.cc.o" "gcc" "src/wkld/CMakeFiles/sfikit_wkld.dir/faas_workloads.cc.o.d"
  "/root/repo/src/wkld/workloads_poly.cc" "src/wkld/CMakeFiles/sfikit_wkld.dir/workloads_poly.cc.o" "gcc" "src/wkld/CMakeFiles/sfikit_wkld.dir/workloads_poly.cc.o.d"
  "/root/repo/src/wkld/workloads_sightglass.cc" "src/wkld/CMakeFiles/sfikit_wkld.dir/workloads_sightglass.cc.o" "gcc" "src/wkld/CMakeFiles/sfikit_wkld.dir/workloads_sightglass.cc.o.d"
  "/root/repo/src/wkld/workloads_spec17.cc" "src/wkld/CMakeFiles/sfikit_wkld.dir/workloads_spec17.cc.o" "gcc" "src/wkld/CMakeFiles/sfikit_wkld.dir/workloads_spec17.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/wasm/CMakeFiles/sfikit_wasm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/base/CMakeFiles/sfikit_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
