file(REMOVE_RECURSE
  "libsfikit_wkld.a"
)
