file(REMOVE_RECURSE
  "CMakeFiles/sfikit_w2c.dir/expat_lite.cc.o"
  "CMakeFiles/sfikit_w2c.dir/expat_lite.cc.o.d"
  "CMakeFiles/sfikit_w2c.dir/graphite_lite.cc.o"
  "CMakeFiles/sfikit_w2c.dir/graphite_lite.cc.o.d"
  "CMakeFiles/sfikit_w2c.dir/heap.cc.o"
  "CMakeFiles/sfikit_w2c.dir/heap.cc.o.d"
  "CMakeFiles/sfikit_w2c.dir/kernels.cc.o"
  "CMakeFiles/sfikit_w2c.dir/kernels.cc.o.d"
  "libsfikit_w2c.a"
  "libsfikit_w2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfikit_w2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
