file(REMOVE_RECURSE
  "libsfikit_w2c.a"
)
