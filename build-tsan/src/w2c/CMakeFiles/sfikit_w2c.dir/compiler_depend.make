# Empty compiler generated dependencies file for sfikit_w2c.
# This may be replaced when dependencies are built.
