# CMake generated Testfile for 
# Source directory: /root/repo/src/w2c
# Build directory: /root/repo/build-tsan/src/w2c
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
