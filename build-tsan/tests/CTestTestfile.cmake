# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_base[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_x64[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_seg[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mpk[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_wasm[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_interp[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_jit[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_differential[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pool[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_pool_stress[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_w2c[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_wkld[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_elf[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_simx[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_faas[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
