file(REMOVE_RECURSE
  "CMakeFiles/test_seg.dir/seg/seg_test.cc.o"
  "CMakeFiles/test_seg.dir/seg/seg_test.cc.o.d"
  "test_seg"
  "test_seg.pdb"
  "test_seg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
