# Empty dependencies file for test_seg.
# This may be replaced when dependencies are built.
