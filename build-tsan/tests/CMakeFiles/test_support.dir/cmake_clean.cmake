file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/support/program_gen.cc.o"
  "CMakeFiles/test_support.dir/support/program_gen.cc.o.d"
  "libtest_support.a"
  "libtest_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
