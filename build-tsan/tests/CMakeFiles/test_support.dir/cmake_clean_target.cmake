file(REMOVE_RECURSE
  "libtest_support.a"
)
