file(REMOVE_RECURSE
  "CMakeFiles/test_w2c.dir/w2c/expat_graphite_test.cc.o"
  "CMakeFiles/test_w2c.dir/w2c/expat_graphite_test.cc.o.d"
  "CMakeFiles/test_w2c.dir/w2c/kernels_test.cc.o"
  "CMakeFiles/test_w2c.dir/w2c/kernels_test.cc.o.d"
  "test_w2c"
  "test_w2c.pdb"
  "test_w2c[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_w2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
