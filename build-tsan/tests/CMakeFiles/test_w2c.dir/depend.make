# Empty dependencies file for test_w2c.
# This may be replaced when dependencies are built.
