file(REMOVE_RECURSE
  "CMakeFiles/test_wkld.dir/wkld/workloads_test.cc.o"
  "CMakeFiles/test_wkld.dir/wkld/workloads_test.cc.o.d"
  "test_wkld"
  "test_wkld.pdb"
  "test_wkld[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wkld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
