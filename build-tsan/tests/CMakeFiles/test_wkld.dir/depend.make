# Empty dependencies file for test_wkld.
# This may be replaced when dependencies are built.
