file(REMOVE_RECURSE
  "CMakeFiles/test_wasm.dir/wasm/validator_test.cc.o"
  "CMakeFiles/test_wasm.dir/wasm/validator_test.cc.o.d"
  "test_wasm"
  "test_wasm.pdb"
  "test_wasm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
