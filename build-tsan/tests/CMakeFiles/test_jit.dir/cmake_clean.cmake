file(REMOVE_RECURSE
  "CMakeFiles/test_jit.dir/jit/jit_test.cc.o"
  "CMakeFiles/test_jit.dir/jit/jit_test.cc.o.d"
  "test_jit"
  "test_jit.pdb"
  "test_jit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
