file(REMOVE_RECURSE
  "CMakeFiles/test_pool_stress.dir/pool/pool_stress_test.cc.o"
  "CMakeFiles/test_pool_stress.dir/pool/pool_stress_test.cc.o.d"
  "test_pool_stress"
  "test_pool_stress.pdb"
  "test_pool_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
