file(REMOVE_RECURSE
  "CMakeFiles/test_faas.dir/faas/faas_test.cc.o"
  "CMakeFiles/test_faas.dir/faas/faas_test.cc.o.d"
  "test_faas"
  "test_faas.pdb"
  "test_faas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_faas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
