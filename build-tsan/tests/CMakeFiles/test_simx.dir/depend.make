# Empty dependencies file for test_simx.
# This may be replaced when dependencies are built.
