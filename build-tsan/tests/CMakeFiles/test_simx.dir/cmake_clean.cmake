file(REMOVE_RECURSE
  "CMakeFiles/test_simx.dir/simx/simx_test.cc.o"
  "CMakeFiles/test_simx.dir/simx/simx_test.cc.o.d"
  "test_simx"
  "test_simx.pdb"
  "test_simx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
