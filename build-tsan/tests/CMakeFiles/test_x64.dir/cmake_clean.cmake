file(REMOVE_RECURSE
  "CMakeFiles/test_x64.dir/x64/assembler_test.cc.o"
  "CMakeFiles/test_x64.dir/x64/assembler_test.cc.o.d"
  "CMakeFiles/test_x64.dir/x64/exec_test.cc.o"
  "CMakeFiles/test_x64.dir/x64/exec_test.cc.o.d"
  "test_x64"
  "test_x64.pdb"
  "test_x64[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
