# Empty compiler generated dependencies file for test_x64.
# This may be replaced when dependencies are built.
