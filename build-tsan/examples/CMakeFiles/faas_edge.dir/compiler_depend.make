# Empty compiler generated dependencies file for faas_edge.
# This may be replaced when dependencies are built.
