file(REMOVE_RECURSE
  "CMakeFiles/faas_edge.dir/faas_edge.cpp.o"
  "CMakeFiles/faas_edge.dir/faas_edge.cpp.o.d"
  "faas_edge"
  "faas_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faas_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
