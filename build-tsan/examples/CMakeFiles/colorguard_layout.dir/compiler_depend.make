# Empty compiler generated dependencies file for colorguard_layout.
# This may be replaced when dependencies are built.
