file(REMOVE_RECURSE
  "CMakeFiles/colorguard_layout.dir/colorguard_layout.cpp.o"
  "CMakeFiles/colorguard_layout.dir/colorguard_layout.cpp.o.d"
  "colorguard_layout"
  "colorguard_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colorguard_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
