# Empty compiler generated dependencies file for library_sandboxing.
# This may be replaced when dependencies are built.
