file(REMOVE_RECURSE
  "CMakeFiles/library_sandboxing.dir/library_sandboxing.cpp.o"
  "CMakeFiles/library_sandboxing.dir/library_sandboxing.cpp.o.d"
  "library_sandboxing"
  "library_sandboxing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_sandboxing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
