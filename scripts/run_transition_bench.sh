#!/usr/bin/env bash
# Builds and runs the transition-tier microbenchmark (bench_transitions)
# and persists its machine-readable results at the repo root as
# BENCH_transitions.json, so the per-tier transition costs can be
# tracked across PRs. Extra arguments are forwarded to the bench
# (e.g. --tiers-only); BUILD_DIR overrides the build tree.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j --target bench_transitions >/dev/null

"$build/bench/bench_transitions" --json "$repo/BENCH_transitions.json" "$@"
