#!/usr/bin/env bash
# Full static SFI audit: proves the build's *own* machine code on both
# halves of the Figure 3 matrix.
#
#   1. ELF half — every policy-templated w2c kernel is sliced out of
#      the sfikit_w2c object files and verified against its per-policy
#      contract (w2c.gs_access, w2c.bounds.dominate, w2c.cfg.resolved,
#      w2c.heap_escape); coverage counters land in a perflab-compatible
#      JSON row.
#   2. JIT half — the registry workload x sandboxing-strategy matrix is
#      compiled and checked by the VeriWasm-style module verifier.
#   3. Cache half — the tiered pipeline fills the process-wide code
#      cache from the same matrix (baseline + optimized blobs + thunk
#      sets) and every published blob is re-proven from stored
#      metadata (`sfi-verify --cache-audit`).
#
# Usage: scripts/run_sfi_audit.sh [--policy-filter S] [--quiet]
#   Extra arguments are forwarded to the ELF verification pass.
#   BUILD_DIR overrides the build tree; AUDIT_JSON overrides where the
#   coverage row is written (default: <build>/sfi_audit.json).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
json="${AUDIT_JSON:-$build/sfi_audit.json}"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j --target sfi-verify sfikit_w2c >/dev/null

verify="$build/src/verify/sfi-verify"

elf_args=()
for obj in "$build"/src/w2c/CMakeFiles/sfikit_w2c.dir/*.cc.o; do
    elf_args+=(--elf "$obj")
done

echo "== ELF audit: compiler-emitted w2c policy kernels =="
"$verify" "${elf_args[@]}" --json "$json" "$@"
echo "coverage counters: $json"

echo
echo "== JIT audit: workload x strategy matrix =="
"$verify" --quiet

echo
echo "== Cache audit: tiered code-cache blobs re-proven =="
"$verify" --cache-audit
