#!/usr/bin/env bash
# Builds the perf-lab CLI plus the bench matrix it drives, then runs
# every configured workload (reps x each figure bench) and rewrites the
# authoritative BENCH_<workload>.json baselines at the repo root —
# schema-versioned, environment-fingerprinted, bottleneck-classified.
# Commit the refreshed baselines so `perflab check` (and the
# perflab_gate ctest) has something to grade against.
#
# Usage: scripts/run_perf_lab.sh [--workload NAME] [--reps N] ...
#   Extra arguments are forwarded to `perflab run`.
#   BUILD_DIR overrides the build tree.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j --target perflab bench_transitions \
    bench_fig6_faas_throughput bench_fig3_spec_w2c \
    bench_pool_scaling >/dev/null

"$build/src/perflab/perflab" run \
    --bench-dir "$build/bench" \
    --out-dir "$repo" \
    "$@"
